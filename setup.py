"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` requires bdist_wheel; when that is
unavailable, `python setup.py develop` installs an equivalent editable
package using only setuptools.
"""
from setuptools import setup

setup()
