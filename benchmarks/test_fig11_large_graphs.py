"""Figure 11 — per-batch running times across all 11 graphs.

Paper's Fig. 11: for every dataset and Ins/Del/Mix (batch 10^6, δ=0.4,
λ=3), PLDSOpt beats every other *dynamic* algorithm (except PLDS edging
it out on the road networks ctr/usa), and beats the static algorithms
(ExactKCore/ApproxKCore rerun from scratch per batch) on all but the
smallest graphs where the batch is a large fraction of the edges.

We run the full analog suite with batch = m/4 and compare simulated
times.  Static algorithms are "rerun" once per batch on the full graph.
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol
from repro.parallel.engine import WorkDepthTracker
from repro.parallel.scheduler import BrentScheduler
from repro.static_kcore.approx import approx_coreness_static
from repro.static_kcore.exact import ParallelExactKCore

from .conftest import fmt_row, report

THREADS = 60
SCHED = BrentScheduler()
DYNAMIC = ("pldsopt", "plds", "hua", "sun", "zhang")
PARALLEL = {"pldsopt", "plds", "hua"}


def _sim_time_per_batch(res, parallel: bool) -> float:
    n = max(1, len(res.batches))
    cost = res.total_cost
    return (SCHED.time(cost, THREADS) if parallel else cost.work) / n


def _static_times(edges):
    """Per-rerun simulated times of the static algorithms."""
    t = WorkDepthTracker()
    ParallelExactKCore(t).run(edges)
    exact_time = SCHED.time(t.cost, THREADS)
    t2 = WorkDepthTracker()
    approx_coreness_static(edges, tracker=t2)
    approx_time = SCHED.time(t2.cost, THREADS)
    return exact_time, approx_time


def test_fig11_all_graphs(suite, benchmark):
    def run():
        table = {}
        for spec in suite:
            batch = max(1, spec.num_edges // 4)
            for proto in ("ins", "del", "mix"):
                for key in DYNAMIC:
                    res = run_protocol(
                        lambda k=key: make_adapter(k, spec.num_vertices + 1),
                        spec.edges,
                        proto,
                        batch,
                        max_batches=4,
                    )
                    table[(spec.paper_name, proto, key)] = _sim_time_per_batch(
                        res, key in PARALLEL
                    )
            exact_t, approx_t = _static_times(spec.edges)
            table[(spec.paper_name, "static", "exactkcore")] = exact_t
            table[(spec.paper_name, "static", "approxkcore")] = approx_t
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    names = sorted({k[0] for k in table})
    for proto in ("ins", "del", "mix"):
        widths = (15,) + (11,) * (len(DYNAMIC) + 2)
        lines = [
            fmt_row(
                ("dataset",) + DYNAMIC + ("exact_st", "approx_st"), widths
            )
        ]
        for name in names:
            row = [f"{table[(name, proto, k)]:.0f}" for k in DYNAMIC]
            row.append(f"{table[(name, 'static', 'exactkcore')]:.0f}")
            row.append(f"{table[(name, 'static', 'approxkcore')]:.0f}")
            lines.append(fmt_row((name,) + tuple(row), widths))
        report(f"fig11_{proto}", lines)

    # Shape 1: PLDSOpt is the fastest dynamic algorithm on every dataset
    # and protocol, except that PLDS may edge it out on road networks.
    for name in names:
        for proto in ("ins", "del", "mix"):
            opt = table[(name, proto, "pldsopt")]
            for k in ("hua", "sun", "zhang"):
                assert opt <= table[(name, proto, k)], (name, proto, k)
            if name not in ("ctr", "usa"):
                assert opt <= table[(name, proto, "plds")] * 1.3, (name, proto)

    # Shape 2: speedups over the sequential exact baseline are large on
    # the bigger graphs (paper reports up to 723x; simulation is coarser
    # but the gap must be at least an order of magnitude somewhere).
    gaps = [
        table[(n, "ins", "zhang")] / table[(n, "ins", "pldsopt")] for n in names
    ]
    assert max(gaps) > 10.0
