"""Theorem 3.6 — batch-dynamic k-clique counting cost profile.

The paper proves O(|B| α^{k-2} log² n) amortized work in
O(m α^{k-2} + n log² n) space.  We measure amortized work per update for
k = 3, 4 on graphs with varying degeneracy and assert: (a) counts are
exact versus a from-scratch recount; (b) work scales with α^{k-2}
(denser graphs cost more per update, k=4 costs more than k=3); (c) space
stays within the O(mα) envelope of the wedge-table variant.
"""

from __future__ import annotations

import math

from repro.core.orientation import degeneracy
from repro.framework import create_clique_driver
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import deletion_batches, insertion_batches

from .conftest import fmt_row, report

CONFIGS = [(256, 3), (256, 8)]
KS = (3, 4)


def test_clique_cost_profile(benchmark):
    def run():
        rows = []
        for n, density in CONFIGS:
            edges = barabasi_albert(n, density, seed=n + density)
            alpha = degeneracy(edges)
            for k in KS:
                driver, app = create_clique_driver(n_hint=n + 1, k=k)
                for b in insertion_batches(edges, 128, seed=1):
                    driver.update(b)
                final_count = app.count
                assert final_count == app.recount()
                for b in deletion_batches(edges[: len(edges) // 3], 128, seed=1):
                    driver.update(b)
                assert app.count == app.recount()
                updates = len(edges) + len(edges) // 3
                rows.append(
                    (
                        n,
                        density,
                        alpha,
                        k,
                        driver.tracker.work / updates,
                        final_count,
                        app.space_bytes(),
                        len(edges),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (6, 4, 6, 3, 12, 10, 12)
    lines = [
        fmt_row(("n", "d", "alpha", "k", "work/upd", "count", "space"), widths)
    ]
    for n, density, alpha, k, w, cnt, space, m in rows:
        lines.append(
            fmt_row((n, density, alpha, k, f"{w:.0f}", cnt, space), widths)
        )
    report("framework_cliques", lines)

    by = {(r[1], r[3]): r for r in rows}
    # On the dense graph the α^{k-2} factor bites: k=4 costs at least as
    # much per update as k=3 (on sparse graphs both are trivially cheap).
    assert by[(8, 4)][4] >= by[(8, 3)][4] * 0.9

    # Denser graph (bigger α) costs more per update at k=4.
    assert by[(8, 4)][4] > by[(3, 4)][4]

    # Work envelope: C α^{k-2} log² n per update.
    C = 60
    for n, density, alpha, k, w, cnt, space, m in rows:
        assert w <= C * (alpha ** (k - 2)) * math.log2(n) ** 2, (density, k)
        # Space envelope of the wedge-table variant: O(m α) entries.
        assert space <= 64 * m * max(alpha, 1), (density, k)


def test_clique_counter_variants(benchmark):
    """Enumeration+wedge variant vs the full table hierarchy (Algs 12-13).

    Same counts; the tables variant spends more space (O(m α^{k-2}))
    while avoiding completion-subset re-enumeration — the paper's design
    trade, measured.
    """
    from repro.framework import create_clique_driver, create_clique_tables_driver
    from repro.graphs.streams import deletion_batches, insertion_batches

    def run():
        rows = []
        edges = barabasi_albert(256, 8, seed=77)
        for k in (3, 4):
            stats = {}
            for name, factory in (
                ("enum", lambda: create_clique_driver(n_hint=257, k=k)),
                ("tables", lambda: create_clique_tables_driver(n_hint=257, k=k)),
            ):
                driver, app = factory()
                for b in insertion_batches(edges, 128, seed=1):
                    driver.update(b)
                count = app.count
                for b in deletion_batches(edges[: len(edges) // 3], 128, seed=1):
                    driver.update(b)
                stats[name] = (
                    count,
                    app.count,
                    driver.tracker.work,
                    app.space_bytes(),
                )
            rows.append((k, stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (3, 8, 12, 12, 12, 12)
    lines = [
        fmt_row(
            ("k", "variant", "peak count", "end count", "work", "space"),
            widths,
        )
    ]
    for k, stats in rows:
        for name, (c1, c2, w, sp) in stats.items():
            lines.append(fmt_row((k, name, c1, c2, w, sp), widths))
    report("framework_clique_variants", lines)

    for k, stats in rows:
        # identical counts at both checkpoints
        assert stats["enum"][0] == stats["tables"][0], k
        assert stats["enum"][1] == stats["tables"][1], k
        # both variants within a constant work factor of each other
        we, wt = stats["enum"][2], stats["tables"][2]
        assert wt <= 10 * we and we <= 10 * wt, k
