"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  Since the substrate is a simulator,
absolute numbers differ from the paper's testbed; each module's docstring
states the *shape* the paper reports and the assertions check that shape.

Reports are printed and also saved under ``benchmarks/results/`` so they
survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.graphs.generators import dataset_suite

RESULTS_DIR = Path(__file__).parent / "results"

#: scale factor for the analog dataset suite used by the heavyweight
#: benchmarks; override with REPRO_BENCH_SCALE.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))


@pytest.fixture(scope="session")
def suite():
    """The 11-dataset analog suite at benchmark scale."""
    return dataset_suite(scale=BENCH_SCALE, seed=42)


@pytest.fixture(scope="session")
def suite_by_paper_name(suite):
    return {d.paper_name: d for d in suite}


def report(name: str, lines: list[str]) -> None:
    """Print a report block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def fmt_row(cols, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))
