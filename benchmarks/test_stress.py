"""Optional stress run at larger scale (set ``REPRO_STRESS=1`` to enable).

Runs PLDSOpt over a ~100k-edge power-law stream — an order of magnitude
beyond the default bench scale — verifying the invariants, the
approximation, and that amortized work stays flat as the graph grows
(the scalability headroom claim: the default scale is a convenience, not
a limit of the implementation).
"""

from __future__ import annotations

import math
import os

import pytest

from repro.core.plds import PLDS
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import insertion_batches

from .conftest import fmt_row, report

STRESS = os.environ.get("REPRO_STRESS") == "1"


@pytest.mark.skipif(not STRESS, reason="set REPRO_STRESS=1 to run")
def test_stress_large_stream(benchmark):
    n = 15_000
    edges = barabasi_albert(n, 7, seed=99)  # ~105k edges

    def run():
        plds = PLDS(n_hint=n + 1, group_shrink=50, insertion_strategy="jump")
        checkpoints = []
        batches = insertion_batches(edges, 5_000, seed=1)
        for i, b in enumerate(batches):
            before = plds.tracker.work
            plds.update(b)
            checkpoints.append(
                (plds.num_edges, (plds.tracker.work - before) / len(b))
            )
        assert not plds.check_invariants()
        return checkpoints

    checkpoints = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row(("edges", "work/update"), (10, 12))]
    for m, w in checkpoints[:: max(1, len(checkpoints) // 8)]:
        lines.append(fmt_row((m, f"{w:.1f}"), (10, 12)))
    report("stress_large_stream", lines)

    # Amortized per-update work stays flat (polylog) as m grows 20x.
    early = checkpoints[0][1]
    late = checkpoints[-1][1]
    assert late <= 10 * max(early, math.log2(n))
