"""Figure 13 — maximum space usage vs average error.

Paper's Fig. 13 (dblp/livejournal, Ins and Del): PLDS uses the most
memory (its O(n log² n) level structures); PLDSOpt stays within small
constant factors of the exact baselines (Hua/Zhang) — up to 1.34x *less*
on dblp and at most ~1.7x more on livejournal; Sun mostly uses more
space than PLDSOpt.

We measure the structure-byte accounting of each implementation after an
Ins run (space peaks when the whole graph is resident) and assert those
relative positions.
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol

from .conftest import fmt_row, report

ALGOS = ("plds", "pldsopt", "sun", "hua", "zhang")


def test_fig13_space_vs_error(suite_by_paper_name, benchmark):
    def run():
        table = {}
        for ds in ("dblp", "livejournal"):
            spec = suite_by_paper_name[ds]
            batch = max(1, spec.num_edges // 4)
            for key in ALGOS:
                res = run_protocol(
                    lambda k=key: make_adapter(k, spec.num_vertices + 1),
                    spec.edges,
                    "ins",
                    batch,
                )
                table[(ds, key)] = (
                    res.space_bytes,
                    res.errors.average,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (14, 9, 12, 9)
    lines = [fmt_row(("dataset", "algo", "bytes", "avg err"), widths)]
    for (ds, key), (space, err) in sorted(table.items()):
        lines.append(fmt_row((ds, key, space, f"{err:.2f}"), widths))
    report("fig13_space", lines)

    for ds in ("dblp", "livejournal"):
        exact_min = min(table[(ds, "hua")][0], table[(ds, "zhang")][0])
        # PLDSOpt stays within a small factor of the exact baselines.
        assert table[(ds, "pldsopt")][0] <= 2.5 * exact_min, ds
        # PLDS (full level structure) uses at least as much as PLDSOpt.
        assert table[(ds, "plds")][0] >= table[(ds, "pldsopt")][0], ds
        # Every space figure is positive and bounded by a sane multiple
        # of the graph size.
        m = suite_by_paper_name[ds].num_edges
        for key in ALGOS:
            assert 0 < table[(ds, key)][0] <= 2000 * m, (ds, key)
