"""Figure 8 — accuracy (avg/max error ratio) vs per-batch running time.

Paper's Fig. 8: on dblp (batch 10^5) and livejournal (batch 10^6), for
Ins/Del/Mix, PLDSOpt / PLDS / LDS (sweeping δ, λ) and Sun (sweeping its
parameters) trace accuracy-vs-time curves; Hua and Zhang appear as
exact (error 1) timing lines.  Key shapes reported:

- PLDSOpt dominates: for parameters giving similar error it is the
  fastest of all algorithms;
- larger δ trades error for speed along each curve;
- Sun reaches comparable error but at much higher sequential cost.

Simulated running time = work/60 + depth for parallel algorithms (30-core
2-way-hyperthreaded machine), plain work for sequential ones.
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol
from repro.parallel.scheduler import BrentScheduler

from .conftest import fmt_row, report

DELTAS = (0.4, 1.6, 6.4)
LAMBDAS = (3.0, 96.0)
SUN_PARAMS = ((1.0, 1.0), (2.0, 2.0), (3.2, 3.2))
THREADS = 60

SCHED = BrentScheduler()


def _sim_time(result, parallel: bool) -> float:
    cost = result.total_cost
    per_batch = max(1, len(result.batches))
    if parallel:
        return SCHED.time(cost, THREADS) / per_batch
    return cost.work / per_batch


def _sweep(edges, n_hint, protocol, batch_size):
    rows = []
    for delta in DELTAS:
        for lam in LAMBDAS:
            for key in ("pldsopt", "plds", "lds"):
                res = run_protocol(
                    lambda: make_adapter(key, n_hint, delta=delta, lam=lam),
                    edges,
                    protocol,
                    batch_size,
                )
                rows.append(
                    (
                        key,
                        f"d={delta},l={lam:g}",
                        _sim_time(res, key != "lds"),
                        res.errors.average,
                        res.errors.maximum,
                    )
                )
    # Heuristic parameters (Section 6.2): replace (2+3/λ) with 1.1 — the
    # proofs no longer apply but empirical estimates tighten.
    for delta in (0.4, 1.6):
        for key in ("pldsopt", "plds"):
            res = run_protocol(
                lambda: make_adapter(
                    key, n_hint, delta=delta, upper_coeff=1.1
                ),
                edges,
                protocol,
                batch_size,
            )
            rows.append(
                (
                    f"{key}-h",
                    f"d={delta},c=1.1",
                    _sim_time(res, True),
                    res.errors.average,
                    res.errors.maximum,
                )
            )
    for eps, lam in SUN_PARAMS:
        res = run_protocol(
            lambda: make_adapter("sun", n_hint, sun_eps=eps, sun_lam=lam),
            edges,
            protocol,
            batch_size,
        )
        rows.append(
            (
                "sun",
                f"e={eps},l={lam}",
                _sim_time(res, False),
                res.errors.average,
                res.errors.maximum,
            )
        )
    for key in ("hua", "zhang"):
        res = run_protocol(
            lambda: make_adapter(key, n_hint), edges, protocol, batch_size
        )
        rows.append(
            (
                key,
                "exact",
                _sim_time(res, key == "hua"),
                res.errors.average,
                res.errors.maximum,
            )
        )
    return rows


def _report(dataset_name, protocol, rows):
    widths = (9, 14, 12, 9, 9)
    lines = [fmt_row(("algo", "params", "sim time", "avg err", "max err"), widths)]
    for algo, params, t, avg, mx in rows:
        lines.append(
            fmt_row((algo, params, f"{t:.0f}", f"{avg:.2f}", f"{mx:.2f}"), widths)
        )
    report(f"fig8_{dataset_name}_{protocol}", lines)


def _check_shapes(rows):
    by_algo: dict[str, list] = {}
    for algo, params, t, avg, mx in rows:
        by_algo.setdefault(algo, []).append((params, t, avg, mx))

    # Exact baselines report error exactly 1.
    for key in ("hua", "zhang"):
        assert all(avg == 1.0 for _, _, avg, _ in by_algo[key])

    # PLDSOpt is faster than PLDS and LDS at matched parameters.
    opt = {p: t for p, t, _, _ in by_algo["pldsopt"]}
    for p, t, _, _ in by_algo["plds"]:
        assert opt[p] <= t * 1.5, ("pldsopt vs plds", p)
    for p, t, _, _ in by_algo["lds"]:
        assert opt[p] <= t, ("pldsopt vs lds", p)

    # PLDSOpt beats the sequential approximate baseline (Sun).
    best_opt = min(t for _, t, _, _ in by_algo["pldsopt"])
    best_sun = min(t for _, t, _, _ in by_algo["sun"])
    assert best_opt < best_sun

    # PLDS max error never exceeds the provable bound (1+δ)(2+3/λ).
    for p, _, _, mx in by_algo["plds"]:
        delta = float(p.split(",")[0][2:])
        lam = float(p.split("l=")[1])
        assert mx <= (1 + delta) * (2 + 3 / lam) + 1e-9, (p, mx)

    # Heuristic parameters (coefficient 1.1) tighten the empirical
    # average error at matched δ=0.4, as the paper observes for its
    # (and Sun's α=1.1) heuristic settings.
    theory_avg = dict(
        (p, avg) for p, _, avg, _ in by_algo["plds"]
    )["d=0.4,l=3"]
    heur_avg = dict(
        (p, avg) for p, _, avg, _ in by_algo["plds-h"]
    )["d=0.4,c=1.1"]
    assert heur_avg <= theory_avg + 1e-9


def test_fig8_dblp_analog(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["dblp"]
    batch = max(1, spec.num_edges // 6)

    def run():
        return {
            proto: _sweep(spec.edges, spec.num_vertices + 1, proto, batch)
            for proto in ("ins", "del", "mix")
        }

    all_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for proto, rows in all_rows.items():
        _report("dblp", proto, rows)
        _check_shapes(rows)


def test_fig8_livejournal_analog(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["livejournal"]
    batch = max(1, spec.num_edges // 4)

    def run():
        return {
            proto: _sweep(spec.edges, spec.num_vertices + 1, proto, batch)
            for proto in ("ins", "del", "mix")
        }

    all_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for proto, rows in all_rows.items():
        _report("livejournal", proto, rows)
        _check_shapes(rows)
