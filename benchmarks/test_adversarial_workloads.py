"""Adversarial workloads — the Section-3 motivation, measured.

The paper motivates approximation with the cycle example: toggling one
edge of an n-cycle changes all n exact coreness values, so *any* exact
algorithm pays Ω(n) per toggle, while the PLDS pays O(log² n) amortized
(the estimates simply never need to change: both 1 and 2 round to the
same group).

We sweep the cycle length and measure per-toggle work for PLDS vs the
exact baselines — the PLDS cost must stay flat while the exact cost
grows linearly.  The Figure-4 cascade chain contrasts the sequential LDS
(one-level-at-a-time cascades) with the PLDS (single-shot desire-level
moves).
"""

from __future__ import annotations

from repro.baselines.zhang import ZhangExactDynamic
from repro.core.lds import LDS
from repro.core.plds import PLDS
from repro.graphs.adversarial import clique_pulse, cycle_toggle

from .conftest import fmt_row, report

CYCLE_SIZES = (64, 256, 1024)
TOGGLES = 4


def _per_batch_work(impl, initial, batches, is_plds):
    if is_plds:
        impl.insert_edges(initial)
    else:
        impl.initialize(initial)
    base = impl.tracker.work
    for b in batches:
        impl.update(b)
    return (impl.tracker.work - base) / len(batches)


def test_cycle_toggle_scaling(benchmark):
    def run():
        rows = []
        for n in CYCLE_SIZES:
            initial, batches = cycle_toggle(n, TOGGLES)
            plds_w = _per_batch_work(
                PLDS(n_hint=n + 1), initial, batches, True
            )
            zhang_w = _per_batch_work(
                ZhangExactDynamic(), initial, batches, False
            )
            rows.append((n, plds_w, zhang_w))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (8, 12, 12)
    lines = [fmt_row(("n", "plds W/tog", "zhang W/tog"), widths)]
    for n, pw, zw in rows:
        lines.append(fmt_row((n, f"{pw:.1f}", f"{zw:.0f}"), widths))
    report("adversarial_cycle", lines)

    # PLDS per-toggle work is flat in n; exact work grows ~linearly.
    assert rows[-1][1] <= 10 * max(rows[0][1], 1.0)
    assert rows[-1][2] >= 4 * rows[0][2]
    # And exact pays Omega(n) per toggle on the largest cycle.
    assert rows[-1][2] >= CYCLE_SIZES[-1]


def test_clique_pulse_plds_vs_lds(benchmark):
    """Clique pulses force maximal level movement (the Fig.-4 regime).

    The PLDS and LDS pay comparable *work* (the PLDS's batch machinery
    costs a constant factor), but the PLDS's per-batch *depth* stays
    polylog while the sequential LDS's depth equals its work — the whole
    reason the PLDS exists.
    """

    def run():
        rows = []
        for k in (8, 16, 24):
            initial, batches = clique_pulse(k, TOGGLES)
            costs = {}
            for name, impl in (
                ("plds", PLDS(n_hint=k + 2)),
                ("lds", LDS(n_hint=k + 2)),
            ):
                impl.insert_edges(initial)
                base = impl.tracker.cost
                for b in batches:
                    impl.update(b)
                costs[name] = (
                    (impl.tracker.work - base.work) / len(batches),
                    (impl.tracker.depth - base.depth) / len(batches),
                )
            rows.append((k, *costs["plds"], *costs["lds"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (6, 11, 11, 11, 11)
    lines = [
        fmt_row(("k", "plds W", "plds D", "lds W", "lds D"), widths)
    ]
    for k, pw, pd, lw, ld in rows:
        lines.append(
            fmt_row(
                (k, f"{pw:.0f}", f"{pd:.0f}", f"{lw:.0f}", f"{ld:.0f}"),
                widths,
            )
        )
    report("adversarial_clique_pulse", lines)

    for k, pw, pd, lw, ld in rows:
        # Work within a constant factor of the sequential structure...
        assert pw <= 4 * lw + 10, k
        # ...but depth at least an order of magnitude lower at k=24.
        if k >= 24:
            assert pd * 10 <= ld, (k, pd, ld)
