"""Figure 12 — sensitivity of PLDS/PLDSOpt to δ and λ.

Paper's Fig. 12 (livejournal): fixing δ and varying λ barely moves the
maximum error (each line is a cluster of points); fixing λ and growing δ
drastically reduces running time while increasing the maximum error.
PLDSOpt's curves flatten for large δ because the levels-per-group bottoms
out at 1.

We sweep the same parameter grid and assert those sensitivities.
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol

from .conftest import fmt_row, report

DELTAS = (0.4, 0.8, 1.6, 3.2)
LAMBDAS = (3.0, 12.0, 96.0)


def test_fig12_sensitivity(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["livejournal"]
    batch = max(1, spec.num_edges // 4)

    def run():
        table = {}
        for key in ("plds", "pldsopt"):
            for delta in DELTAS:
                for lam in LAMBDAS:
                    res = run_protocol(
                        lambda: make_adapter(
                            key, spec.num_vertices + 1, delta=delta, lam=lam
                        ),
                        spec.edges,
                        "ins",
                        batch,
                    )
                    table[(key, delta, lam)] = (
                        res.avg_work,
                        res.errors.maximum,
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (9, 6, 6, 12, 9)
    lines = [fmt_row(("algo", "delta", "lambda", "avg work", "max err"), widths)]
    for (key, d, l), (w, e) in sorted(table.items()):
        lines.append(fmt_row((key, d, l, f"{w:.0f}", f"{e:.2f}"), widths))
    report("fig12_sensitivity", lines)

    # λ-insensitivity: at fixed δ, max error varies far less across λ than
    # the theoretical ratio of the bounds.  For PLDSOpt this only holds
    # while its group structure is non-degenerate (δ <= 1.6 keeps more
    # than one level per group at this scale); beyond that single-level
    # jitter dominates, which the paper's own flat-curve caveat notes.
    lam_insensitive = {"plds": DELTAS, "pldsopt": [d for d in DELTAS if d <= 1.6]}
    for key, deltas in lam_insensitive.items():
        for delta in deltas:
            errs = [table[(key, delta, lam)][1] for lam in LAMBDAS]
            assert max(errs) <= max(3.0 * min(errs), min(errs) + 2.0), (
                key,
                delta,
                errs,
            )
    # δ-sensitivity: at fixed λ, growing δ 8x reduces work.
    for key in ("plds", "pldsopt"):
        for lam in LAMBDAS:
            works = [table[(key, delta, lam)][0] for delta in DELTAS]
            assert works[-1] < works[0], (key, lam, works)

    # PLDSOpt's work curve flattens at large δ (levels/group bottoms out).
    for lam in LAMBDAS:
        w16 = table[("pldsopt", 1.6, lam)][0]
        w32 = table[("pldsopt", 3.2, lam)][0]
        assert w32 > 0.4 * w16, (lam, w16, w32)

    # PLDS max error respects (1+δ)(2+3/λ) everywhere.
    for (key, d, l), (_, e) in table.items():
        if key == "plds":
            assert e <= (1 + d) * (2 + 3 / l) + 1e-9
