"""Theorem 3.4 — batch-dynamic maximal matching cost profile.

The paper proves O(|B|(α + log² n)) amortized work and
Õ(log Δ log² n) depth.  We measure amortized work per update and
per-batch depth on graphs of growing size and density, assert the
polylog-plus-α envelope, and verify maximality is maintained throughout
(correctness under load).
"""

from __future__ import annotations

import math

from repro.core.orientation import degeneracy
from repro.framework import create_matching_driver
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import deletion_batches, insertion_batches

from .conftest import fmt_row, report

SIZES = (128, 256, 512)
DENSITY = (3, 6)


def test_matching_cost_profile(benchmark):
    def run():
        rows = []
        for n in SIZES:
            for k in DENSITY:
                edges = barabasi_albert(n, k, seed=n + k)
                driver, app = create_matching_driver(n_hint=n + 1)
                worst_depth = 0
                for b in insertion_batches(edges, 128, seed=1):
                    before = driver.tracker.cost
                    driver.update(b)
                    worst_depth = max(
                        worst_depth, driver.tracker.depth - before.depth
                    )
                assert not app.violations()
                ins_work = driver.tracker.work
                for b in deletion_batches(edges[: len(edges) // 2], 128, seed=1):
                    before = driver.tracker.cost
                    driver.update(b)
                    worst_depth = max(
                        worst_depth, driver.tracker.depth - before.depth
                    )
                assert not app.violations()
                total_updates = len(edges) + len(edges) // 2
                rows.append(
                    (
                        n,
                        k,
                        degeneracy(edges),
                        driver.tracker.work / total_updates,
                        worst_depth,
                        len(app.matching()),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (6, 4, 6, 12, 12, 10)
    lines = [
        fmt_row(("n", "k", "degen", "work/upd", "max depth", "|M|"), widths)
    ]
    for n, k, d, w, dep, msz in rows:
        lines.append(fmt_row((n, k, d, f"{w:.0f}", dep, msz), widths))
    report("framework_matching", lines)

    # Envelope: amortized work within C(α + log² n); depth within
    # C log Δ log² n (α proxied by degeneracy, Δ <= n).
    C = 80
    for n, k, d, w, dep, _ in rows:
        log2n = math.log2(n) ** 2
        assert w <= C * (d + log2n), (n, k)
        assert dep <= C * log2n * math.log2(n), (n, k)

    # Work grows far slower than n (polylog + α, not linear).
    small = [r for r in rows if r[0] == SIZES[0]]
    large = [r for r in rows if r[0] == SIZES[-1]]
    for s, l in zip(small, large):
        assert l[3] <= s[3] * (SIZES[-1] / SIZES[0]) / 1.5
