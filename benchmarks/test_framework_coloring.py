"""Theorems 3.5/3.7 — batch-dynamic coloring cost and palette profile.

Paper bounds: the explicit coloring maintains O(α log n) colors in
O(|B| log² n) amortized work (oblivious adversary); the implicit coloring
answers queries from the orientation within an O(2^α)-color budget
(our mex-over-out-neighbors variant uses at most max-out-degree + 1 =
O(α) colors, documented in DESIGN.md).

We measure palette sizes and amortized work across densities and assert
both palette envelopes and properness under churn.
"""

from __future__ import annotations

import math

from repro.core.orientation import degeneracy
from repro.framework import (
    create_explicit_coloring_driver,
    create_implicit_coloring_driver,
)
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import deletion_batches, insertion_batches

from .conftest import fmt_row, report

CONFIGS = [(256, 3), (256, 8), (512, 4)]


def test_coloring_cost_profile(benchmark):
    def run():
        rows = []
        for n, density in CONFIGS:
            edges = barabasi_albert(n, density, seed=n * density)
            alpha = degeneracy(edges)

            driver, explicit = create_explicit_coloring_driver(n_hint=n + 1)
            for b in insertion_batches(edges, 128, seed=1):
                driver.update(b)
            assert not explicit.violations()
            for b in deletion_batches(edges[: len(edges) // 3], 128, seed=1):
                driver.update(b)
            assert not explicit.violations()
            explicit_colors = explicit.colors_used()
            explicit_work = driver.tracker.work / (len(edges) * 4 // 3)

            d2, implicit = create_implicit_coloring_driver(n_hint=n + 1)
            for b in insertion_batches(edges, 128, seed=1):
                d2.update(b)
            colors = implicit.query(sorted(d2.plds.vertices()))
            assert not implicit.violations()
            implicit_palette = max(colors.values()) + 1
            max_out = max(
                len(d2.plds.out_neighbors(v)) for v in d2.plds.vertices()
            )
            rows.append(
                (
                    n,
                    density,
                    alpha,
                    explicit_colors,
                    f"{explicit_work:.0f}",
                    implicit_palette,
                    max_out,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (6, 4, 6, 11, 11, 11, 8)
    lines = [
        fmt_row(
            ("n", "d", "alpha", "expl cols", "expl W/upd", "impl cols", "maxout"),
            widths,
        )
    ]
    for row in rows:
        lines.append(fmt_row(row, widths))
    report("framework_coloring", lines)

    for n, density, alpha, expl_cols, expl_w, impl_cols, max_out in rows:
        # Explicit palette within O(α log n).
        assert expl_cols <= 80 * max(alpha, 1) * math.log2(n), (n, density)
        # Implicit palette within max-out-degree + 1 <= O(α) << 2^α.
        assert impl_cols <= max_out + 1
        assert impl_cols <= 2 ** max(alpha, 3)
        # Explicit work per update within C log² n (no α term needed).
        assert float(expl_w) <= 90 * math.log2(n) ** 2, (n, density)
