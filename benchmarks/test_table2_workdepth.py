"""Table 2 — work/depth bounds of the paper's algorithms.

Paper's Table 2 states, per problem, the asymptotic work and depth:

=============  ==========================  =========================
problem        work                        depth
=============  ==========================  =========================
k-core         O(|B| log² n)               Õ(log² n)
orientation    O(|B| log² n)               Õ(log² n)
matching       O(|B| (α + log² n))         Õ(log Δ log² n)
k-clique       O(|B| α^{k-2} log² n)       Õ(log² n)
coloring       O(|B| log² n)               Õ(log² n)
=============  ==========================  =========================

We measure metered work/depth per batch while n grows and assert the
measurements stay inside polylog envelopes: amortized work per update
within c·log²n, and per-batch depth within c·log²n·loglog n — i.e., the
*growth* is polylogarithmic, not polynomial.
"""

from __future__ import annotations

import math

from repro.core.plds import PLDS
from repro.framework import (
    create_clique_driver,
    create_explicit_coloring_driver,
    create_matching_driver,
)
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import insertion_batches

from .conftest import fmt_row, report

SIZES = (128, 256, 512, 1024)
BATCH = 128


def _run_kcore(n):
    edges = barabasi_albert(n, 4, seed=n)
    plds = PLDS(n_hint=n + 1)
    worst_depth = 0
    for b in insertion_batches(edges, BATCH, seed=1):
        before = plds.tracker.cost
        plds.update(b)
        worst_depth = max(worst_depth, plds.tracker.depth - before.depth)
    return plds.tracker.work / len(edges), worst_depth


def _run_app(n, factory):
    edges = barabasi_albert(n, 4, seed=n)
    driver, app = factory(n)
    worst_depth = 0
    for b in insertion_batches(edges, BATCH, seed=1):
        before = driver.tracker.cost
        driver.update(b)
        worst_depth = max(worst_depth, driver.tracker.depth - before.depth)
    return driver.tracker.work / len(edges), worst_depth


def test_table2_workdepth_scaling(benchmark):
    def run():
        rows = []
        for n in SIZES:
            w_core, d_core = _run_kcore(n)
            w_match, d_match = _run_app(
                n, lambda nn: create_matching_driver(n_hint=nn + 1)
            )
            w_clq, d_clq = _run_app(
                n, lambda nn: create_clique_driver(n_hint=nn + 1, k=3)
            )
            w_col, d_col = _run_app(
                n, lambda nn: create_explicit_coloring_driver(n_hint=nn + 1)
            )
            rows.append(
                (n, w_core, d_core, w_match, d_match, w_clq, d_clq, w_col, d_col)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (6,) + (11,) * 8
    lines = [
        fmt_row(
            (
                "n",
                "core W/upd", "core D",
                "match W/upd", "match D",
                "clq W/upd", "clq D",
                "col W/upd", "col D",
            ),
            widths,
        )
    ]
    for row in rows:
        lines.append(
            fmt_row((row[0],) + tuple(f"{x:.0f}" for x in row[1:]), widths)
        )
    report("table2_workdepth", lines)

    # Polylog envelopes: for every n, amortized work/update <= C log^2 n and
    # per-batch depth <= C log^2 n loglog n.
    C_WORK, C_DEPTH = 60, 60
    for n, w_core, d_core, w_match, d_match, w_clq, d_clq, w_col, d_col in rows:
        log2n = math.log2(n) ** 2
        loglog = math.log2(math.log2(n))
        assert w_core <= C_WORK * log2n
        assert d_core <= C_DEPTH * log2n * loglog
        assert d_clq <= C_DEPTH * log2n * loglog
        assert d_col <= C_DEPTH * log2n * loglog
        # matching depth has the extra log Δ factor
        assert d_match <= C_DEPTH * log2n * math.log2(n)

    # Growth check: quadrupling n must not grow per-update work more than
    # the polylog ratio would allow (i.e. far slower than linear).
    first, last = rows[0], rows[-1]
    n_ratio = last[0] / first[0]
    for idx in (1, 3, 5, 7):
        work_ratio = last[idx] / max(first[idx], 1e-9)
        assert work_ratio < n_ratio, f"work column {idx} grows superpolylog"
