"""Extension experiment — temporal sliding-window workload.

The paper maintains temporal update order for its wiki/stackoverflow
experiments but folds them into the Ins/Del protocols.  This extension
runs the natural *sliding-window* variant (simultaneous arrivals and
expiries per batch — a steady-state mixed workload) and checks:

- PLDSOpt sustains the window at near-constant per-batch cost while the
  exact sequential baseline's (Zhang's) cost is much larger and noisier
  (expiries constantly perturb subcores);
- the approximation guarantee holds at every window position.
"""

from __future__ import annotations

import statistics

from repro.baselines.zhang import ZhangExactDynamic
from repro.bench.metrics import error_stats
from repro.core.plds import PLDS
from repro.graphs.streams import sliding_window_batches
from repro.static_kcore.exact import exact_coreness

from .conftest import fmt_row, report


def test_temporal_sliding_window(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["stackoverflow"]
    window = max(50, spec.num_edges // 3)
    batch_size = max(10, window // 6)
    batches = sliding_window_batches(spec.edges, window, batch_size)

    def run():
        plds = PLDS(n_hint=spec.num_vertices + 1, group_shrink=50)
        zhang = ZhangExactDynamic()
        zhang.initialize([])
        plds_costs, zhang_costs = [], []
        live: set = set()
        worst_error = 1.0
        for b in batches:
            before = plds.tracker.work
            plds.update(b)
            plds_costs.append(plds.tracker.work - before)
            before = zhang.tracker.work
            zhang.update(b)
            zhang_costs.append(zhang.tracker.work - before)
            live |= set(b.insertions)
            live -= set(b.deletions)
            exact = exact_coreness(sorted(live))
            stats = error_stats(plds.coreness_estimates(), exact)
            worst_error = max(worst_error, stats.maximum)
        return plds_costs, zhang_costs, worst_error

    plds_costs, zhang_costs, worst_error = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    steady_p = plds_costs[len(plds_costs) // 2 :]
    steady_z = zhang_costs[len(zhang_costs) // 2 :]
    widths = (22, 12, 12)
    lines = [
        fmt_row(("metric", "pldsopt", "zhang"), widths),
        fmt_row(
            ("steady mean work", f"{statistics.mean(steady_p):.0f}",
             f"{statistics.mean(steady_z):.0f}"),
            widths,
        ),
        fmt_row(
            ("steady max work", max(steady_p), max(steady_z)), widths
        ),
        fmt_row(("worst PLDS error", f"{worst_error:.2f}", "-"), widths),
    ]
    report("temporal_window", lines)

    # PLDSOpt sustains the window cheaper than the exact baseline.
    assert statistics.mean(steady_p) < statistics.mean(steady_z)
    # Error bounded throughout the stream (PLDSOpt empirical envelope).
    assert worst_error <= 8.0
