"""Table 3 — dataset inventory: n, m, and largest k-core value.

Paper's Table 3 lists the 11 graphs with their sizes and maximum core
numbers (dblp 101, brain 1200, ..., ctr/usa 2-3).  We regenerate the
analog inventory and assert the *regime* structure holds: road analogs
have max core <= 3, the brain analog has the largest max core, and social
analogs sit in between.
"""

from __future__ import annotations

from repro.static_kcore.exact import exact_coreness, max_coreness

from .conftest import fmt_row, report


def test_table3_dataset_inventory(suite, benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (
                d.paper_name,
                d.num_vertices,
                d.num_edges,
                max_coreness(exact_coreness(d.edges)),
            )
            for d in suite
        ],
        rounds=1,
        iterations=1,
    )
    widths = (16, 10, 10, 14)
    lines = [fmt_row(("dataset", "vertices", "edges", "largest k"), widths)]
    by_name = {}
    for name, n, m, k in rows:
        by_name[name] = (n, m, k)
        lines.append(fmt_row((name, n, m, k), widths))
    report("table3_datasets", lines)

    # Regime assertions mirroring the paper's Table 3 structure: road
    # networks have tiny cores; twitter has the largest core (2484 in the
    # paper), brain the second largest (1200); social graphs in between.
    assert by_name["ctr"][2] <= 3
    assert by_name["usa"][2] <= 3
    assert by_name["twitter"][2] == max(v[2] for v in by_name.values())
    assert by_name["brain"][2] == max(
        v[2] for k, v in by_name.items() if k != "twitter"
    )
    for social in ("dblp", "livejournal", "orkut"):
        assert 3 <= by_name[social][2] < by_name["brain"][2]
