"""Figure 10 — thread count vs running time (self-relative speedup).

Paper's Fig. 10: on dblp and livejournal with batches of 10^6, PLDSOpt
and PLDS scale to ~20-30x self-relative speedup at 30 cores (60
hyperthreads), while Hua saturates around 3.6x; LDS/Sun/Zhang are flat
sequential lines.  With 4 threads PLDSOpt already beats every baseline.

We reproduce the shape through the Brent scheduler: T_p = W/p_eff + D
with 30 physical cores + hyperthread yield.  Hua's traversal depth keeps
its curve flat; the PLDS's polylog depth lets it keep scaling.
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol
from repro.parallel.scheduler import BrentScheduler

from .conftest import fmt_row, report

THREADS = (1, 2, 4, 8, 15, 30, 60)
SCHED = BrentScheduler(hyperthread_cores=30, hyperthread_yield=0.35)


def test_fig10_scalability(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["livejournal"]
    batch = max(1, spec.num_edges // 3)

    def run():
        costs = {}
        for key in ("pldsopt", "plds", "hua", "lds", "sun", "zhang"):
            res = run_protocol(
                lambda k=key: make_adapter(k, spec.num_vertices + 1),
                spec.edges,
                "ins",
                batch,
            )
            costs[key] = res.total_cost
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    parallel_keys = ("pldsopt", "plds", "hua")
    widths = (8,) + (9,) * len(parallel_keys)
    lines = [fmt_row(("threads",) + parallel_keys, widths)]
    speedups = {k: [] for k in parallel_keys}
    for p in THREADS:
        row = []
        for k in parallel_keys:
            s = SCHED.speedup(costs[k], p)
            speedups[k].append(s)
            row.append(f"{s:.2f}x")
        lines.append(fmt_row((p,) + tuple(row), widths))
    lines.append("")
    for k in ("lds", "sun", "zhang"):
        lines.append(f"{k}: sequential line, T = {costs[k].work}")
    report("fig10_scalability", lines)

    # Shape 1: PLDS variants reach much higher speedup than Hua at 60.
    assert speedups["pldsopt"][-1] > 2 * speedups["hua"][-1]
    assert speedups["plds"][-1] > 2 * speedups["hua"][-1]

    # Shape 2: Hua saturates early (limited by its heaviest traversal);
    # the paper measures 3.6x max, far below the PLDS curves.
    assert speedups["hua"][-1] < speedups["pldsopt"][-1] / 3

    # Shape 3: speedups are monotone in thread count.
    for k in parallel_keys:
        s = speedups[k]
        assert all(s[i] <= s[i + 1] + 1e-9 for i in range(len(s) - 1))

    # Shape 4: with 4 threads PLDSOpt already beats every baseline's
    # 1-thread (sequential) time — the paper's "standard laptop" claim.
    t4 = SCHED.time(costs["pldsopt"], 4)
    for k in ("lds", "sun", "zhang", "hua", "plds"):
        assert t4 < SCHED.time(costs[k], 1), k
