"""Static comparison — ApproxKCore vs ExactKCore (Theorem 3.8).

Paper (Section 3, "Experimental Contributions"): the parallel static
approximate algorithm achieves a 2.8-3.9x simulated-parallel speedup over
the fastest parallel exact k-core (ExactKCore of [27]), because approx
peeling finishes in O(log² n) rounds while exact peeling needs ρ rounds
(potentially Θ(n), e.g. road networks and other shallow-but-long peel
orders).

We compare metered costs on the analog suite: work is linear for both;
the approx algorithm's *round count* and depth are much smaller on the
deep-peeling datasets, and its simulated 60-thread time wins wherever
ρ is large.
"""

from __future__ import annotations

from repro.parallel.engine import WorkDepthTracker
from repro.parallel.scheduler import BrentScheduler
from repro.static_kcore.approx import approx_coreness_static
from repro.static_kcore.exact import ParallelExactKCore

from .conftest import fmt_row, report

SCHED = BrentScheduler()
THREADS = 60


def test_static_exact_vs_approx(suite, benchmark):
    def run():
        rows = []
        for spec in suite:
            t_e = WorkDepthTracker()
            exact = ParallelExactKCore(t_e).run(spec.edges)
            t_a = WorkDepthTracker()
            approx = approx_coreness_static(spec.edges, tracker=t_a)
            rows.append(
                (
                    spec.paper_name,
                    exact.rounds,
                    approx.rounds,
                    t_e.cost,
                    t_a.cost,
                    SCHED.time(t_e.cost, THREADS),
                    SCHED.time(t_a.cost, THREADS),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (15, 9, 9, 11, 11, 11, 11)
    lines = [
        fmt_row(
            (
                "dataset", "ex rnds", "ap rnds",
                "ex depth", "ap depth", "ex T60", "ap T60",
            ),
            widths,
        )
    ]
    for name, er, ar, ce, ca, te, ta in rows:
        lines.append(
            fmt_row(
                (name, er, ar, ce.depth, ca.depth, f"{te:.0f}", f"{ta:.0f}"),
                widths,
            )
        )
    report("static_kcore", lines)

    # Approx peeling uses far fewer rounds on deep-peeling graphs, and
    # never dramatically more anywhere.
    deep = [r for r in rows if r[1] > 40]
    assert deep, "expected at least one deep-peeling dataset in the suite"
    for name, er, ar, *_ in rows:
        assert ar <= 2 * er + 20, (name, er, ar)
    for name, er, ar, *_ in deep:
        assert ar < er, (name, er, ar)

    # Work efficiency: approx work within a constant factor of exact.
    for name, _, _, ce, ca, _, _ in rows:
        assert ca.work <= 12 * ce.work, name

    # Simulated-parallel speedup over exact on the deep-peeling datasets
    # (the paper reports 2.8-3.9x overall on real hardware).
    speedups = [te / ta for _, er, _, _, _, te, ta in rows if er > 40]
    assert max(speedups) > 1.3, speedups
