"""Extension experiment — batch-dynamic densest-subgraph estimation.

The LDS lineage the paper builds on (Bhattacharya et al., Section 3)
targeted dynamic densest subgraph; our PLDS yields the same estimate for
free: ``k̂_max / 2`` is a ``2(2+ε)``-approximation of the maximum
density (docs: ``repro/core/densest.py``).

We stream a graph with a densifying community and check, after every
batch, that the maintained estimate brackets the Charikar greedy
reference within the analysis factor — at zero marginal update cost
(the estimate is read off the structure).
"""

from __future__ import annotations

from repro.core.densest import charikar_peel, densest_subgraph_estimate
from repro.core.plds import PLDS
from repro.graphs.generators import erdos_renyi
from repro.graphs.streams import Batch

from .conftest import fmt_row, report


def test_dynamic_densest_estimate(benchmark):
    background = erdos_renyi(300, 900, seed=3)
    # a community densifies over time: clique edges arrive gradually
    community = [(i, j) for i in range(20) for j in range(i + 1, 20)]
    community = [e for e in community if e not in set(background)]

    def run():
        plds = PLDS(n_hint=310)
        rows = []
        current: list = []
        schedule = [("background", background[i : i + 300]) for i in range(0, 900, 300)]
        schedule += [("densify", community[i : i + 60]) for i in range(0, len(community), 60)]
        for phase, batch in schedule:
            plds.update(Batch(insertions=batch))
            current.extend(batch)
            est, witness = densest_subgraph_estimate(plds)
            greedy, _ = charikar_peel(current)
            rows.append((phase, len(current), est, greedy, len(witness)))
        return rows, plds.approximation_factor()

    rows, factor = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (11, 8, 9, 9, 9)
    lines = [fmt_row(("phase", "edges", "est", "greedy", "witness"), widths)]
    for phase, m, est, greedy, w in rows:
        lines.append(
            fmt_row((phase, m, f"{est:.2f}", f"{greedy:.2f}", w), widths)
        )
    report("densest_subgraph", lines)

    for phase, m, est, greedy, w in rows:
        # greedy <= rho* <= 2 greedy; est in [rho*/(2 factor), factor rho*]
        assert est >= greedy / (2 * factor) - 1e-9, phase
        assert est <= factor * 2 * greedy + 1e-9, phase

    # The estimate rises as the community densifies.
    assert rows[-1][2] > rows[0][2]