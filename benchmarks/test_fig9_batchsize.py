"""Figure 9 — batch size vs average per-batch running time.

Paper's Fig. 9: per-batch time of PLDSOpt / PLDS / LDS / Zhang / Hua on
dblp and livejournal as the batch size grows from 10² to the full graph.
Shapes reported:

- PLDSOpt is fastest on all but the smallest batches;
- for the smallest Del/Mix batches, the sequential algorithms (Zhang,
  LDS) can win because parallel overhead dominates (Section 6.3);
- per-batch time grows with batch size for every algorithm, but the
  parallel algorithms grow sublinearly in simulated time (more
  parallelism available).
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol
from repro.parallel.scheduler import BrentScheduler

from .conftest import fmt_row, report

THREADS = 60
#: parallel overhead per batch (simulated-time units) — models the fork/
#: scheduler overhead the paper discusses for small batches.
PARALLEL_OVERHEAD = 500.0

SCHED = BrentScheduler()
ALGOS = ("pldsopt", "plds", "lds", "zhang", "hua")
PARALLEL = {"pldsopt", "plds", "hua"}


def _per_batch_time(res, parallel: bool) -> float:
    n_batches = max(1, len(res.batches))
    if parallel:
        return SCHED.time(res.total_cost, THREADS) / n_batches + PARALLEL_OVERHEAD
    return res.total_cost.work / n_batches


def test_fig9_batch_size_sweep(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["dblp"]
    m = spec.num_edges
    batch_sizes = [10, m // 16, m // 4, m]

    def run():
        table = {}
        for proto in ("ins", "del"):
            for bs in batch_sizes:
                for key in ALGOS:
                    res = run_protocol(
                        lambda k=key: make_adapter(k, spec.num_vertices + 1),
                        spec.edges,
                        proto,
                        max(1, bs),
                        max_batches=8,
                    )
                    table[(proto, bs, key)] = _per_batch_time(
                        res, key in PARALLEL
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    widths = (6, 8) + (11,) * len(ALGOS)
    lines = [fmt_row(("proto", "batch") + ALGOS, widths)]
    for proto in ("ins", "del"):
        for bs in batch_sizes:
            lines.append(
                fmt_row(
                    (proto, bs)
                    + tuple(f"{table[(proto, bs, k)]:.0f}" for k in ALGOS),
                    widths,
                )
            )
    report("fig9_batchsize", lines)

    # Shape: PLDSOpt wins for the larger batches (m/4 and m).
    for proto in ("ins", "del"):
        for bs in batch_sizes[2:]:
            others = [table[(proto, bs, k)] for k in ALGOS if k != "pldsopt"]
            assert table[(proto, bs, "pldsopt")] <= min(others), (proto, bs)

    # Shape: for small batches, some sequential algorithm beats PLDS
    # (parallel overhead dominates), mirroring Section 6.3's findings.
    for tiny in batch_sizes[:2]:
        seq_best = min(table[("del", tiny, k)] for k in ("zhang", "lds"))
        assert seq_best < table[("del", tiny, "plds")]

    # Shape: per-batch time grows with batch size for every algorithm.
    for key in ALGOS:
        times = [table[("ins", bs, key)] for bs in batch_sizes]
        assert times[-1] >= times[0]
