"""Section 5.9 — batched vertex insertions/deletions and the rebuild policy.

The paper handles vertex updates by treating deletions as incident-edge
deletion batches and amortizing periodic structure rebuilds against n/2
vertex updates, for O(log² n) amortized work per vertex update.  We
churn vertices (arrivals with a few edges, departures) and check the
amortized work envelope and that invariants/estimates survive rebuilds.
"""

from __future__ import annotations

import math
import random

from repro.core.invariants import approximation_violations
from repro.core.plds import PLDS
from repro.graphs.dynamic_graph import canonical_edge
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import fmt_row, report


def test_vertex_churn_amortization(benchmark):
    def run():
        rng = random.Random(3)
        plds = PLDS(n_hint=64, group_shrink=10)
        alive: list[int] = []
        edges: set = set()
        next_id = 0
        vertex_updates = 0
        # grow to 600 vertices, then churn arrivals/departures
        for step in range(1200):
            if len(alive) < 600 or rng.random() < 0.5:
                v = next_id
                next_id += 1
                plds.insert_vertices([v])
                vertex_updates += 1
                targets = rng.sample(alive, min(3, len(alive)))
                batch = [
                    canonical_edge(v, w)
                    for w in targets
                    if canonical_edge(v, w) not in edges
                ]
                if batch:
                    plds.update(Batch(insertions=batch))
                    edges.update(batch)
                alive.append(v)
            else:
                v = alive.pop(rng.randrange(len(alive)))
                plds.delete_vertices([v])
                vertex_updates += 1
                edges = {e for e in edges if v not in e}
        assert not plds.check_invariants()
        exact = exact_coreness(sorted(edges), vertices=alive)
        bad = approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )
        assert not bad, bad[:3]
        return vertex_updates, plds.tracker.work, len(alive), plds.n_hint

    updates, work, n_alive, hint = benchmark.pedantic(run, rounds=1, iterations=1)
    per_update = work / updates
    lines = [
        fmt_row(("metric", "value"), (24, 14)),
        fmt_row(("vertex updates", updates), (24, 14)),
        fmt_row(("total work", work), (24, 14)),
        fmt_row(("work / vertex update", f"{per_update:.0f}"), (24, 14)),
        fmt_row(("final n / hint", f"{n_alive} / {hint}"), (24, 14)),
    ]
    report("vertex_churn", lines)

    # Amortized work per vertex update (including its few edge updates
    # and the rebuild shares) stays within a polylog envelope.
    n = max(n_alive, 2)
    assert per_update <= 80 * math.log2(n) ** 2, per_update
    # The rebuild policy kept the hint proportional to the live size.
    assert hint <= 8 * n_alive + 64
