"""Section 6.6 — accuracy of the approximation algorithms at δ=0.4, λ=3.

Paper's reported ranges across the dataset suite:

- PLDS:     avg error 1.26-3.48, max error 2-4.19 (bound 4.2);
- PLDSOpt:  avg error 1.24-2.37, max error 3-6;
- ApproxKCore (static): avg 1.01-4.17, max 3-5;
- Sun:      avg 1.03-3.23, max 3-5.99.

We regenerate the table over the analog suite and assert: PLDS max error
<= 4.2 everywhere (the provable bound), every algorithm's average error
is modest (< 4.5), and PLDSOpt's max error stays within the paper's
observed envelope (<= 6 plus slack for the coarse small-graph regime).
"""

from __future__ import annotations

from repro.bench.harness import make_adapter, run_protocol
from repro.bench.metrics import error_percentiles, error_stats
from repro.static_kcore.approx import approx_coreness_static
from repro.static_kcore.exact import exact_coreness

from .conftest import fmt_row, report


def test_sec66_accuracy_table(suite, benchmark):
    def run():
        rows = []
        percentile_rows = []
        for spec in suite:
            batch = max(1, spec.num_edges // 4)
            stats = {}
            exact = exact_coreness(spec.edges)
            for key in ("plds", "pldsopt", "sun"):
                res = run_protocol(
                    lambda k=key: make_adapter(k, spec.num_vertices + 1),
                    spec.edges,
                    "ins",
                    batch,
                )
                stats[key] = res.errors
            # percentile view of PLDSOpt's error distribution
            opt = make_adapter("pldsopt", spec.num_vertices + 1)
            opt.initialize(spec.edges)
            pct = error_percentiles(opt.estimates(), exact, (50.0, 90.0, 99.0))
            percentile_rows.append((spec.paper_name, pct))
            approx = approx_coreness_static(spec.edges, eps=0.5, delta=0.5)
            stats["approxkcore"] = error_stats(approx.estimates, exact)
            rows.append((spec.paper_name, stats))
        return rows, percentile_rows

    rows, percentile_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    algos = ("plds", "pldsopt", "sun", "approxkcore")
    widths = (15,) + (13,) * len(algos)
    lines = [fmt_row(("dataset",) + tuple(f"{a} avg/max" for a in algos), widths)]
    for name, stats in rows:
        lines.append(
            fmt_row(
                (name,)
                + tuple(
                    f"{stats[a].average:.2f}/{stats[a].maximum:.2f}"
                    for a in algos
                ),
                widths,
            )
        )
    lines.append("")
    lines.append(fmt_row(("PLDSOpt percentiles", "p50", "p90", "p99"), (20, 7, 7, 7)))
    for name, pct in percentile_rows:
        lines.append(
            fmt_row(
                (name, f"{pct[50.0]:.2f}", f"{pct[90.0]:.2f}", f"{pct[99.0]:.2f}"),
                (20, 7, 7, 7),
            )
        )
    report("sec66_accuracy", lines)

    # Percentile sanity: the median error is never worse than the max.
    for name, pct in percentile_rows:
        assert pct[50.0] <= pct[99.0] <= 10.0, name

    for name, stats in rows:
        # The provable PLDS bound (Lemma 5.13) holds everywhere.
        assert stats["plds"].maximum <= 4.2 + 1e-9, name
        # PLDSOpt stays within the paper's observed envelope.
        assert stats["pldsopt"].maximum <= 8.0, name
        # All approximation algorithms have modest average error.
        for a in algos:
            assert stats[a].average <= 4.5, (name, a)
