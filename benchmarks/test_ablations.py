"""Ablations — the design choices DESIGN.md calls out.

Three ablations over the PLDS's configuration space:

1. **Group shrink (PLDS → PLDSOpt).** Section 6.1: dividing the levels
   per group by 50 sped the paper's implementation up by up to 23.89x.
   We sweep ``group_shrink ∈ {1, 10, 50, 200}`` and check the work drops
   monotonically while the approximation guarantee of the ``shrink=1``
   configuration is preserved and the empirical error stays bounded.

2. **Insertion strategy.** Section 6.1's other optimization: computing
   the upward desire-level directly ("jump") instead of moving level by
   level.  The paper notes it does *more work theoretically* but runs
   faster in practice; we check it's at least work-comparable and
   produces identical guarantees.

3. **Structure variants** (Section 5.8).  All three variants compute the
   same result with the same work; depth obeys randomized <
   deterministic < space-efficient, and the space-efficient variant uses
   O(n + m) instead of O(n log² n + m) bytes.
"""

from __future__ import annotations

import random

from repro.core.invariants import approximation_violations
from repro.core.plds import PLDS
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import fmt_row, report


def _drive(plds: PLDS, edges, batch=200, seed=1):
    order = list(edges)
    random.Random(seed).shuffle(order)
    for i in range(0, len(order), batch):
        plds.update(Batch(insertions=order[i : i + batch]))
    for i in range(0, len(order) // 2, batch):
        plds.update(Batch(deletions=order[i : i + batch]))
    assert not plds.check_invariants()
    return order[len(order) // 2 :]


def test_ablation_group_shrink(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["livejournal"]
    shrinks = (1, 10, 50, 200)

    def run():
        rows = []
        for shrink in shrinks:
            plds = PLDS(n_hint=spec.num_vertices + 1, group_shrink=shrink)
            remaining = _drive(plds, spec.edges)
            exact = exact_coreness(remaining)
            worst = 1.0
            for v, k in exact.items():
                if k == 0:
                    continue
                est = plds.coreness_estimate(v)
                worst = max(worst, max(est / k, k / est) if est else 99.0)
            rows.append((shrink, plds.num_levels, plds.tracker.work, worst))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (8, 8, 12, 9)
    lines = [fmt_row(("shrink", "levels", "work", "max err"), widths)]
    for shrink, K, w, e in rows:
        lines.append(fmt_row((shrink, K, w, f"{e:.2f}"), widths))
    report("ablation_group_shrink", lines)

    works = [w for _, _, w, _ in rows]
    assert all(works[i] > works[i + 1] for i in range(len(works) - 1)), works
    # The paper reports up to ~24x from this optimization; demand >= 5x.
    assert works[0] / works[-2] > 5.0  # shrink=1 vs shrink=50
    # Errors stay bounded: provable for shrink=1, empirical for the rest.
    assert rows[0][3] <= 4.2 + 1e-9
    for _, _, _, e in rows:
        assert e <= 10.0


def test_ablation_insertion_strategy(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["orkut"]

    def run():
        rows = []
        for strategy in ("levelwise", "jump"):
            plds = PLDS(
                n_hint=spec.num_vertices + 1, insertion_strategy=strategy
            )
            remaining = _drive(plds, spec.edges)
            exact = exact_coreness(remaining)
            bad = approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )
            assert not bad, (strategy, bad[:3])
            rows.append((strategy, plds.tracker.work, plds.tracker.depth))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (11, 12, 12)
    lines = [fmt_row(("strategy", "work", "depth"), widths)]
    for s, w, d in rows:
        lines.append(fmt_row((s, w, d), widths))
    report("ablation_insertion_strategy", lines)

    # Jump must stay work-comparable (paper: may even do more in theory).
    by = dict((s, w) for s, w, _ in rows)
    assert by["jump"] <= 2.0 * by["levelwise"]
    assert by["levelwise"] <= 2.0 * by["jump"]


def test_ablation_structure_variants(suite_by_paper_name, benchmark):
    spec = suite_by_paper_name["dblp"]

    def run():
        rows = []
        for structure in ("randomized", "deterministic", "space_efficient"):
            plds = PLDS(n_hint=spec.num_vertices + 1, structure=structure)
            _drive(plds, spec.edges)
            rows.append(
                (
                    structure,
                    plds.tracker.work,
                    plds.tracker.depth,
                    plds.space_bytes(),
                    plds.coreness_estimates(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (16, 10, 10, 10)
    lines = [fmt_row(("structure", "work", "depth", "space"), widths)]
    for s, w, d, sp, _ in rows:
        lines.append(fmt_row((s, w, d, sp), widths))
    report("ablation_structures", lines)

    rand, det, se = rows
    # Identical results and work; only the cost/space models differ.
    assert rand[4] == det[4] == se[4]
    assert rand[1] == det[1] == se[1]
    # Depth ordering per Lemmas 5.7 / 5.14 / 5.15.
    assert rand[2] <= det[2] <= se[2]
    # Space-efficient variant saves space.
    assert se[3] < rand[3]
