"""Live coreness monitoring over a social-network event stream.

The paper's motivating scenario (Sections 1, 4): a social platform where
"many follows and unfollows can occur in a very short period of time
following a viral post", and the k-core structure — a standard proxy for
community engagement — must be tracked in real time.

This example simulates that workload:

1. grow a preferential-attachment network (organic growth),
2. inject a *viral burst* — a hub suddenly gains hundreds of followers,
3. churn — a mass-unfollow wave removes many of those edges again,

maintaining PLDSOpt estimates throughout and comparing, at each phase,
against (a) exact recomputation-from-scratch cost and (b) the estimates'
accuracy.

Run:  python examples/social_stream_cores.py
"""

from __future__ import annotations

import random
import time

from repro import PLDS, Batch, exact_coreness
from repro.bench.metrics import error_stats
from repro.graphs.generators import barabasi_albert


def phase_report(name: str, plds: PLDS, current_edges: set, wall: float) -> None:
    exact = exact_coreness(sorted(current_edges))
    stats = error_stats(plds.coreness_estimates(), exact)
    top = max(exact.values(), default=0)
    print(
        f"{name:24s}  edges={len(current_edges):6d}  max-core={top:3d}  "
        f"err avg={stats.average:4.2f} max={stats.maximum:4.2f}  "
        f"update took {wall * 1e3:7.2f} ms"
    )


def main() -> None:
    rng = random.Random(7)
    n = 2000
    base_edges = barabasi_albert(n, 5, seed=3)

    # PLDSOpt configuration: 50x fewer levels per group (Section 6.1).
    plds = PLDS(n_hint=n + 500, delta=0.4, lam=3.0, group_shrink=50)
    current: set = set()

    print("== organic growth (batches of 1000 follows) ==")
    for i in range(0, len(base_edges), 1000):
        batch = base_edges[i : i + 1000]
        t0 = time.perf_counter()
        plds.update(Batch(insertions=batch))
        wall = time.perf_counter() - t0
        current |= set(batch)
    phase_report("after growth", plds, current, wall)

    print("\n== viral burst: vertex 0 gains 400 followers ==")
    new_followers = []
    fresh = n
    for _ in range(400):
        if rng.random() < 0.5:
            w = rng.randrange(1, n)
            e = (0, w)
            if e not in current and (w, 0) not in current:
                new_followers.append(e)
        else:  # brand-new account follows the hub
            new_followers.append((0, fresh))
            fresh += 1
    new_followers = list(dict.fromkeys(new_followers))
    t0 = time.perf_counter()
    plds.update(Batch(insertions=new_followers))
    wall = time.perf_counter() - t0
    current |= set(new_followers)
    phase_report("after burst", plds, current, wall)
    print(f"   hub estimate k̂(0) = {plds.coreness_estimate(0):.2f}")

    print("\n== churn: 70% of the burst unfollows ==")
    unfollow = rng.sample(new_followers, int(0.7 * len(new_followers)))
    t0 = time.perf_counter()
    plds.update(Batch(deletions=unfollow))
    wall = time.perf_counter() - t0
    current -= set(unfollow)
    phase_report("after churn", plds, current, wall)
    print(f"   hub estimate k̂(0) = {plds.coreness_estimate(0):.2f}")

    # What a static recompute costs in comparison (the paper's Fig. 11
    # comparison: dynamic maintenance vs rerunning from scratch).
    t0 = time.perf_counter()
    exact_coreness(sorted(current))
    static_wall = time.perf_counter() - t0
    print(
        f"\nexact static recompute of the final graph: "
        f"{static_wall * 1e3:.2f} ms per snapshot — the dynamic structure "
        "amortizes far below that per batch at scale."
    )
    print(
        f"simulated parallel cost of the whole session: "
        f"work={plds.tracker.work}, depth={plds.tracker.depth}"
    )


if __name__ == "__main__":
    main()
