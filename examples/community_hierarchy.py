"""Community hierarchy discovery from coreness values.

The paper's introduction: "the coreness values induce a natural
hierarchical clustering."  This example builds a network with planted
communities of different densities, then:

1. extracts the coreness hierarchy (nested k-core components),
2. uses PLDS estimates to pre-filter candidate members of the densest
   community cheaply (``approx_k_core_candidates``) before the exact
   refinement — the approximate-then-exact pattern the paper motivates
   for large graphs.

Run:  python examples/community_hierarchy.py
"""

from __future__ import annotations

from repro import PLDS, Batch, exact_coreness
from repro.graphs.generators import erdos_renyi
from repro.graphs.dynamic_graph import canonical_edge
from repro.static_kcore.subgraphs import (
    approx_k_core_candidates,
    core_hierarchy,
    k_core_subgraph,
)


def build_network() -> list[tuple[int, int]]:
    """Sparse background + a medium community + a dense core community."""
    edges = set(erdos_renyi(400, 700, seed=21))
    # medium community: 30 vertices with ~40% internal density
    import random

    rng = random.Random(5)
    medium = list(range(400, 430))
    for i, u in enumerate(medium):
        for v in medium[i + 1 :]:
            if rng.random() < 0.4:
                edges.add(canonical_edge(u, v))
    # dense core: a 15-clique inside the medium community's range
    dense = medium[:15]
    for i, u in enumerate(dense):
        for v in dense[i + 1 :]:
            edges.add(canonical_edge(u, v))
    # attach the communities to the background
    for i, u in enumerate(medium):
        edges.add(canonical_edge(u, i * 3))
    return sorted(edges)


def main() -> None:
    edges = build_network()
    print(f"network: {len(edges)} edges, planted medium + dense communities\n")

    # Exact hierarchy.
    roots = core_hierarchy(edges)
    print("coreness hierarchy (component sizes per occupied core level):")

    def walk(comp, depth=0):
        print(f"  {'  ' * depth}k>={comp.k:2d}: {len(comp.vertices):4d} vertices")
        for child in sorted(comp.children, key=lambda c: -len(c.vertices)):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda c: -len(c.vertices))[:1]:
        walk(root)

    # Approximate pre-filter via the PLDS.
    plds = PLDS(n_hint=500, group_shrink=50)
    plds.update(Batch(insertions=edges))
    k_target = 14  # the dense community's core value
    candidates = approx_k_core_candidates(plds, k_target)
    exact_vs, _ = k_core_subgraph(edges, k_target)
    print(
        f"\nlooking for the k>={k_target} core "
        f"({len(exact_vs)} vertices out of {plds.num_vertices}):"
    )
    print(f"  PLDS candidate pre-filter: {len(candidates)} vertices "
          f"({100 * len(candidates) / plds.num_vertices:.1f}% of the graph)")
    assert exact_vs <= candidates, "containment guarantee violated!"
    print("  containment guarantee holds: every true member is a candidate")

    # Exact refinement restricted to candidates is cheap.
    sub_edges = [e for e in edges if e[0] in candidates and e[1] in candidates]
    refined = {
        v for v, c in exact_coreness(sub_edges).items() if c >= k_target
    }
    print(f"  refined on the candidate subgraph ({len(sub_edges)} edges): "
          f"{len(refined)} vertices — exact" if refined == exact_vs else
          "  refinement mismatch (candidate subgraph too aggressive)")


if __name__ == "__main__":
    main()
