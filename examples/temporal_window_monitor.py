"""Sliding-window core monitoring on a temporal interaction stream.

Models the paper's temporal datasets (wiki, stackoverflow): edges carry
timestamps and only the most recent `window` interactions are considered
"active".  A PLDSOpt structure consumes the sliding-window batches
(simultaneous arrivals + expiries), and we track the health of the core
structure over time using the observability API:

- per-window maximum estimated core (community intensity signal),
- error percentiles against exact peeling of the live window,
- level-occupancy statistics of the PLDS.

Run:  python examples/temporal_window_monitor.py
"""

from __future__ import annotations

from repro import PLDS, exact_coreness
from repro.bench.metrics import error_percentiles, error_stats
from repro.graphs.generators import rmat
from repro.graphs.streams import sliding_window_batches


def main() -> None:
    # An RMAT stream stands in for the temporal interaction log
    # (heavy-tailed, bursty, community-structured).
    stream = rmat(scale=10, edge_factor=8, seed=17)
    window = 2500
    batch_size = 500
    print(
        f"temporal stream: {len(stream)} interactions, window={window}, "
        f"batch={batch_size}\n"
    )

    plds = PLDS(
        n_hint=1 << 10,
        group_shrink=50,
        insertion_strategy="jump",
    )
    live: set = set()

    print(f"{'batch':>5s} {'live':>6s} {'max k̂':>7s} {'p50':>5s} {'p99':>5s} "
          f"{'max':>5s} {'top level':>9s}")
    for i, batch in enumerate(sliding_window_batches(stream, window, batch_size)):
        plds.update(batch)
        live |= set(batch.insertions)
        live -= set(batch.deletions)

        if i % 4 != 3:
            continue
        exact = exact_coreness(sorted(live))
        estimates = plds.coreness_estimates()
        stats = error_stats(estimates, exact)
        pct = error_percentiles(estimates, exact, (50.0, 99.0))
        top_est = max(
            (estimates[v] for v in exact), default=0.0
        )
        s = plds.stats()
        print(
            f"{i + 1:5d} {len(live):6d} {top_est:7.1f} "
            f"{pct[50.0]:5.2f} {pct[99.0]:5.2f} {stats.maximum:5.2f} "
            f"{int(s['max_level_in_use']):9d}"
        )

    print("\nfinal structure:", {k: round(v, 1) for k, v in plds.stats().items()})
    violations = plds.check_invariants()
    print("invariants:", "OK" if not violations else violations[:3])


if __name__ == "__main__":
    main()
