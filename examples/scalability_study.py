"""Scalability study: simulated speedup curves across algorithms.

Reproduces the shape of the paper's Figure 10 on a chosen analog
dataset: metered work/depth per algorithm converted into simulated
running times on 1..60 threads via Brent's bound (see
``repro.parallel.scheduler`` for the model and DESIGN.md for why this
substitution is faithful to the paper's claims).

Run:  python examples/scalability_study.py [dataset] [batch_divisor]
      e.g. python examples/scalability_study.py livejournal 3
"""

from __future__ import annotations

import sys

from repro.bench.harness import SEQUENTIAL_KEYS, make_adapter, run_protocol
from repro.graphs.generators import dataset_suite
from repro.parallel.scheduler import BrentScheduler

THREADS = (1, 2, 4, 8, 15, 30, 60)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "livejournal"
    divisor = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    suite = {d.paper_name: d for d in dataset_suite(scale=0.3, seed=42)}
    if dataset not in suite:
        raise SystemExit(f"unknown dataset {dataset!r}; pick from {sorted(suite)}")
    spec = suite[dataset]
    batch = max(1, spec.num_edges // divisor)
    print(
        f"dataset={spec.name} (n={spec.num_vertices}, m={spec.num_edges}), "
        f"Ins protocol, batch={batch}"
    )

    sched = BrentScheduler(hyperthread_cores=30, hyperthread_yield=0.35)
    costs = {}
    for key in ("pldsopt", "plds", "hua", "lds", "sun", "zhang"):
        res = run_protocol(
            lambda k=key: make_adapter(k, spec.num_vertices + 1),
            spec.edges,
            "ins",
            batch,
        )
        costs[key] = res.total_cost

    parallel = [k for k in costs if k not in SEQUENTIAL_KEYS]
    print("\nself-relative speedup (T_1 / T_p):")
    print("threads  " + "  ".join(f"{k:>8s}" for k in parallel))
    for p in THREADS:
        row = "  ".join(f"{sched.speedup(costs[k], p):7.2f}x" for k in parallel)
        print(f"{p:7d}  {row}")

    print("\nabsolute simulated time at 60 threads (sequential at 1):")
    for key, cost in sorted(costs.items(), key=lambda kv: kv[1].work):
        p = 1 if key in SEQUENTIAL_KEYS else 60
        print(f"  {key:8s} T = {sched.time(cost, p):12.0f}   (W={cost.work}, D={cost.depth})")


if __name__ == "__main__":
    main()
