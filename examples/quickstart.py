"""Quickstart: batch-dynamic approximate k-core decomposition.

Builds a small graph, applies insertion and deletion batches through the
PLDS, and compares the maintained (2+ε)-approximate coreness estimates
against exact peeling.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PLDS, Batch, exact_coreness
from repro.graphs.generators import ring_of_cliques


def main() -> None:
    # A ring of 6-cliques: every vertex has exact coreness 5.
    edges = ring_of_cliques(n_cliques=8, clique_size=6)
    print(f"graph: {len(edges)} edges, ring of 8 six-cliques")

    # The PLDS needs an upper bound on the vertex count and the two
    # approximation knobs (defaults δ=0.4, λ=3 → max error 4.2).
    plds = PLDS(n_hint=64, delta=0.4, lam=3.0)

    # Ins phase: feed the edges in batches.
    for i in range(0, len(edges), 40):
        plds.update(Batch(insertions=edges[i : i + 40]))

    exact = exact_coreness(edges)
    print("\nafter insertion of the full graph:")
    print(f"  exact coreness of vertex 0:     {exact[0]}")
    print(f"  PLDS estimate for vertex 0:     {plds.coreness_estimate(0):.2f}")
    print(f"  provable max error factor:      {plds.approximation_factor():.2f}")

    worst = max(
        max(plds.coreness_estimate(v) / k, k / plds.coreness_estimate(v))
        for v, k in exact.items()
        if k > 0
    )
    print(f"  worst observed error factor:    {worst:.2f}")

    # Del phase: remove one whole clique; estimates adapt.
    first_clique = [e for e in edges if e[0] < 6 and e[1] < 6]
    plds.update(Batch(deletions=first_clique))
    print("\nafter deleting the first clique's internal edges:")
    print(f"  estimate for vertex 0 (now nearly isolated): "
          f"{plds.coreness_estimate(0):.2f}")
    print(f"  estimate for vertex 10 (untouched clique):   "
          f"{plds.coreness_estimate(10):.2f}")

    # The structure also meters the work-depth cost of everything it did.
    print("\nsimulated parallel cost so far:")
    print(f"  total work:  {plds.tracker.work}")
    print(f"  total depth: {plds.tracker.depth}")


if __name__ == "__main__":
    main()
