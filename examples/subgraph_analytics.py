"""Dynamic subgraph analytics: matching, triangles, and coloring together.

The paper's Section-8 framework derives several batch-dynamic analytics
from one low out-degree orientation.  This example maintains, over the
same update stream of a collaboration network:

- a maximal matching (e.g. reviewer assignment),
- the exact triangle count (a clustering/cohesion signal),
- a proper vertex coloring (e.g. conflict-free scheduling slots),

and verifies each against a from-scratch oracle after every phase.

Run:  python examples/subgraph_analytics.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro.framework import (
    create_clique_driver,
    create_explicit_coloring_driver,
    create_matching_driver,
)
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch


def main() -> None:
    rng = random.Random(11)
    n = 600
    pool = barabasi_albert(n, 4, seed=9)

    matching_driver, matching = create_matching_driver(n_hint=n + 1)
    clique_driver, triangles = create_clique_driver(
        n_hint=n + 1, k=3, track_local=True
    )
    coloring_driver, coloring = create_explicit_coloring_driver(n_hint=n + 1)
    drivers = (matching_driver, clique_driver, coloring_driver)

    current: set = set()

    def apply(batch: Batch) -> None:
        for d in drivers:
            d.update(batch)
        current.update(batch.insertions)
        current.difference_update(batch.deletions)

    def verify(phase: str) -> None:
        G = nx.Graph(sorted(current))
        expected_triangles = sum(nx.triangles(G).values()) // 3
        assert triangles.count == expected_triangles
        assert not matching.violations()
        assert not coloring.violations()
        print(
            f"{phase:22s} edges={len(current):5d}  "
            f"|matching|={len(matching.matching()):4d}  "
            f"triangles={triangles.count:5d}  "
            f"colors={coloring.colors_used():3d}  [all verified]"
        )

    print("phase                  state")
    # Build up the network in batches.
    for i in range(0, len(pool), 600):
        apply(Batch(insertions=pool[i : i + 600]))
    verify("after build")

    # A collaboration burst: a dense working group forms.
    group = list(range(20))
    burst = [
        (u, v)
        for i, u in enumerate(group)
        for v in group[i + 1 :]
        if (u, v) not in current
    ]
    apply(Batch(insertions=burst))
    verify("after dense group")

    # Mixed churn: random project turnover.
    for step in range(3):
        dels = rng.sample(sorted(current), 150)
        avail = [e for e in pool if e not in current and e not in dels]
        ins = rng.sample(avail, min(100, len(avail)))
        apply(Batch(insertions=ins, deletions=dels))
        verify(f"after churn {step + 1}")

    # Local counts give clustering coefficients for free.
    group_cc = sum(triangles.clustering_coefficient(v) for v in group) / len(group)
    others = [v for v in clique_driver.plds.vertices() if v not in group][:100]
    other_cc = sum(triangles.clustering_coefficient(v) for v in others) / len(others)
    print(
        f"\nmean clustering coefficient: working group {group_cc:.3f} "
        f"vs background {other_cc:.3f}"
    )

    total = sum(d.tracker.work for d in drivers)
    print(f"total simulated work across the three analytics: {total}")
    print("each analytic rides the same PLDS orientation (paper Fig. 2).")


if __name__ == "__main__":
    main()
