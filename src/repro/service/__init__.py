"""Batch-serving layer: sessions that apply update batches and serve reads.

:class:`CoreService` is the single entry point the scaling roadmap
(sharding, async reads, caching) extends — see :mod:`repro.service.core`.
:meth:`CoreService.reader` hands out :class:`ServiceReader` handles whose
queries are wait-free: they serve the last *published* read epoch and
never block on (or observe) an in-flight ``apply_batch``.
"""

from .admission import (
    Admission,
    AdmissionController,
    AdmissionPolicy,
    LoadSignals,
    TenantQuota,
)
from .core import (
    AuditPolicy,
    BatchTelemetry,
    CoreService,
    ReadResult,
    RetryPolicy,
    ServiceReader,
    ServiceSnapshot,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionPolicy",
    "AuditPolicy",
    "BatchTelemetry",
    "CoreService",
    "LoadSignals",
    "ReadResult",
    "RetryPolicy",
    "ServiceReader",
    "ServiceSnapshot",
    "TenantQuota",
]
