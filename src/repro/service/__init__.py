"""Batch-serving layer: sessions that apply update batches and serve reads.

:class:`CoreService` is the single entry point the scaling roadmap
(sharding, async reads, caching) extends — see :mod:`repro.service.core`.
"""

from .core import (
    AuditPolicy,
    BatchTelemetry,
    CoreService,
    RetryPolicy,
    ServiceSnapshot,
)

__all__ = [
    "AuditPolicy",
    "BatchTelemetry",
    "CoreService",
    "RetryPolicy",
    "ServiceSnapshot",
]
