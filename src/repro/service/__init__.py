"""Batch-serving layer: sessions that apply update batches and serve reads.

:class:`CoreService` is the single entry point the scaling roadmap
(sharding, async reads, caching) extends — see :mod:`repro.service.core`.
"""

from .core import BatchTelemetry, CoreService, ServiceSnapshot

__all__ = ["BatchTelemetry", "CoreService", "ServiceSnapshot"]
