"""`CoreService`: a batch-serving session over one registered engine.

The ROADMAP's north star is serving batched updates and coreness queries
at production scale (sharding, async reads, caching).  ``CoreService``
is the seam those PRs extend: one session object that

- owns a :class:`~repro.graphs.dynamic_graph.DynamicGraph` mirror plus a
  registry-selected engine (any :func:`repro.registry.make_adapter` key,
  or a Section-8 framework application hosted on the PLDS);
- accepts *raw* update streams — :meth:`CoreService.apply_updates`
  preprocesses them per Section 8 (dedupe by timestamp, validate against
  the current graph) via :func:`repro.graphs.streams.preprocess_batch` —
  or already-valid :class:`~repro.graphs.streams.Batch` objects;
- applies every batch **transactionally**: the batch is journaled to a
  write-ahead :class:`~repro.graphs.streams.UpdateJournal` before the
  engine sees it, and any exception mid-apply (including an
  :class:`~repro.faults.InjectedFault` from the fault-injection
  substrate) rolls the engine back to its exact pre-batch state and
  retries per a :class:`RetryPolicy`;
- audits engine health per an :class:`AuditPolicy` and, on a failed
  audit, quarantines the engine and **degrades gracefully** — rebuilding
  from the graph mirror via the registry so queries keep answering
  within the ``(2+ε)`` guarantee (exact static recompute as last
  resort);
- answers coreness / core-membership / core-subgraph queries against the
  *current* state, or against a :class:`ServiceSnapshot` so reads can
  proceed consistently while later batches apply — and publishes an
  immutable :class:`~repro.core.query.EpochSnapshot` at every commit so
  :meth:`CoreService.reader` handles serve **wait-free reads** mid-batch
  with a provable one-in-flight-batch staleness bound (the
  asynchronous-reads model of Liu–Shun–Zablotchi);
- emits per-batch :class:`BatchTelemetry` — metered work/depth, wall
  time, the simulated parallel running time ``T_p`` under
  :class:`~repro.parallel.scheduler.BrentScheduler`, and the
  transaction outcome (``attempts``, ``rolled_back``, ``degraded``).

Example
-------
>>> from repro.service import CoreService
>>> from repro.graphs.streams import EdgeUpdate
>>> svc = CoreService("plds", n_hint=100)
>>> t = svc.apply_updates([
...     EdgeUpdate(0, 1, True), EdgeUpdate(1, 2, True),
...     EdgeUpdate(0, 2, True), EdgeUpdate(0, 2, True),  # duplicate: dropped
... ])
>>> (t.insertions, t.attempts, svc.coreness(0) >= 1.0)
(3, 1, True)
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from .. import faults as _faults
from .admission import Admission, AdmissionController, AdmissionPolicy, LoadSignals
from ..obs import metrics as _metrics
from ..obs import recorder as _recorder
from ..obs import timeline as _timeline
from ..obs import tracing as _tracing
from ..core.invariants import plds_invariant_violations, structure_matches_edges
from ..core.plds import PLDS
from ..core.query import EMPTY_EPOCH, CorenessQueries, EpochSnapshot
from ..faults import InjectedFault
from ..graphs.dynamic_graph import DynamicGraph
from ..graphs.streams import (
    Batch,
    EdgeUpdate,
    UpdateJournal,
    preprocess_batch,
    validate_vertex_ids,
)
from ..parallel.engine import Cost
from ..parallel.scheduler import BrentScheduler
from ..registry import (
    DynamicKCoreAdapter,
    algorithm_spec,
    make_adapter,
    make_application,
    rebuild_adapter,
)

__all__ = [
    "AuditPolicy",
    "BatchTelemetry",
    "CoreService",
    "ReadResult",
    "RetryPolicy",
    "ServiceReader",
    "ServiceSnapshot",
]

#: Registry key of the degradation ladder's last rung: exact static
#: recompute per batch — always correct, hence trivially within (2+ε).
_LAST_RESORT = "exactkcore"


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`CoreService.apply_batch` reacts to a failed attempt.

    Only *transient* failures are worth retrying — by default exactly
    :class:`~repro.faults.InjectedFault` (the substrate's model of a
    crash that will not recur); deterministic errors such as a
    ``ValueError`` from batch validation re-raise immediately after
    rollback.  Backoff is deterministic and **metered as depth** on the
    engine's tracker (attempt ``k`` waits ``backoff_depth * 2^(k-1)``
    depth units), never a wall-clock sleep, so recovery cost shows up in
    the same simulated-time currency as everything else.
    """

    max_attempts: int = 3
    backoff_depth: int = 8
    retry_on: tuple[type[BaseException], ...] = (InjectedFault,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_depth < 0:
            raise ValueError("backoff_depth must be >= 0")

    def backoff_for(self, failed_attempts: int) -> int:
        """Depth units charged before retry number ``failed_attempts + 1``."""
        return self.backoff_depth * (2 ** (failed_attempts - 1))


@dataclass(frozen=True)
class AuditPolicy:
    """When the service audits its engine against the graph mirror.

    - ``"never"``: no auditing (zero overhead);
    - ``"on-recovery"`` (the default): audit only after a batch that
      needed a rollback — zero overhead on the happy path, a structural
      check exactly where corruption is most likely;
    - ``"every"``: audit every ``every_n``-th batch.
    """

    mode: str = "on-recovery"
    every_n: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("never", "every", "on-recovery"):
            raise ValueError(
                "audit mode must be 'never', 'every', or 'on-recovery'"
            )
        if self.every_n < 1:
            raise ValueError("every_n must be >= 1")

    def due(self, batch_id: int, recovered: bool) -> bool:
        """Is an audit due after serving batch ``batch_id``?"""
        if self.mode == "never":
            return False
        if self.mode == "on-recovery":
            return recovered
        return batch_id % self.every_n == 0


@dataclass(frozen=True)
class BatchTelemetry:
    """Cost and transaction outcome of serving one batch.

    ``t_p`` is the simulated parallel running time at the service's
    thread count (Brent's bound, ``W/p + D``); sequential engines are
    always charged at ``p = 1``.  ``attempts`` counts apply attempts
    (1 = clean first try); ``rolled_back`` is ``True`` when at least one
    attempt failed and the engine was restored to its pre-batch state;
    ``degraded`` is ``True`` when this batch's audit failed and the
    service switched to a rebuilt (possibly exact-static) engine.
    """

    batch_id: int
    insertions: int
    deletions: int
    work: int
    depth: int
    wall_seconds: float
    threads: int
    t_p: float
    attempts: int = 1
    rolled_back: bool = False
    degraded: bool = False
    #: serial of the read epoch published at this batch's commit.
    read_epoch: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view — the single serialization path the
        chaos and perf reports use (no ad-hoc field copying)."""
        return asdict(self)


@dataclass(frozen=True)
class ServiceSnapshot(CorenessQueries):
    """A consistent read view of the service at one batch boundary.

    Queries on the snapshot (:meth:`coreness`, :meth:`core_members`,
    inherited from the shared
    :class:`~repro.core.query.CorenessQueries` algebra) never change,
    no matter how many batches the live service applies afterwards —
    this is the consistency contract asynchronous readers rely on.
    ``engine_state`` additionally holds the engine's exact structural
    snapshot when the registry marks the algorithm ``snapshot``-capable
    (the PLDS family), letting :meth:`CoreService.restore` rebuild
    levels bit-identically instead of replaying the edge set.
    ``read_epoch`` records the service's epoch counter so a restore
    resumes publication monotonically instead of resetting.
    """

    snapshot_id: int
    algorithm: str
    batches_applied: int
    edges: tuple[tuple[int, int], ...]
    estimates: Mapping[int, float] = field(repr=False)
    engine_state: dict | None = field(default=None, repr=False)
    read_epoch: int = 0

    def _estimates_view(self) -> Mapping[int, float]:
        return self.estimates


class ServiceReader:
    """Wait-free read handle over a service's published epochs.

    Every query reads whatever :class:`~repro.core.query.EpochSnapshot`
    the service last *published* — publication happens only at commit
    points (after the journal commit, and again after a degradation
    rebuild), so a reader never observes a torn mid-apply state, a
    rolled-back attempt, or a half-rebuilt engine: mid-batch and
    mid-rollback reads serve the last committed epoch.  No locks, no
    waiting on :meth:`CoreService.apply_batch`.

    Each answer is a :class:`ReadResult` carrying the value plus the
    consistency metadata the caller needs to reason about freshness:
    the served ``epoch``, the ``staleness`` in batches behind the
    (possibly in-flight) head, and the service's live ``degraded``
    flag.  With observability on, each read emits a ``read.snapshot``
    span, a ``service.reads`` counter, and a ``service.read_staleness``
    histogram observation.
    """

    def __init__(self, service: "CoreService") -> None:
        self._service = service

    @property
    def view(self) -> EpochSnapshot:
        """The epoch snapshot currently served (itself immutable)."""
        return self._service._published

    @property
    def epoch(self) -> int:
        return self._service._published.epoch

    @property
    def degraded(self) -> bool:
        """Live degradation state: ``True`` from the moment the audit
        ladder engages (mid-quarantine/rebuild included), not merely
        once a degraded epoch is published."""
        svc = self._service
        return svc.degraded or svc._published.degraded

    @property
    def staleness(self) -> int:
        """Committed-plus-in-flight batches ahead of the served epoch.

        0 between batches; 1 while a batch (or its rollback/retry) is
        in flight — never more, which is the wait-free staleness bound
        the mvcc checker test pins.
        """
        svc = self._service
        head = svc.batches_applied + (1 if svc._in_flight else 0)
        return max(0, head - svc._published.batches_applied)

    def _read(self, query: str, fn):
        svc = self._service
        view = svc._published
        head = svc.batches_applied + (1 if svc._in_flight else 0)
        stale = max(0, head - view.batches_applied)
        degraded = svc.degraded or view.degraded
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("service.reads", query=query)
            mreg.observe("service.read_staleness", stale)
        tracer = _tracing.ACTIVE
        if tracer is None:
            value = fn(view)
        else:
            with tracer.span(
                "read.snapshot",
                svc._tracker(),
                query=query,
                epoch=view.epoch,
                staleness=stale,
            ):
                value = fn(view)
        return ReadResult(
            value=value, epoch=view.epoch, staleness=stale, degraded=degraded
        )

    def coreness(self, v: int) -> "ReadResult":
        return self._read("coreness", lambda view: view.coreness(v))

    def coreness_map(self) -> "ReadResult":
        return self._read("coreness_map", lambda view: view.coreness_map())

    def core_members(self, k: float) -> "ReadResult":
        return self._read("core_members", lambda view: view.core_members(k))

    def core_subgraph(self, k: int) -> "ReadResult":
        return self._read("core_subgraph", lambda view: view.core_subgraph(k))

    def densest_estimate(self) -> "ReadResult":
        return self._read(
            "densest_estimate", lambda view: view.densest_estimate()
        )

    def level(self, v: int) -> "ReadResult":
        return self._read("level", lambda view: view.level(v))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceReader(epoch={self.epoch}, staleness={self.staleness}, "
            f"degraded={self.degraded})"
        )


@dataclass(frozen=True)
class ReadResult:
    """One wait-free read: the value plus its consistency metadata."""

    value: Any
    #: epoch serial the value was served from.
    epoch: int
    #: batches (committed + in flight) the served epoch is behind.
    staleness: int
    #: the service's degradation flag at read time.
    degraded: bool


class CoreService:
    """One serving session: registry-selected engine + graph mirror.

    Parameters
    ----------
    algorithm:
        A :mod:`repro.registry` algorithm key.  Ignored when
        ``application`` is given (framework applications always run on
        the PLDS their driver owns).
    n_hint:
        Expected vertex-id bound, forwarded to the engine.
    threads:
        Processor count used for the simulated ``T_p`` telemetry.
    scheduler:
        The :class:`BrentScheduler` converting (work, depth) to ``T_p``.
    application:
        Optional :mod:`repro.registry` application key ("matching",
        "cliques", ...).  The hosted app is exposed as
        :attr:`application`; coreness queries read the driver's PLDS.
    retry:
        The :class:`RetryPolicy` for failed apply attempts.
    audit:
        The :class:`AuditPolicy` scheduling invariant audits.
    transactional:
        When ``True`` (default), every batch is journaled write-ahead
        and any mid-apply exception rolls the engine back to its exact
        pre-batch state.  Snapshot-capable engines (the PLDS family and
        the sharded coordinator, which snapshots and restores shard by
        shard) restore bit-identically from a pre-batch structural
        snapshot; other engines — and hosted applications — are rebuilt
        by replaying the untouched graph mirror (valid, though for
        path-dependent approximate engines not bit-identical).  ``False``
        restores the pre-PR fail-fast behavior: exceptions propagate and
        the engine is left as the failure left it.

        The fault-isolation ladder under sharding, innermost first: a
        fault injected at ``shard.apply`` rolls back and retries **only
        the affected shard** inside the coordinator (other shards keep
        their state); a fault escaping the shard retry budget, or one
        injected at ``service.apply``, triggers this service-level
        whole-engine rollback/retry; repeated service-level failure
        walks the degradation ladder (rebuild-same, then exact static
        recompute).
    **engine_kwargs:
        Forwarded to :func:`repro.registry.make_adapter` (``delta``,
        ``lam``, ...) or to the application factory.  This includes the
        execution backend selection — ``backend="pool", workers=4``
        serves the flat engines *and* ``plds-sharded`` off the process
        pool's resident shared-memory image, observationally identical
        to the default simulated backend.
    """

    def __init__(
        self,
        algorithm: str = "pldsopt",
        *,
        n_hint: int = 1024,
        threads: int = 60,
        scheduler: BrentScheduler | None = None,
        application: str | None = None,
        retry: RetryPolicy | None = None,
        audit: AuditPolicy | None = None,
        admission: AdmissionController | AdmissionPolicy | None = None,
        transactional: bool = True,
        epoch_start: int = 0,
        **engine_kwargs: Any,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.n_hint = n_hint
        self.threads = threads
        self.scheduler = scheduler if scheduler is not None else BrentScheduler()
        self.application_key = application
        self.retry = retry if retry is not None else RetryPolicy()
        self.audit_policy = audit if audit is not None else AuditPolicy()
        if isinstance(admission, AdmissionPolicy):
            admission = AdmissionController(admission)
        #: optional admission controller; ``None`` means every
        #: :meth:`submit` is admitted unconditionally (apply_batch
        #: semantics, plus an ``Admission`` wrapper).
        self.admission = admission
        self.transactional = transactional
        self._engine_kwargs = dict(engine_kwargs)
        self.telemetry: list[BatchTelemetry] = []
        self.journal = UpdateJournal()
        self.batches_applied = 0
        self._snapshot_counter = 0
        self._graph = DynamicGraph()
        self._driver = None
        self.application = None
        #: the engine (or driver) impounded by the last failed audit.
        self.quarantined: Any = None
        #: audit-failure reports, one tuple of violations per degradation.
        self.audit_failures: list[tuple[str, ...]] = []
        self.degraded = False
        #: registry key the service degraded to (None while healthy).
        self.degraded_to: str | None = None
        if application is not None:
            self.algorithm = "plds"
            self._driver, self.application = make_application(
                application, n_hint, **engine_kwargs
            )
            self._adapter = DynamicKCoreAdapter(
                "plds", self._driver.plds, is_exact=False
            )
        else:
            self.algorithm = algorithm
            self._adapter = make_adapter(algorithm, n_hint, **engine_kwargs)
        self.spec = algorithm_spec(self.algorithm)
        if epoch_start < 0:
            raise ValueError("epoch_start must be >= 0")
        #: monotone epoch counter; ``epoch_start`` lets a recovered
        #: service resume numbering past its predecessor's last epoch.
        self.read_epoch = epoch_start
        self._in_flight = False
        self._published: EpochSnapshot = EMPTY_EPOCH
        self._publish_epoch()  # epoch_start+1: the (empty) initial state

    # -- state -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def engine(self) -> Any:
        """The live engine implementation (read-only observation seam).

        Observability consumers (``repro metrics``, dashboards) read
        level/group occupancy off this; mutating it bypasses the
        journal/mirror and is undefined behavior.
        """
        return self._driver.plds if self._driver is not None else self._adapter.impl

    @property
    def total_cost(self) -> Cost:
        """Metered (work, depth) accumulated by the engine so far."""
        return self._adapter.cost

    def space_bytes(self) -> int:
        return self._adapter.space_bytes()

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    # -- updates ---------------------------------------------------------

    def apply_updates(self, updates: Iterable[EdgeUpdate]) -> BatchTelemetry:
        """Preprocess a raw update stream (Section 8) and apply it.

        Duplicates collapse to the latest timestamp per edge; insertions
        of present edges and deletions of absent edges are dropped.
        """
        return self.apply_batch(preprocess_batch(self._graph, updates))

    def apply_batch(self, batch: Batch) -> BatchTelemetry:
        """Apply one batch of *unique, valid* updates, transactionally.

        The batch is journaled write-ahead, then applied under the
        service's :class:`RetryPolicy`: a failed attempt rolls the
        engine back to its exact pre-batch state, charges the metered
        backoff, and retries (transient faults only); exhausted or
        non-transient failures re-raise with the journal record aborted
        and the service still serving the pre-batch state.  After a
        commit, the :class:`AuditPolicy` may trigger an invariant audit
        and — on failure — graceful degradation (see :meth:`audit`).

        Telemetry covers the successful attempt (plus backoff depth);
        rolled-back attempts' metering is discarded with their state.

        With a tracer installed (:mod:`repro.obs.tracing`), the whole
        method runs under a ``service.batch`` span whose (work, depth)
        delta equals this batch's :class:`BatchTelemetry` exactly on
        fault-free batches, with one ``service.apply`` child span per
        attempt; rollback re-snapshotting breaks the equality for
        batches that needed a retry (by design — telemetry discards
        rolled-back metering, the span does not once the engine keeps
        its tracker).
        """
        tracer = _tracing.ACTIVE
        if tracer is None:
            return self._serve_batch(batch, None)
        with tracer.span(
            "service.batch",
            self._tracker(),
            algorithm=self.algorithm,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
        ):
            return self._serve_batch(batch, tracer)

    def _serve_batch(
        self, batch: Batch, tracer: "_tracing.Tracer | None"
    ) -> BatchTelemetry:
        validate_vertex_ids(batch)
        # While in flight, concurrent readers serve the last published
        # epoch and report staleness 1 (one in-flight batch behind).
        self._in_flight = True
        try:
            return self._serve_batch_inflight(batch, tracer)
        finally:
            self._in_flight = False

    def _serve_batch_inflight(
        self, batch: Batch, tracer: "_tracing.Tracer | None"
    ) -> BatchTelemetry:
        mreg = _metrics.ACTIVE
        record = self.journal.begin(batch)
        restore_point = self._restore_point() if self.transactional else None
        attempts = 0
        rolled_back = False
        t0 = time.perf_counter()
        before = self._adapter.cost
        while True:
            attempts += 1
            attempt_span = (
                tracer.begin("service.apply", self._tracker(), attempt=attempts)
                if tracer is not None
                else None
            )
            try:
                plan = _faults.ACTIVE
                if plan is not None:
                    plan.hit("service.apply")
                    # Slow-apply injection: an armed StallPoint charges
                    # its depth here, inflating this batch's metered
                    # depth (and t_p) exactly like a slow engine would.
                    stall = plan.delay_for("service.apply")
                    if stall:
                        self._tracker().add(work=0, depth=stall)
                if self._driver is not None:
                    self._driver.update(batch)
                else:
                    self._adapter.update(batch)
                if attempt_span is not None:
                    tracer.end(attempt_span)
                break
            except Exception as exc:
                if attempt_span is not None:
                    # Unwinds any spans the failed cascade left open.
                    tracer.end(attempt_span, error=type(exc).__name__)
                if not self.transactional:
                    self.journal.abort(record)
                    raise
                self._restore_engine(
                    tuple(sorted(self._graph.edges())), restore_point
                )
                rolled_back = True
                if mreg is not None:
                    mreg.inc("service.rollbacks")
                rec = _recorder.ACTIVE
                if rec is not None:
                    rec.note(
                        "service.rollback",
                        batch=self.batches_applied + 1,
                        attempt=attempts,
                        error=type(exc).__name__,
                    )
                before = self._adapter.cost
                if attempts >= self.retry.max_attempts or not isinstance(
                    exc, self.retry.retry_on
                ):
                    self.journal.abort(record)
                    raise
                if mreg is not None:
                    mreg.inc("service.retries")
                backoff = self.retry.backoff_for(attempts)
                if backoff:
                    self._tracker().add(work=0, depth=backoff)
        wall = time.perf_counter() - t0
        # Mirror only after the engine accepted the batch, so a rejected
        # (invalid) batch leaves service state untouched.
        for u, v in batch.insertions:
            self._graph.insert_edge(u, v)
        for u, v in batch.deletions:
            self._graph.delete_edge(u, v)
        self.journal.commit(record)
        after = self._adapter.cost
        delta = Cost(after.work - before.work, after.depth - before.depth)
        self.batches_applied += 1
        # The commit point of the commit-publish protocol: the journal
        # committed and the mirror reflects the batch, so the new state
        # becomes readable *now* — before the audit, which may take a
        # long degradation detour that readers must not wait on.
        published = self._publish_epoch(self._commit_touched(batch))
        degraded = False
        if self.audit_policy.due(self.batches_applied, rolled_back):
            if tracer is not None:
                with tracer.span("service.audit", self._tracker()):
                    problems = self.audit()
            else:
                problems = self.audit()
            if mreg is not None:
                mreg.inc("service.audits")
            if problems:
                rec = _recorder.ACTIVE
                if rec is not None:
                    rec.trip(
                        "audit",
                        batch=self.batches_applied,
                        problems=len(problems),
                    )
                self._degrade(problems)
                degraded = True
                if mreg is not None:
                    mreg.inc("service.audits_failed")
                    mreg.inc("service.degraded")
        if mreg is not None:
            mreg.inc("service.batches")
        entry = BatchTelemetry(
            batch_id=self.batches_applied,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
            work=delta.work,
            depth=delta.depth,
            wall_seconds=wall,
            threads=self.threads if self.spec.parallel else 1,
            t_p=self.scheduler.time(
                delta, self.threads if self.spec.parallel else 1
            ),
            attempts=attempts,
            rolled_back=rolled_back,
            degraded=degraded,
            read_epoch=published.epoch,
        )
        self.telemetry.append(entry)
        rec = _recorder.ACTIVE
        if rec is not None:
            rec.note(
                "service.batch",
                batch=entry.batch_id,
                work=entry.work,
                depth=entry.depth,
                attempts=entry.attempts,
                rolled_back=entry.rolled_back,
                degraded=entry.degraded,
            )
        tline = _timeline.ACTIVE
        if tline is not None:
            tline.sample(self.batches_applied, kind="batch")
        return entry

    def _tracker(self):
        impl = self._driver.plds if self._driver is not None else self._adapter.impl
        return impl.tracker

    # -- admission-controlled serving (overload safety) ------------------

    def submit(
        self,
        batch: Batch,
        *,
        tenant: str = "default",
        now: float = 0.0,
        queue_depth: int = 0,
    ) -> Admission:
        """Admission-checked :meth:`apply_batch` — the multi-tenant door.

        With no :attr:`admission` controller the batch is applied
        unconditionally.  Otherwise the controller decides first —
        charging the tenant's token bucket the batch's update count (or
        the policy's fixed ``write_cost``) and honoring the queue-depth
        bound — and the batch is applied **only** on ``admitted``; a
        ``rejected``/``shed`` decision returns immediately with its
        ``retry_after`` hint and the engine never sees the batch.  After
        an admitted apply the controller observes :meth:`load_signals`,
        which is where backpressure engages and releases.

        ``now`` is simulated time (the ``t_p`` currency), ``queue_depth``
        is the caller's view of its pending pipeline — the service is
        synchronous, so queue state lives with the traffic source.
        """
        if self.admission is None:
            telemetry = self.apply_batch(batch)
            return Admission("admitted", tenant, "write", telemetry=telemetry)
        policy = self.admission.policy
        cost = policy.write_cost if policy.write_cost is not None else max(1, len(batch))
        decision = self.admission.admit(
            tenant,
            now=now,
            cost=cost,
            kind="write",
            queue_depth=queue_depth,
            degraded=self.degraded,
        )
        if not decision.admitted:
            return decision
        telemetry = self.apply_batch(batch)
        self.admission.observe(self.load_signals(), now=now)
        return replace(decision, telemetry=telemetry)

    def admit_read(
        self, tenant: str = "default", *, now: float = 0.0, cost: float | None = None
    ) -> Admission:
        """Admission decision for one read; reads never queue or shed.

        Callers pair this with :meth:`reader` — admitted reads are
        served wait-free from the published epoch; rejected reads carry
        a ``retry_after`` hint like writes do.
        """
        if self.admission is None:
            return Admission("admitted", tenant, "read")
        if cost is None:
            cost = self.admission.policy.read_cost
        return self.admission.admit(
            tenant, now=now, cost=cost, kind="read", degraded=self.degraded
        )

    def load_signals(self) -> LoadSignals:
        """Live overload signals for the admission controller.

        ``depth`` is the last batch's metered depth (includes injected
        ``service.apply`` stalls and retry backoff); ``rounds`` and
        ``shard_lag`` come from the sharded coordinator when the engine
        is sharded (a stalled shard inflates its scatter depth, so lag =
        slowest − fastest shard depth spikes), else stay 0.
        """
        impl = self._driver.plds if self._driver is not None else self._adapter.impl
        depth = self.telemetry[-1].depth if self.telemetry else 0
        rounds = int(getattr(impl, "last_rounds", 0))
        lag_fn = getattr(impl, "shard_lag", None)
        shard_lag = int(lag_fn()) if callable(lag_fn) else 0
        return LoadSignals(depth=depth, rounds=rounds, shard_lag=shard_lag)

    # -- epoch publication (the commit-publish protocol) -----------------

    def reader(self) -> ServiceReader:
        """A wait-free read handle serving the last *published* epoch.

        See :class:`ServiceReader`; readers keep answering — with
        epoch/staleness metadata — while :meth:`apply_batch` is mid
        apply, mid rollback, or mid degradation rebuild.
        """
        return ServiceReader(self)

    def _publish_epoch(self, touched: "set[int] | None" = None) -> EpochSnapshot:
        """Publish the current committed state as the next read epoch.

        Engines exposing the :class:`~repro.core.query.QueryView`
        surface publish copy-on-write (only ``touched`` entries are
        re-derived; the sharded coordinator additionally records its
        stable per-shard epoch vector); everything else — including the
        exact static engine the degradation ladder falls back to — is
        published from a full estimate sweep.  Callers must sit at a
        commit point: the journal commit, a degradation rebuild's end,
        or a snapshot restore.
        """
        impl = self._driver.plds if self._driver is not None else self._adapter.impl
        publish = getattr(impl, "publish_epoch", None)
        shard_epochs = None
        if publish is not None:
            snap = publish(touched)
            estimates: Mapping[int, float] = snap.estimates
            levels: Mapping[int, int] = snap.levels
            shard_epochs = snap.shard_epochs
        else:
            estimates = self._adapter.estimates()
            levels = {}
        self.read_epoch += 1
        view = EpochSnapshot(
            epoch=self.read_epoch,
            estimates=estimates,
            levels=levels,
            shard_epochs=shard_epochs,
            batches_applied=self.batches_applied,
            degraded=self.degraded,
            edges=frozenset(self._graph.edges()),
        )
        self._published = view
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.gauge("service.read_epoch", self.read_epoch)
        return view

    def _commit_touched(self, batch: Batch) -> "set[int] | None":
        """Vertices whose epoch entries this commit may change: the
        batch's endpoints plus the engine's :attr:`last_moved` set —
        or ``None`` (publish fully) when the engine cannot bound its
        moves (rebuild happened, or it is not a QueryView engine)."""
        impl = self._driver.plds if self._driver is not None else self._adapter.impl
        moved = getattr(impl, "last_moved", None)
        if moved is None:
            return None
        touched = set(moved)
        for u, v in batch.insertions:
            touched.add(u)
            touched.add(v)
        for u, v in batch.deletions:
            touched.add(u)
            touched.add(v)
        return touched

    def _restore_point(self) -> dict | None:
        """Pre-batch rollback state: an exact structural snapshot for
        snapshot-capable engines, ``None`` for everything rebuilt by
        replaying the (still pre-batch) graph mirror."""
        if self._driver is None and self.spec.snapshot:
            return self._adapter.impl.to_snapshot()
        return None

    # -- auditing and graceful degradation -------------------------------

    def audit(self) -> list[str]:
        """Audit the live engine against the graph mirror.

        For the PLDS family (including the sequential LDS) this runs the
        full structural check: Invariants 1–2 and U/L bookkeeping
        (:func:`~repro.core.invariants.plds_invariant_violations`) plus
        edge-set agreement with the mirror
        (:func:`~repro.core.invariants.structure_matches_edges`).
        Sharded engines audit shard by shard: each problem the
        coordinator's ``check_invariants`` reports is prefixed with the
        offending shard id, and the per-shard edge unions must agree
        with the mirror exactly.  Engines without a checkable level
        structure audit vacuously.  Returns human-readable violations;
        empty list means healthy.
        """
        impl = self._driver.plds if self._driver is not None else self._adapter.impl
        return self._audit_impl(impl)

    def _audit_impl(self, impl: Any) -> list[str]:
        if isinstance(impl, PLDS):
            problems = list(plds_invariant_violations(impl))
            problems.extend(
                structure_matches_edges(impl, set(self._graph.edges()))
            )
            return problems
        if hasattr(impl, "check_invariants") and hasattr(impl, "edges"):
            # Sharded coordinator (and any future engine exposing the
            # same audit surface): per-shard invariant sweep plus
            # edge-set agreement of the shard union with the mirror.
            problems = list(impl.check_invariants())
            problems.extend(
                structure_matches_edges(impl, set(self._graph.edges()))
            )
            return problems
        return []

    def _degrade(self, problems: Sequence[str]) -> None:
        """Quarantine the failed engine and walk the degradation ladder.

        Rung 1 rebuilds the *same* algorithm from the graph mirror via
        the registry (:func:`repro.registry.rebuild_adapter`); if the
        rebuild itself fails its audit, rung 2 swaps in the exact
        static-recompute engine (``exactkcore``) — slower, but its
        answers are exact, hence trivially within the ``(2+ε)`` bound.
        Hosted applications degrade by rebuilding driver + application
        from the mirror; if even that audits dirty, the application is
        dropped and coreness serving falls through to rung 2.

        Readers are never blocked by the ladder: ``degraded`` flips at
        entry (so mid-quarantine/rebuild reads report it immediately)
        while they keep serving the last committed epoch; the rebuilt
        engine's estimates are republished as a fresh epoch once the
        ladder settles.
        """
        # Every exit path below ends degraded; setting it first makes
        # the flag visible to wait-free readers *during* the rebuild.
        self.degraded = True
        self.audit_failures.append(tuple(problems))
        rec = _recorder.ACTIVE
        if rec is not None:
            rec.trip(
                "degrade",
                rung="quarantine",
                batch=self.batches_applied,
                failures=len(self.audit_failures),
            )
        edges = sorted(self._graph.edges())
        try:
            self._degrade_ladder(edges)
        finally:
            # The engine changed under the readers' feet (rebuild or
            # exact-static swap): publish its estimates as a new epoch.
            self._publish_epoch()

    def _degrade_ladder(self, edges: list[tuple[int, int]]) -> None:
        rec = _recorder.ACTIVE
        if self._driver is not None:
            self.quarantined = self._driver
            self._restore_engine(edges, None)
            if not self.audit():
                self.degraded_to = self.algorithm
                if rec is not None:
                    rec.trip("degrade", rung="rebuild", engine=self.algorithm)
                return
        else:
            self.quarantined = self._adapter
            try:
                candidate = rebuild_adapter(
                    self.algorithm, self.n_hint, edges, **self._engine_kwargs
                )
            except Exception:
                candidate = None
            if candidate is not None and not self._audit_impl(candidate.impl):
                self._adapter = candidate
                self.degraded_to = self.algorithm
                if rec is not None:
                    rec.trip("degrade", rung="rebuild", engine=self.algorithm)
                return
        # Last resort: exact static recompute from the mirror.  Dropping
        # a hosted application here is deliberate — coreness queries keep
        # answering (exactly) even when the framework layer is beyond
        # repair.
        self._adapter = rebuild_adapter(_LAST_RESORT, self.n_hint, edges)
        self._driver = None
        self.application = None
        self.algorithm = _LAST_RESORT
        self.spec = algorithm_spec(_LAST_RESORT)
        self.degraded_to = _LAST_RESORT
        if rec is not None:
            rec.trip("degrade", rung="exactkcore", engine=_LAST_RESORT)

    # -- queries ---------------------------------------------------------

    def coreness(self, v: int) -> float:
        """Current coreness estimate of ``v`` (0.0 for unknown vertices)."""
        impl = self._adapter.impl
        estimate = getattr(impl, "coreness_estimate", None)
        if estimate is not None:
            return float(estimate(v))
        return float(self._adapter.estimates().get(v, 0.0))

    def coreness_map(self) -> dict[int, float]:
        """Current estimates for every vertex the engine has seen."""
        return self._adapter.estimates()

    def core_members(self, k: float) -> set[int]:
        """Vertices admitted to the (approximate) k-core at value ``k``.

        For exact engines this is the true k-core membership.  For the
        PLDS family it is the Lemma-5.13 superset filter of
        :func:`repro.static_kcore.subgraphs.approx_k_core_candidates`
        (contains every true member, may admit low-coreness extras); for
        other approximate engines — including the sharded coordinator,
        whose levels live across shards — a plain ``estimate >= k``
        threshold on the (bit-identical) coreness estimates.
        """
        impl = self._adapter.impl
        if isinstance(impl, PLDS) and k > 0:
            from ..static_kcore.subgraphs import approx_k_core_candidates

            return approx_k_core_candidates(impl, k)
        return {v for v, c in self.coreness_map().items() if c >= k}

    def core_subgraph(self, k: int) -> tuple[set[int], list[tuple[int, int]]]:
        """The *exact* k-core of the current graph (vertices, edges).

        Computed by peeling the service's graph mirror — exact regardless
        of which engine serves the fast approximate queries.
        """
        from ..static_kcore.subgraphs import k_core_subgraph

        return k_core_subgraph(self._graph.edges(), k)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> ServiceSnapshot:
        """Freeze a consistent read view (and restore point) of the state."""
        engine_state = None
        if self._driver is None and self.spec.snapshot:
            engine_state = self._adapter.impl.to_snapshot()
        self._snapshot_counter += 1
        return ServiceSnapshot(
            snapshot_id=self._snapshot_counter,
            algorithm=self.algorithm,
            batches_applied=self.batches_applied,
            edges=tuple(sorted(self._graph.edges())),
            estimates=self.coreness_map(),
            engine_state=engine_state,
            read_epoch=self.read_epoch,
        )

    def restore(self, snapshot: ServiceSnapshot) -> None:
        """Roll the service back to ``snapshot``.

        Snapshot-capable engines (PLDS family) are rebuilt bit-exactly
        from their structural snapshot; everything else — including
        hosted applications — is rebuilt by replaying the snapshotted
        edge set as one insertion batch.  The journal is an append-only
        log and is kept; :attr:`batches_applied` rewinds and
        :attr:`telemetry` is truncated to the snapshot's batch horizon so
        the two stay consistent (a telemetry row for a batch the service
        no longer reflects would be a lie).  Emits a ``service.restore``
        span and counter when observability is on.
        """
        if snapshot.algorithm != self.algorithm:
            raise ValueError(
                f"snapshot was taken from {snapshot.algorithm!r}, "
                f"this service runs {self.algorithm!r}"
            )
        tracer = _tracing.ACTIVE
        if tracer is None:
            self._restore_from(snapshot)
            return
        with tracer.span(
            "service.restore",
            self._tracker(),
            mode="snapshot",
            snapshot_id=snapshot.snapshot_id,
        ):
            self._restore_from(snapshot)

    def _restore_from(self, snapshot: ServiceSnapshot) -> None:
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("service.restores", mode="snapshot")
        self._restore_engine(snapshot.edges, snapshot.engine_state)
        self._graph = DynamicGraph(snapshot.edges)
        self.batches_applied = snapshot.batches_applied
        self.telemetry = [
            t for t in self.telemetry if t.batch_id <= snapshot.batches_applied
        ]
        # Monotone epoch resumption: never re-issue a serial the live
        # service (or the snapshotted one) already published — readers
        # rely on epoch order agreeing with publication order.
        self.read_epoch = max(self.read_epoch, snapshot.read_epoch)
        self._publish_epoch()

    def _restore_engine(
        self,
        edges: Sequence[tuple[int, int]],
        engine_state: dict | None,
    ) -> None:
        """Put the engine into the state described by (edges, engine_state).

        Shared by :meth:`restore` (rewind to a snapshot) and the
        transactional rollback path (restore to the pre-batch state,
        whose edge set the not-yet-mirrored graph still holds).  The
        engine's tracker is carried over on the exact-snapshot path so
        metering stays monotone across rollbacks.
        """
        if self._driver is not None:
            assert self.application_key is not None
            self._driver, self.application = make_application(
                self.application_key, self.n_hint, **self._engine_kwargs
            )
            self._adapter = DynamicKCoreAdapter(
                "plds", self._driver.plds, is_exact=False
            )
            if edges:
                self._driver.update(Batch(insertions=list(edges)))
        elif engine_state is not None:
            impl_cls = type(self._adapter.impl)
            self._adapter = DynamicKCoreAdapter(
                self.algorithm,
                impl_cls.from_snapshot(
                    engine_state, tracker=self._adapter.impl.tracker
                ),
                self.spec.exact,
            )
        else:
            self._adapter = make_adapter(
                self.algorithm, self.n_hint, **self._engine_kwargs
            )
            self._adapter.initialize(list(edges))

    # -- crash recovery --------------------------------------------------

    @classmethod
    def from_journal(
        cls,
        journal: UpdateJournal,
        algorithm: str = "pldsopt",
        **kwargs: Any,
    ) -> "CoreService":
        """Rebuild a service by replaying a journal's committed batches.

        The crash-recovery path: a process that persisted its write-ahead
        journal (:meth:`UpdateJournal.dump`) reconstructs the exact
        batch sequence — for deterministic engines the replayed service
        is bit-identical to the crashed one.  Pending and aborted records
        are skipped, matching their transaction semantics.

        The rebuilt service's telemetry covers the replayed batches (its
        own serving history), and the replay is observable: it counts as
        one ``service.restores{mode="journal"}`` and, when a tracer is
        active, runs inside a ``service.restore`` span.

        Epoch numbering stays monotone across the crash: pass the
        crashed service's last :attr:`read_epoch` as ``epoch_start``
        (forwarded to the constructor) and the recovered service resumes
        publishing *past* it — each replayed commit publishes the next
        serial — instead of restarting readers at epoch 0.
        """
        service = cls(algorithm, **kwargs)
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("service.restores", mode="journal")
        tracer = _tracing.ACTIVE
        if tracer is None:
            for batch in journal.committed_batches():
                service.apply_batch(batch)
            return service
        with tracer.span("service.restore", service._tracker(), mode="journal"):
            for batch in journal.committed_batches():
                service.apply_batch(batch)
        return service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host = (
            f"application={self.application_key!r}"
            if self.application_key
            else f"algorithm={self.algorithm!r}"
        )
        flags = ", DEGRADED" if self.degraded else ""
        return (
            f"CoreService({host}, n={self.num_vertices}, m={self.num_edges}, "
            f"batches={self.batches_applied}{flags})"
        )
