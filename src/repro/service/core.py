"""`CoreService`: a batch-serving session over one registered engine.

The ROADMAP's north star is serving batched updates and coreness queries
at production scale (sharding, async reads, caching).  ``CoreService``
is the seam those PRs extend: one session object that

- owns a :class:`~repro.graphs.dynamic_graph.DynamicGraph` mirror plus a
  registry-selected engine (any :func:`repro.registry.make_adapter` key,
  or a Section-8 framework application hosted on the PLDS);
- accepts *raw* update streams — :meth:`CoreService.apply_updates`
  preprocesses them per Section 8 (dedupe by timestamp, validate against
  the current graph) via :func:`repro.graphs.streams.preprocess_batch` —
  or already-valid :class:`~repro.graphs.streams.Batch` objects;
- answers coreness / core-membership / core-subgraph queries against the
  *current* state, or against a :class:`ServiceSnapshot` so reads can
  proceed consistently while later batches apply (the asynchronous-reads
  model of Liu–Shun–Zablotchi);
- emits per-batch :class:`BatchTelemetry` — metered work/depth, wall
  time, and the simulated parallel running time ``T_p`` under
  :class:`~repro.parallel.scheduler.BrentScheduler`.

Example
-------
>>> from repro.service import CoreService
>>> from repro.graphs.streams import EdgeUpdate
>>> svc = CoreService("plds", n_hint=100)
>>> t = svc.apply_updates([
...     EdgeUpdate(0, 1, True), EdgeUpdate(1, 2, True),
...     EdgeUpdate(0, 2, True), EdgeUpdate(0, 2, True),  # duplicate: dropped
... ])
>>> (t.insertions, svc.coreness(0) >= 1.0)
(3, True)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..core.plds import PLDS
from ..graphs.dynamic_graph import DynamicGraph
from ..graphs.streams import Batch, EdgeUpdate, preprocess_batch
from ..parallel.engine import Cost
from ..parallel.scheduler import BrentScheduler
from ..registry import (
    DynamicKCoreAdapter,
    algorithm_spec,
    make_adapter,
    make_application,
)

__all__ = ["BatchTelemetry", "ServiceSnapshot", "CoreService"]


@dataclass(frozen=True)
class BatchTelemetry:
    """Cost of serving one batch.

    ``t_p`` is the simulated parallel running time at the service's
    thread count (Brent's bound, ``W/p + D``); sequential engines are
    always charged at ``p = 1``.
    """

    batch_id: int
    insertions: int
    deletions: int
    work: int
    depth: int
    wall_seconds: float
    threads: int
    t_p: float


@dataclass(frozen=True)
class ServiceSnapshot:
    """A consistent read view of the service at one batch boundary.

    Queries on the snapshot (:meth:`coreness`, :meth:`core_members`)
    never change, no matter how many batches the live service applies
    afterwards — this is the consistency contract asynchronous readers
    rely on.  ``engine_state`` additionally holds the engine's exact
    structural snapshot when the registry marks the algorithm
    ``snapshot``-capable (the PLDS family), letting
    :meth:`CoreService.restore` rebuild levels bit-identically instead
    of replaying the edge set.
    """

    snapshot_id: int
    algorithm: str
    batches_applied: int
    edges: tuple[tuple[int, int], ...]
    estimates: Mapping[int, float] = field(repr=False)
    engine_state: dict | None = field(default=None, repr=False)

    def coreness(self, v: int) -> float:
        """Coreness estimate of ``v`` as of the snapshot (0.0 if absent)."""
        return float(self.estimates.get(v, 0.0))

    def coreness_map(self) -> dict[int, float]:
        """All estimates as of the snapshot."""
        return dict(self.estimates)

    def core_members(self, k: float) -> set[int]:
        """Vertices whose snapshotted estimate is at least ``k``."""
        return {v for v, c in self.estimates.items() if c >= k}


class CoreService:
    """One serving session: registry-selected engine + graph mirror.

    Parameters
    ----------
    algorithm:
        A :mod:`repro.registry` algorithm key.  Ignored when
        ``application`` is given (framework applications always run on
        the PLDS their driver owns).
    n_hint:
        Expected vertex-id bound, forwarded to the engine.
    threads:
        Processor count used for the simulated ``T_p`` telemetry.
    scheduler:
        The :class:`BrentScheduler` converting (work, depth) to ``T_p``.
    application:
        Optional :mod:`repro.registry` application key ("matching",
        "cliques", ...).  The hosted app is exposed as
        :attr:`application`; coreness queries read the driver's PLDS.
    **engine_kwargs:
        Forwarded to :func:`repro.registry.make_adapter` (``delta``,
        ``lam``, ...) or to the application factory.
    """

    def __init__(
        self,
        algorithm: str = "pldsopt",
        *,
        n_hint: int = 1024,
        threads: int = 60,
        scheduler: BrentScheduler | None = None,
        application: str | None = None,
        **engine_kwargs: Any,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.n_hint = n_hint
        self.threads = threads
        self.scheduler = scheduler if scheduler is not None else BrentScheduler()
        self.application_key = application
        self._engine_kwargs = dict(engine_kwargs)
        self.telemetry: list[BatchTelemetry] = []
        self.batches_applied = 0
        self._snapshot_counter = 0
        self._graph = DynamicGraph()
        self._driver = None
        self.application = None
        if application is not None:
            self.algorithm = "plds"
            self._driver, self.application = make_application(
                application, n_hint, **engine_kwargs
            )
            self._adapter = DynamicKCoreAdapter(
                "plds", self._driver.plds, is_exact=False
            )
        else:
            self.algorithm = algorithm
            self._adapter = make_adapter(algorithm, n_hint, **engine_kwargs)
        self.spec = algorithm_spec(self.algorithm)

    # -- state -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def total_cost(self) -> Cost:
        """Metered (work, depth) accumulated by the engine so far."""
        return self._adapter.cost

    def space_bytes(self) -> int:
        return self._adapter.space_bytes()

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    # -- updates ---------------------------------------------------------

    def apply_updates(self, updates: Iterable[EdgeUpdate]) -> BatchTelemetry:
        """Preprocess a raw update stream (Section 8) and apply it.

        Duplicates collapse to the latest timestamp per edge; insertions
        of present edges and deletions of absent edges are dropped.
        """
        return self.apply_batch(preprocess_batch(self._graph, updates))

    def apply_batch(self, batch: Batch) -> BatchTelemetry:
        """Apply one batch of *unique, valid* updates; record telemetry."""
        before = self._adapter.cost
        t0 = time.perf_counter()
        if self._driver is not None:
            self._driver.update(batch)
        else:
            self._adapter.update(batch)
        wall = time.perf_counter() - t0
        # Mirror only after the engine accepted the batch, so a rejected
        # (invalid) batch leaves service state untouched.
        for u, v in batch.insertions:
            self._graph.insert_edge(u, v)
        for u, v in batch.deletions:
            self._graph.delete_edge(u, v)
        after = self._adapter.cost
        delta = Cost(after.work - before.work, after.depth - before.depth)
        self.batches_applied += 1
        entry = BatchTelemetry(
            batch_id=self.batches_applied,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
            work=delta.work,
            depth=delta.depth,
            wall_seconds=wall,
            threads=self.threads if self.spec.parallel else 1,
            t_p=self.scheduler.time(
                delta, self.threads if self.spec.parallel else 1
            ),
        )
        self.telemetry.append(entry)
        return entry

    # -- queries ---------------------------------------------------------

    def coreness(self, v: int) -> float:
        """Current coreness estimate of ``v`` (0.0 for unknown vertices)."""
        impl = self._adapter.impl
        estimate = getattr(impl, "coreness_estimate", None)
        if estimate is not None:
            return float(estimate(v))
        return float(self._adapter.estimates().get(v, 0.0))

    def coreness_map(self) -> dict[int, float]:
        """Current estimates for every vertex the engine has seen."""
        return self._adapter.estimates()

    def core_members(self, k: float) -> set[int]:
        """Vertices admitted to the (approximate) k-core at value ``k``.

        For exact engines this is the true k-core membership.  For the
        PLDS family it is the Lemma-5.13 superset filter of
        :func:`repro.static_kcore.subgraphs.approx_k_core_candidates`
        (contains every true member, may admit low-coreness extras); for
        other approximate engines a plain ``estimate >= k`` threshold.
        """
        impl = self._adapter.impl
        if isinstance(impl, PLDS) and k > 0:
            from ..static_kcore.subgraphs import approx_k_core_candidates

            return approx_k_core_candidates(impl, k)
        return {v for v, c in self.coreness_map().items() if c >= k}

    def core_subgraph(self, k: int) -> tuple[set[int], list[tuple[int, int]]]:
        """The *exact* k-core of the current graph (vertices, edges).

        Computed by peeling the service's graph mirror — exact regardless
        of which engine serves the fast approximate queries.
        """
        from ..static_kcore.subgraphs import k_core_subgraph

        return k_core_subgraph(self._graph.edges(), k)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> ServiceSnapshot:
        """Freeze a consistent read view (and restore point) of the state."""
        engine_state = None
        if self._driver is None and self.spec.snapshot:
            engine_state = self._adapter.impl.to_snapshot()
        self._snapshot_counter += 1
        return ServiceSnapshot(
            snapshot_id=self._snapshot_counter,
            algorithm=self.algorithm,
            batches_applied=self.batches_applied,
            edges=tuple(sorted(self._graph.edges())),
            estimates=self.coreness_map(),
            engine_state=engine_state,
        )

    def restore(self, snapshot: ServiceSnapshot) -> None:
        """Roll the service back to ``snapshot``.

        Snapshot-capable engines (PLDS family) are rebuilt bit-exactly
        from their structural snapshot; everything else — including
        hosted applications — is rebuilt by replaying the snapshotted
        edge set as one insertion batch.  Telemetry is an append-only
        log and is kept; :attr:`batches_applied` rewinds.
        """
        if snapshot.algorithm != self.algorithm:
            raise ValueError(
                f"snapshot was taken from {snapshot.algorithm!r}, "
                f"this service runs {self.algorithm!r}"
            )
        edges: Sequence[tuple[int, int]] = snapshot.edges
        if self._driver is not None:
            assert self.application_key is not None
            self._driver, self.application = make_application(
                self.application_key, self.n_hint, **self._engine_kwargs
            )
            self._adapter = DynamicKCoreAdapter(
                "plds", self._driver.plds, is_exact=False
            )
            if edges:
                self._driver.update(Batch(insertions=list(edges)))
        elif snapshot.engine_state is not None:
            impl_cls = type(self._adapter.impl)
            self._adapter = DynamicKCoreAdapter(
                self.algorithm,
                impl_cls.from_snapshot(snapshot.engine_state),
                self.spec.exact,
            )
        else:
            self._adapter = make_adapter(
                self.algorithm, self.n_hint, **self._engine_kwargs
            )
            self._adapter.initialize(list(edges))
        self._graph = DynamicGraph(edges)
        self.batches_applied = snapshot.batches_applied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        host = (
            f"application={self.application_key!r}"
            if self.application_key
            else f"algorithm={self.algorithm!r}"
        )
        return (
            f"CoreService({host}, n={self.num_vertices}, m={self.num_edges}, "
            f"batches={self.batches_applied})"
        )
