"""Admission control and backpressure for the serving layer.

Crash safety (the journal + retry + degradation ladder) protects the
engine from *faults*; this module protects it from *load*.  An
:class:`AdmissionController` sits in front of ``CoreService.submit`` and
decides, per tenant and per request, one of three explicit outcomes:

``admitted``
    The request may proceed; for writes the batch is applied.
``rejected``
    The tenant's token bucket is out of tokens.  The outcome carries a
    ``retry_after`` hint (simulated time until the bucket refills enough
    to cover the request's cost) so callers back off instead of
    hammering the bucket.
``shed``
    The service-wide queue-depth bound is exceeded — the request is
    dropped to protect latency for everyone, with a fixed ``retry_after``
    backoff hint.

Two live signals *tighten* admission without any configuration churn:

- **Degradation ladder** (``CoreService.degraded``): while the service is
  serving from a degraded engine, every tenant's token refill rate is
  multiplied by ``AdmissionPolicy.degraded_factor`` (< 1), so recovery
  work is not competing with a full write load.
- **Backpressure** (:meth:`AdmissionController.observe`): after each
  applied batch the service reports :class:`LoadSignals` — metered batch
  depth, sharded cascade rounds, and shard lag (the depth gap between the
  slowest and fastest shard, which a :class:`~repro.faults.StallPoint`
  slow-shard injection inflates exactly like a genuinely slow shard
  would).  When a signal crosses its policy threshold the controller
  engages backpressure: refill rates are multiplied by
  ``backpressure_factor`` and the queue bound drops to
  ``backpressure_queue_limit``.  Release is hysteretic — the signals must
  stay healthy for ``release_after`` consecutive batches.

All clocks are *simulated* time (the same ``T_p`` currency as
``BatchTelemetry.t_p``), so admission decisions are bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..obs import metrics as _metrics
from ..obs import recorder as _recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import BatchTelemetry

__all__ = [
    "TenantQuota",
    "AdmissionPolicy",
    "Admission",
    "LoadSignals",
    "AdmissionController",
]


@dataclass(frozen=True)
class TenantQuota:
    """A per-tenant token bucket: ``rate`` tokens/sim-second, ``burst`` cap."""

    rate: float = 2.0
    burst: float = 40.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("quota rate must be > 0")
        if self.burst <= 0:
            raise ValueError("quota burst must be > 0")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds and factors governing admission and backpressure.

    ``write_cost=None`` charges each write its batch size (updates are
    the unit of work); reads always cost ``read_cost`` tokens.
    ``depth_threshold=None`` disables the monolithic depth trigger —
    sharded deployments normally rely on ``lag_threshold`` alone.
    """

    queue_limit: int = 12
    backpressure_queue_limit: int = 4
    lag_threshold: int = 2000
    depth_threshold: int | None = None
    rounds_threshold: int | None = None
    release_after: int = 3
    backpressure_factor: float = 0.5
    degraded_factor: float = 0.5
    shed_retry_after: float = 25.0
    read_cost: float = 1.0
    write_cost: float | None = None

    def __post_init__(self) -> None:
        if self.queue_limit < 1 or self.backpressure_queue_limit < 1:
            raise ValueError("queue limits must be >= 1")
        if not (0 < self.backpressure_factor <= 1):
            raise ValueError("backpressure_factor must be in (0, 1]")
        if not (0 < self.degraded_factor <= 1):
            raise ValueError("degraded_factor must be in (0, 1]")
        if self.release_after < 1:
            raise ValueError("release_after must be >= 1")

    def to_json_dict(self) -> dict:
        return {
            "queue_limit": self.queue_limit,
            "backpressure_queue_limit": self.backpressure_queue_limit,
            "lag_threshold": self.lag_threshold,
            "depth_threshold": self.depth_threshold,
            "rounds_threshold": self.rounds_threshold,
            "release_after": self.release_after,
            "backpressure_factor": self.backpressure_factor,
            "degraded_factor": self.degraded_factor,
            "shed_retry_after": self.shed_retry_after,
            "read_cost": self.read_cost,
            "write_cost": self.write_cost,
        }


@dataclass(frozen=True)
class LoadSignals:
    """Live load signals sampled from the engine after each batch."""

    depth: int = 0
    rounds: int = 0
    shard_lag: int = 0


@dataclass(frozen=True)
class Admission:
    """One admission decision; ``telemetry`` is set for admitted writes."""

    outcome: str  # "admitted" | "rejected" | "shed"
    tenant: str
    kind: str  # "write" | "read"
    retry_after: float = 0.0
    reason: str = ""
    telemetry: "BatchTelemetry | None" = None

    @property
    def admitted(self) -> bool:
        return self.outcome == "admitted"


@dataclass
class _Bucket:
    tokens: float
    stamp: float


class AdmissionController:
    """Per-tenant token buckets plus a hysteretic backpressure state.

    Every decision is recorded twice: in the process-wide metrics
    registry (``service.admission{tenant,kind,outcome}``) when one is
    collecting, and in :attr:`outcomes` unconditionally — the soak
    artifact's accounting invariant ("every rejection accounted") is
    checked against the latter so it holds even without an obs session.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        quotas: Mapping[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.quotas: dict[str, TenantQuota] = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.backpressure = False
        self.engaged_count = 0
        self.outcomes: dict[tuple[str, str, str], int] = {}
        self._buckets: dict[str, _Bucket] = {}
        self._healthy_streak = 0
        self._engaged_at: float | None = None
        self._pressure_time = 0.0
        self._last_signals = LoadSignals()

    # -- quota machinery -----------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _effective_rate(self, tenant: str, degraded: bool) -> float:
        rate = self.quota_for(tenant).rate
        if degraded:
            rate *= self.policy.degraded_factor
        if self.backpressure:
            rate *= self.policy.backpressure_factor
        return rate

    def _bucket(self, tenant: str, now: float) -> _Bucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = _Bucket(tokens=self.quota_for(tenant).burst, stamp=now)
            self._buckets[tenant] = bucket
        return bucket

    def _refill(self, tenant: str, now: float, degraded: bool) -> _Bucket:
        bucket = self._bucket(tenant, now)
        elapsed = now - bucket.stamp
        if elapsed > 0:
            rate = self._effective_rate(tenant, degraded)
            burst = self.quota_for(tenant).burst
            bucket.tokens = min(burst, bucket.tokens + elapsed * rate)
            bucket.stamp = now
        return bucket

    # -- decisions ------------------------------------------------------

    def admit(
        self,
        tenant: str,
        *,
        now: float,
        cost: float,
        kind: str = "write",
        queue_depth: int = 0,
        degraded: bool = False,
    ) -> Admission:
        """Decide one request.  ``now`` must be monotone per tenant."""
        bucket = self._refill(tenant, now, degraded)
        limit = (
            self.policy.backpressure_queue_limit
            if self.backpressure
            else self.policy.queue_limit
        )
        if kind == "write" and queue_depth >= limit:
            reason = (
                "queue depth bound under backpressure"
                if self.backpressure
                else "queue depth bound"
            )
            return self._record(
                Admission(
                    "shed",
                    tenant,
                    kind,
                    retry_after=self.policy.shed_retry_after,
                    reason=f"{reason} ({queue_depth} >= {limit})",
                )
            )
        # Incremental refills accumulate float dust; a deficit below
        # epsilon must admit, or the retry hint becomes a subnormal wait
        # that cannot advance simulated time (a Zeno retry storm).
        deficit = cost - bucket.tokens
        if deficit > 1e-9 * max(1.0, cost):
            rate = self._effective_rate(tenant, degraded)
            burst = self.quota_for(tenant).burst
            if cost > burst:
                # The bucket can never hold this many tokens; the hint is
                # "effectively never" rather than a bogus finite wait.
                retry_after = math.inf
                reason = f"cost {cost:g} exceeds burst capacity {burst:g}"
            else:
                retry_after = deficit / rate
                reason = f"quota exhausted (deficit {deficit:g})"
            return self._record(
                Admission(
                    "rejected", tenant, kind, retry_after=retry_after, reason=reason
                )
            )
        bucket.tokens = max(0.0, bucket.tokens - cost)
        return self._record(Admission("admitted", tenant, kind))

    def _record(self, decision: Admission) -> Admission:
        key = (decision.tenant, decision.kind, decision.outcome)
        self.outcomes[key] = self.outcomes.get(key, 0) + 1
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc(
                "service.admission",
                tenant=decision.tenant,
                kind=decision.kind,
                outcome=decision.outcome,
            )
        return decision

    # -- backpressure ---------------------------------------------------

    def observe(self, signals: LoadSignals, *, now: float = 0.0) -> bool:
        """Feed post-batch load signals; returns the backpressure state."""
        self._last_signals = signals
        policy = self.policy
        over = signals.shard_lag >= policy.lag_threshold
        if policy.depth_threshold is not None:
            over = over or signals.depth >= policy.depth_threshold
        if policy.rounds_threshold is not None:
            over = over or signals.rounds >= policy.rounds_threshold
        mreg = _metrics.ACTIVE
        if over:
            self._healthy_streak = 0
            if not self.backpressure:
                self.backpressure = True
                self.engaged_count += 1
                self._engaged_at = now
                if mreg is not None:
                    mreg.inc("service.backpressure.engaged")
                rec = _recorder.ACTIVE
                if rec is not None:
                    rec.trip(
                        "backpressure",
                        shard_lag=signals.shard_lag,
                        depth=signals.depth,
                        rounds=signals.rounds,
                        engaged=self.engaged_count,
                    )
        else:
            self._healthy_streak += 1
            if self.backpressure and self._healthy_streak >= policy.release_after:
                self.backpressure = False
                if self._engaged_at is not None:
                    self._pressure_time += max(0.0, now - self._engaged_at)
                    self._engaged_at = None
                if mreg is not None:
                    mreg.inc("service.backpressure.released")
                rec = _recorder.ACTIVE
                if rec is not None:
                    rec.note(
                        "backpressure.released",
                        healthy_streak=self._healthy_streak,
                    )
        if mreg is not None:
            mreg.gauge("service.backpressure.active", 1 if self.backpressure else 0)
            mreg.gauge("service.shard_lag", signals.shard_lag)
        return self.backpressure

    def pressure_time(self, now: float) -> float:
        """Total simulated time spent under backpressure, up to ``now``."""
        total = self._pressure_time
        if self._engaged_at is not None:
            total += max(0.0, now - self._engaged_at)
        return total

    # -- reporting ------------------------------------------------------

    def outcome_counts(self, tenant: str, kind: str) -> dict[str, int]:
        return {
            outcome: count
            for (t, k, outcome), count in sorted(self.outcomes.items())
            if t == tenant and k == kind
        }

    def snapshot(self, now: float = 0.0) -> dict:
        """A JSON-ready view of the controller for SLO artifacts."""
        return {
            "backpressure_active": self.backpressure,
            "engaged_count": self.engaged_count,
            "pressure_time": round(self.pressure_time(now), 9),
            "last_signals": {
                "depth": self._last_signals.depth,
                "rounds": self._last_signals.rounds,
                "shard_lag": self._last_signals.shard_lag,
            },
        }

