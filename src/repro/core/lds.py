"""Sequential Level Data Structure (LDS) baseline.

The classic sequential level structures of Bhattacharya et al. [13] and
Henzinger et al. [47] (paper Section 5.2), augmented with the paper's
coreness-estimation rule (Section 5.6) — this is exactly the paper's *LDS*
baseline implementation.

The difference from the PLDS is the movement discipline: vertices move
**one level at a time**, cascading one vertex at a time.  In particular a
deletion can trigger the repeated one-level cascades of the paper's
Figure 4, whereas the PLDS computes a desire-level and moves each vertex
exactly once.  Sharing the underlying structures with :class:`PLDS` makes
the comparison apples-to-apples.

Being sequential, its simulated running time is its *work*; the metered
depth equals the work.
"""

from __future__ import annotations

from ..graphs.streams import Batch
from ..obs import metrics as _metrics
from .plds import PLDS, UpdateResult

__all__ = ["LDS"]


class LDS(PLDS):
    """Sequential level data structure with single-edge-update semantics.

    Accepts batches for interface compatibility, but processes the updates
    one edge at a time (there is no intra-batch parallelism to exploit).
    """

    _SPAN_NAME = "lds.update"

    def _apply_batch(self, batch: Batch) -> UpdateResult:
        self._validate_batch(batch)
        result = UpdateResult()
        self._touched = set()

        if self.track_orientation:
            for e in batch.deletions:
                d = self._orient.get(e)
                if d is None:
                    d = self.orientation_of(*e)
                result.oriented_deletions.append(d)
                self._orient.pop(e, None)

        moved: set[int] = set()
        for u, v in batch.insertions:
            self._insert_edge_struct(u, v)
            self.tracker.add(work=2, depth=2)
            self._fix_insertion_cascade({u, v}, moved)
        for u, v in batch.deletions:
            self._delete_edge_struct(u, v)
            self.tracker.add(work=2, depth=2)
            self._fix_deletion_cascade({u, v}, moved)
        result.moved_vertices = moved

        if self.track_orientation:
            self._finish_orientation(batch, result)
        self._maybe_rebuild()
        return result

    # -- cascades (sequential: depth is charged equal to work) ----------

    def _fix_insertion_cascade(self, seeds: set[int], moved: set[int]) -> None:
        tracker = self.tracker
        bounds = self._inv1_bound_int
        mreg = _metrics.ACTIVE
        queue = set(seeds)
        while queue:
            v = queue.pop()
            rec = self._vertices.get(v)
            if rec is None:
                continue
            while len(rec.up) > bounds[rec.level]:
                if mreg is not None:
                    mreg.inc("lds.cascade_moves", phase="insert")
                before = tracker.work
                marked = self._move_up(rec)
                # sequential: the move contributes its work to the depth too
                tracker.add(work=0, depth=tracker.work - before)
                moved.add(v)
                # _move_up appends v's own record (last) when it still
                # violates; this while loop already re-lifts v, so drop
                # it to keep the queue contents (and hence cascade order)
                # unchanged.  The queue holds ids, not records: set-pop
                # order on small ints is reproducible across runs, which
                # keeps the metered cascade deterministic.
                if marked and marked[-1] is rec:
                    marked.pop()
                queue.update(sorted(m.id for m in marked))

    def _fix_deletion_cascade(self, seeds: set[int], moved: set[int]) -> None:
        tracker = self.tracker
        thresholds = self._inv2_thresh_int
        mreg = _metrics.ACTIVE
        queue = set(seeds)
        while queue:
            v = queue.pop()
            rec = self._vertices.get(v)
            if rec is None or rec.level == 0:
                continue
            descended = False
            while rec.level > 0:
                below = rec.down.get(rec.level - 1)
                up_star = len(rec.up) + (len(below) if below else 0)
                if up_star >= thresholds[rec.level]:
                    break
                if mreg is not None:
                    mreg.inc("lds.cascade_moves", phase="delete")
                before = tracker.work
                weakened = self._move_down(rec, rec.level - 1)
                tracker.add(work=0, depth=tracker.work - before)
                descended = True
                queue.update(sorted(w.id for w in weakened))
            if descended:
                moved.add(v)
