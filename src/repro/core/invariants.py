"""Invariant and guarantee checkers used by the test suite.

Gathers the checkable promises the paper makes:

- structural Invariants 1–2 of the PLDS (delegated to
  :meth:`PLDS.check_invariants`);
- the ``(2+ε)`` coreness approximation of Lemma 5.13;
- consistency between the PLDS's internal adjacency bookkeeping and a
  reference edge set.
"""

from __future__ import annotations

from typing import Mapping

from .plds import PLDS

__all__ = [
    "plds_invariant_violations",
    "approximation_violations",
    "structure_matches_edges",
]


def plds_invariant_violations(plds: PLDS) -> list[str]:
    """Invariant 1/2 and bookkeeping violations (empty list == healthy)."""
    return plds.check_invariants()


def approximation_violations(
    estimates: Mapping[int, float],
    exact: Mapping[int, int],
    factor: float,
    tolerance: float = 1e-9,
) -> list[str]:
    """Vertices whose estimate falls outside ``[k/factor, k*factor]``.

    Vertices with exact coreness 0 are skipped, matching the paper's error
    protocol (Section 6.2).
    """
    problems: list[str] = []
    for v, k in exact.items():
        if k == 0:
            continue
        est = estimates.get(v, 0.0)
        if est < k / factor - tolerance or est > k * factor + tolerance:
            problems.append(
                f"v={v}: estimate {est:.3f} outside "
                f"[{k / factor:.3f}, {k * factor:.3f}] for coreness {k}"
            )
    return problems


def structure_matches_edges(
    plds: PLDS, edges: set[tuple[int, int]]
) -> list[str]:
    """Check the PLDS's U/L structures encode exactly ``edges``."""
    problems: list[str] = []
    plds_edges = set(plds.edges())
    missing = edges - plds_edges
    extra = plds_edges - edges
    if missing:
        problems.append(f"missing edges: {sorted(missing)[:10]}")
    if extra:
        problems.append(f"extra edges: {sorted(extra)[:10]}")
    if plds.num_edges != len(edges):
        problems.append(
            f"edge counter {plds.num_edges} != actual {len(edges)}"
        )
    return problems
