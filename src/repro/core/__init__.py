"""The paper's primary contribution: PLDS and the sequential LDS baseline."""

from .densest import charikar_peel, densest_subgraph_estimate
from .invariants import (
    approximation_violations,
    plds_invariant_violations,
    structure_matches_edges,
)
from .lds import LDS
from .orientation import (
    degeneracy,
    is_acyclic_orientation,
    max_out_degree,
    out_degrees,
)
from .plds import PLDS, DirectedEdge, UpdateResult
from .query import CorenessQueries, EpochSnapshot, QueryView

__all__ = [
    "PLDS",
    "CorenessQueries",
    "EpochSnapshot",
    "QueryView",
    "charikar_peel",
    "densest_subgraph_estimate",
    "LDS",
    "DirectedEdge",
    "UpdateResult",
    "approximation_violations",
    "plds_invariant_violations",
    "structure_matches_edges",
    "degeneracy",
    "is_acyclic_orientation",
    "max_out_degree",
    "out_degrees",
]
