"""Shared query surface and epoch-versioned read snapshots.

Every level-structure engine in the repo answers the same queries —
coreness estimates, core membership, core subgraphs, the densest-
subgraph estimate — from the same primitive: the per-vertex ``(level,
degree)`` pair (levels fully determine the structure; Definition 5.11
turns a level into an estimate).  Historically each engine family
hand-rolled those methods; this module collapses them into one
implementation over two host hooks:

- ``_level_items()`` — iterate ``(vertex, level, degree)`` for every
  live vertex, in the host's canonical order;
- ``_level_deg_of(v)`` — the pair for one vertex, ``None`` if absent.

On top of the shared surface sits the **epoch store** (the
asynchronous-reads model of Liu–Shun–Zablotchi, PAPERS.md): an engine
*publishes* an immutable :class:`EpochSnapshot` of its level image at
each commit point, and readers query the snapshot — wait-free, never
observing a torn mid-batch state.  Publication is copy-on-write: the
previous epoch's maps are copied (a C-speed ``dict.copy``) and only the
``touched`` vertices re-derived, so a commit pays O(n_prev + |touched|)
map work instead of a full O(n) estimate rebuild.  Publication is
opt-in — engines driven directly (the bench hot path) never publish and
pay nothing.

Two pieces of bookkeeping make incremental publication safe:

- :attr:`QueryView.last_moved` — the vertex set moved by the last
  ``update()`` (``None`` means "unknown / everything", the conservative
  full-publish sentinel);
- :attr:`QueryView._levels_reshaped` — set by any operation that
  re-levels vertices outside normal batch accounting (the Section-5.9
  rebuild re-inserts *every* edge; vertex insertion/deletion drops
  records wholesale), forcing the next ``last_moved`` to ``None``.

Both live as *class-attribute defaults* (instance slots are only
assigned on use): ``PLDS._rebuild`` re-runs ``__init__`` in place, and
state initialized there would silently reset the epoch counter on every
rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

__all__ = ["CorenessQueries", "EpochSnapshot", "QueryView"]


class CorenessQueries:
    """Query algebra over a coreness-estimate mapping.

    Hosts implement :meth:`_estimates_view`; everything else — point
    lookups, membership thresholds, the densest-subgraph estimate — is
    derived here, once, for engines, epoch snapshots, and service
    snapshots alike.
    """

    def _estimates_view(self) -> Mapping[int, float]:
        raise NotImplementedError

    def coreness(self, v: int) -> float:
        """Coreness estimate of ``v`` (0.0 for unknown vertices)."""
        return float(self._estimates_view().get(v, 0.0))

    def coreness_map(self) -> dict[int, float]:
        """Estimates for every vertex the structure has seen."""
        return dict(self._estimates_view())

    def core_members(self, k: float) -> set[int]:
        """Vertices whose coreness estimate is at least ``k``."""
        return {v for v, c in self._estimates_view().items() if c >= k}

    def densest_estimate(self) -> tuple[float, set[int]]:
        """``2(2+ε)``-approximate max subgraph density: ``k̂_max / 2``
        plus the witness set achieving the maximum estimate (same
        contract as :func:`repro.core.densest.densest_subgraph_estimate`)."""
        est = self._estimates_view()
        best = 0.0
        for c in est.values():
            if c > best:
                best = c
        if best == 0.0:
            return 0.0, set()
        return best / 2.0, {v for v, c in est.items() if c == best}


@dataclass(frozen=True)
class EpochSnapshot(CorenessQueries):
    """One immutable published read epoch.

    ``estimates`` and ``levels`` are exposed through read-only mapping
    proxies — an epoch, once published, never changes (that is the whole
    consistency contract).  Engine-level epochs carry just the level
    image; service-level epochs additionally pin the committed edge set
    (for :meth:`core_subgraph`), the batch horizon, and the degradation
    flag, and sharded engines record the per-shard epoch vector that was
    scatter-gathered at the commit point.
    """

    epoch: int
    estimates: Mapping[int, float] = field(repr=False)
    levels: Mapping[int, int] = field(repr=False)
    #: stable per-shard epoch vector (sharded engines only).
    shard_epochs: tuple[int, ...] | None = None
    #: committed batches reflected by this epoch (service-level).
    batches_applied: int = 0
    #: was the service degraded when this epoch was published?
    degraded: bool = False
    #: committed edge set (service-level; ``None`` for engine epochs).
    edges: frozenset[tuple[int, int]] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "estimates", MappingProxyType(dict(self.estimates))
        )
        object.__setattr__(
            self, "levels", MappingProxyType(dict(self.levels))
        )

    def _estimates_view(self) -> Mapping[int, float]:
        return self.estimates

    def level(self, v: int) -> int:
        """Level of ``v`` as of this epoch (0 for unknown vertices)."""
        return self.levels.get(v, 0)

    def core_subgraph(self, k: int) -> tuple[set[int], list[tuple[int, int]]]:
        """The exact k-core of the epoch's pinned edge set.

        Only service-level epochs pin their edges; engine-level epochs
        raise ``ValueError`` (re-deriving a full edge copy per epoch is
        exactly the cost the copy-on-write store avoids).
        """
        if self.edges is None:
            raise ValueError(
                "this epoch does not pin an edge set; "
                "query core_subgraph through a service reader"
            )
        from ..static_kcore.subgraphs import k_core_subgraph

        return k_core_subgraph(sorted(self.edges), k)


#: What readers see before anything was ever published: the (empty)
#: construction-time state, which is trivially prefix-consistent.
EMPTY_EPOCH = EpochSnapshot(epoch=0, estimates={}, levels={})


class QueryView(CorenessQueries):
    """Mixin giving a level-structure engine the shared query surface
    plus copy-on-write epoch publication.

    Hosts provide :meth:`_level_items` / :meth:`_level_deg_of` and the
    estimate parameters ``levels_per_group`` / ``_group_pow``; the
    mixin provides every derived query, bit-identical to the previously
    hand-rolled per-engine implementations.
    """

    # Class-attribute defaults, NOT __init__ state: PLDS._rebuild()
    # re-runs __init__ in place and must not reset the epoch store.
    _published: EpochSnapshot | None = None
    _epoch_serial: int = 0
    #: vertices moved by the last update(); ``None`` = publish fully.
    last_moved: "set[int] | frozenset[int] | None" = None
    #: set by rebuild / vertex insertion / vertex deletion: the level
    #: image was reshaped outside batch move accounting.
    _levels_reshaped: bool = False

    # -- host hooks ----------------------------------------------------

    def _level_items(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(vertex, level, degree)`` over live vertices."""
        raise NotImplementedError

    def _level_deg_of(self, v: int) -> tuple[int, int] | None:
        """``(level, degree)`` of ``v``, or ``None`` if absent."""
        raise NotImplementedError

    # -- the shared query surface --------------------------------------

    def coreness_estimate(self, v: int) -> float:
        """``k̂(v) = (1+δ)^{max(⌊(ℓ(v)+1)/levels_per_group⌋ - 1, 0)}``
        (Definition 5.11).

        Degree-0 vertices (necessarily at level 0) estimate 0, matching
        the paper's experimental convention (Section 6.2).
        """
        pair = self._level_deg_of(v)
        if pair is None or pair[1] == 0:
            return 0.0
        exponent = max((pair[0] + 1) // self.levels_per_group - 1, 0)
        return self._group_pow[exponent]

    def coreness_estimates(self) -> dict[int, float]:
        """Estimates for every vertex the structure has seen."""
        lpg = self.levels_per_group
        pow_table = self._group_pow
        return {
            v: (0.0 if deg == 0 else pow_table[max((lvl + 1) // lpg - 1, 0)])
            for v, lvl, deg in self._level_items()
        }

    def _estimates_view(self) -> Mapping[int, float]:
        return self.coreness_estimates()

    def core_subgraph(self, k: int) -> tuple[set[int], list[tuple[int, int]]]:
        """The exact k-core of the engine's current edge set (peeled)."""
        from ..static_kcore.subgraphs import k_core_subgraph

        return k_core_subgraph(self.edges(), k)

    # -- epoch publication ---------------------------------------------

    def publish_epoch(
        self, touched: Iterable[int] | None = None
    ) -> EpochSnapshot:
        """Publish the current level image as a new immutable epoch.

        ``touched`` names the vertices whose entries may differ from the
        previous epoch (batch endpoints plus :attr:`last_moved`); their
        entries are re-derived on a copy of the previous epoch's maps.
        ``touched=None`` — or a pending :attr:`_levels_reshaped` flag —
        publishes from scratch.  Call this only at commit points: a
        snapshot taken mid-apply would capture exactly the torn state
        the epoch store exists to hide.
        """
        if self._levels_reshaped:
            touched = None
            self._levels_reshaped = False
        prev = self._published
        if prev is None or touched is None:
            estimates = self.coreness_estimates()
            levels = {v: lvl for v, lvl, _ in self._level_items()}
        else:
            estimates = dict(prev.estimates)
            levels = dict(prev.levels)
            lpg = self.levels_per_group
            pow_table = self._group_pow
            for v in touched:
                pair = self._level_deg_of(v)
                if pair is None:
                    estimates.pop(v, None)
                    levels.pop(v, None)
                else:
                    lvl, deg = pair
                    estimates[v] = (
                        0.0
                        if deg == 0
                        else pow_table[max((lvl + 1) // lpg - 1, 0)]
                    )
                    levels[v] = lvl
        self._epoch_serial += 1
        snap = EpochSnapshot(
            epoch=self._epoch_serial, estimates=estimates, levels=levels
        )
        self._published = snap
        return snap

    def read_view(self) -> EpochSnapshot:
        """The last published epoch (wait-free; never blocks on an
        in-flight update).  Before any publication, the empty epoch-0
        construction state."""
        pub = self._published
        return pub if pub is not None else EMPTY_EPOCH

    @property
    def read_epoch(self) -> int:
        """Serial of the last published epoch (0 = never published)."""
        return self._epoch_serial
