"""Parallel Level Data Structure (PLDS) — the paper's core contribution.

Implements Section 5 of Liu, Shi, Yu, Dhulipala, Shun (SPAA 2022):

- the level/group structure with Invariant 1 (degree upper bound) and
  Invariant 2 (degree lower bound);
- ``Update`` (Algorithm 1) splitting a batch into insertions and deletions;
- ``RebalanceInsertions`` (Algorithm 2): level-by-level upward movement of
  marked vertices, processing each level exactly once (Lemma 5.5);
- ``RebalanceDeletions`` (Algorithm 3): desire-level computation and
  single-shot downward moves (Lemma 5.6);
- ``CalculateDesireLevel`` (Algorithm 4): cost-equivalent scan for the
  closest level satisfying both invariants;
- coreness estimation (Definition 5.11, Lemmas 5.12/5.13) giving a
  ``(1+δ)(2+3/λ)``-factor — i.e. ``(2+ε)`` — approximation;
- low out-degree orientation maintenance (Algorithm 5, Section 5.7).

Parallelism is *simulated*: vertex moves within a level execute
sequentially in a canonical order (equivalent by the paper's Lemma 5.9)
while their work/depth is metered by a
:class:`~repro.parallel.engine.WorkDepthTracker` using the parallel
composition rules.

Two configurations matter experimentally (Section 6):

- **PLDS**: ``4⌈log_{1+δ} n⌉`` levels per group (the theoretical
  structure, default);
- **PLDSOpt**: levels per group divided by ``group_shrink=50``, trading a
  slightly worse approximation bound for large constant-factor speedups.

Example
-------
>>> from repro.core.plds import PLDS
>>> from repro.graphs.streams import Batch
>>> plds = PLDS(n_hint=100)
>>> plds.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))  # a triangle
>>> plds.coreness_estimate(0) >= 1
True
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .. import faults as _faults
from ..graphs.dynamic_graph import canonical_edge
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..graphs.streams import Batch
from ..parallel.engine import WorkDepthTracker
from ..parallel.hashtable import LOG_STAR_DEPTH
from ..parallel.primitives import log2_ceil
from .query import QueryView

__all__ = ["PLDS", "UpdateResult", "DirectedEdge"]

#: A directed edge (tail, head): oriented tail -> head.
DirectedEdge = tuple[int, int]


def _mark(buckets: dict[int, list[int]], level: int, v: int) -> None:
    """Insert ``v`` into the sorted-unique cascade bucket for ``level``.

    The rebalancing cascades keep every dirty/pending bucket as a sorted
    list of vertex ids, so the mover lists handed to ``flat_parfor`` are
    already in canonical order — no per-round re-sort (the buckets used
    to be sets of records hashing by address, forcing each round to sort
    its movers from scratch).
    """
    bucket = buckets.get(level)
    if bucket is None:
        buckets[level] = [v]
        return
    i = bisect_left(bucket, v)
    if i == len(bucket) or bucket[i] != v:
        bucket.insert(i, v)


def _is_sorted_unique(items: list[int]) -> bool:
    return all(items[i] < items[i + 1] for i in range(len(items) - 1))


@dataclass
class UpdateResult:
    """What :meth:`PLDS.update` reports about one batch (Algorithm 5).

    Attributes
    ----------
    flipped:
        Edges whose orientation changed, as directed edges giving the
        orientation *before* the flip.
    oriented_insertions:
        The batch's inserted edges, directed per the *post-batch*
        orientation.
    oriented_deletions:
        The batch's deleted edges, directed per the *pre-batch*
        orientation.
    moved_vertices:
        Vertices whose level changed while processing the batch.
    """

    flipped: list[DirectedEdge] = field(default_factory=list)
    oriented_insertions: list[DirectedEdge] = field(default_factory=list)
    oriented_deletions: list[DirectedEdge] = field(default_factory=list)
    moved_vertices: set[int] = field(default_factory=set)


class _VertexRecord:
    """Per-vertex PLDS state.

    ``up`` holds neighbors at levels >= the vertex's level (the paper's
    ``U[v]``); ``down`` maps each lower level ``j`` to the set of neighbors
    there (the paper's ``L_v[j]``; only non-empty levels are stored, which
    realizes the space-efficient variant of Section 5.8).

    Both structures store the neighbors' *records* (by reference), not
    their ids — the rebalancing loops read a neighbor's level on every
    visit, and a direct attribute load is substantially cheaper than an
    id -> record dict lookup.  This mirrors the pointer-based adjacency
    of the paper's C++ implementation.  Records hash by address, so set
    iteration order is not reproducible across runs; every consumer that
    feeds metered work orders movers by ``id`` first (or is provably
    order-insensitive).

    ``deg`` caches the total degree: it is maintained incrementally on
    every edge insertion/deletion (level moves shuffle neighbors between
    ``up`` and ``down`` but never change the degree), so ``degree()`` is
    O(1) instead of re-summing every down-level set.

    ``ghost`` marks a read-mostly replica of a vertex owned by another
    shard (:mod:`repro.shard`): the record mirrors the owner's level and
    the adjacency restricted to the holding shard's local vertices.  The
    monolithic PLDS never sets it; cascade primitives treat ghost and
    local records identically (the level-message boundary lives in the
    shard kernel, which skips marking ghosts and emits move events
    instead).
    """

    __slots__ = ("id", "level", "up", "down", "deg", "ghost")

    def __init__(self, vid: int) -> None:
        self.id = vid
        self.level = 0
        self.up: set["_VertexRecord"] = set()
        self.down: dict[int, set["_VertexRecord"]] = {}
        self.deg = 0
        self.ghost = False

    def degree(self) -> int:
        return self.deg

    def neighbors(self) -> Iterator[int]:
        for r in self.up:
            yield r.id
        for s in self.down.values():
            for r in s:
                yield r.id


class PLDS(QueryView):
    """Batch-dynamic ``(2+ε)``-approximate k-core decomposition.

    Parameters
    ----------
    n_hint:
        Expected upper bound on the number of vertices; sizes the level
        structure (``K = O(log² n)`` levels).  The structure rebuilds
        automatically if the live vertex count exceeds it.
    delta:
        The ``δ > 0`` constant: group ``i`` thresholds scale as
        ``(1+δ)^i``.  Default 0.4 (the paper's experimental default).
    lam:
        The ``λ > 0`` constant in the Invariant-1 coefficient
        ``(2 + 3/λ)``.  Default 3 (paper default; max error bound
        ``(1+δ)(2+3/λ) = 4.2``).
    group_shrink:
        Divide the theoretical levels-per-group by this factor
        (PLDSOpt uses 50; Section 6.1).  1 = exact theoretical structure.
    upper_coeff:
        Override the Invariant-1 coefficient (the paper's *heuristic
        parameters* replace ``2 + 3/λ`` with 1.1, forfeiting the proofs
        but improving empirical error; Section 6.2).
    tracker:
        Work-depth meter; a private one is created if omitted.
    track_orientation:
        Maintain the edge-orientation hash table ``H`` and report flips
        (Algorithm 5).  Required by the Section-8 framework; off by
        default since plain coreness queries do not need it.
    insertion_strategy:
        ``"levelwise"`` (default) follows Algorithm 2 exactly: violating
        vertices rise one level per level-iteration.  ``"jump"`` applies
        the implementation optimization of Section 6.1: each violating
        vertex computes its upward desire-level directly (the first
        higher level satisfying Invariant 1) and moves there in one step
        — asymptotically the same, practically much faster.
    structure:
        Which of the paper's data-structure variants to model
        (Section 5.8).  All three compute identical results; they differ
        in the metered depth of per-level bookkeeping and in space:

        - ``"randomized"`` — parallel hash tables: O(log* n) depth,
          O(n log² n + m) space (default; the paper's implementation);
        - ``"deterministic"`` — dynamic arrays: O(log n) worst-case
          depth per level, O(n log² n + m) space;
        - ``"space_efficient"`` — per-level linked lists: O(log² n)
          depth per level, O(n + m) space.
    """

    #: per-variant (depth-charge-fn, charges-level-slots) table; the
    #: depth charge is applied per batched structure mutation.
    _STRUCTURES = ("randomized", "deterministic", "space_efficient")

    def __init__(
        self,
        n_hint: int,
        delta: float = 0.4,
        lam: float = 3.0,
        group_shrink: int = 1,
        upper_coeff: float | None = None,
        tracker: WorkDepthTracker | None = None,
        track_orientation: bool = False,
        insertion_strategy: str = "levelwise",
        structure: str = "randomized",
    ) -> None:
        if n_hint < 2:
            n_hint = 2
        if delta <= 0:
            raise ValueError("delta must be > 0")
        if lam <= 0:
            raise ValueError("lambda must be > 0")
        if group_shrink < 1:
            raise ValueError("group_shrink must be >= 1")
        if insertion_strategy not in ("levelwise", "jump"):
            raise ValueError("insertion_strategy must be 'levelwise' or 'jump'")
        if structure not in self._STRUCTURES:
            raise ValueError(f"structure must be one of {self._STRUCTURES}")
        self.n_hint = n_hint
        self.delta = delta
        self.lam = lam
        self.group_shrink = group_shrink
        self.upper_coeff = (2.0 + 3.0 / lam) if upper_coeff is None else upper_coeff
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        self.track_orientation = track_orientation
        self.insertion_strategy = insertion_strategy
        self.structure = structure

        log_base = math.log(n_hint) / math.log(1.0 + delta)
        #: levels per group: 4⌈log_{1+δ} n⌉, divided by group_shrink for Opt.
        self.levels_per_group = max(1, math.ceil(4 * math.ceil(log_base) / group_shrink))
        #: groups: enough that the top group's Invariant-1 bound exceeds 2n.
        self.num_groups = math.ceil(log_base) + 2
        #: K — total number of levels.
        self.num_levels = self.levels_per_group * self.num_groups

        self._vertices: dict[int, _VertexRecord] = {}
        self._m = 0
        #: vertex insert/delete counter for the Section-5.9 rebuild policy.
        self._vertex_updates = 0
        #: orientation table H: canonical edge -> directed edge (tail, head).
        self._orient: dict[tuple[int, int], DirectedEdge] = {}
        #: edges whose endpoints' relative order may have changed this batch.
        self._touched: set[tuple[int, int]] = set()

        # Per-mutation depth charge of the selected structure variant
        # (Section 5.8): hash tables O(log* n); dynamic arrays pay an
        # O(log n) resize/offset computation; per-level linked lists pay a
        # linear search over the O(log² n) list nodes.
        if structure == "randomized":
            self._mut_depth = LOG_STAR_DEPTH
        elif structure == "deterministic":
            self._mut_depth = log2_ceil(n_hint) + 1
        else:  # space_efficient
            self._mut_depth = max(LOG_STAR_DEPTH, self.num_levels // 4 + 1)

        # Precompute per-rebuild threshold tables.  The floats keep the
        # documented semantics (and diagnostics); the integer tables are
        # what the hot loops consult — for an integer count c and a real
        # bound b, ``c > b`` iff ``c > floor(b)`` and ``c >= b`` iff
        # ``c >= ceil(b)``, so the int comparisons are exactly equivalent
        # while skipping float conversion on every check.
        self._group_of_level = [
            lvl // self.levels_per_group for lvl in range(self.num_levels)
        ]
        self._inv1_bound = [
            self.upper_coeff * (1.0 + delta) ** g for g in self._group_of_level
        ]
        self._inv2_thresh = [0.0] + [
            (1.0 + delta) ** self._group_of_level[lvl - 1]
            for lvl in range(1, self.num_levels)
        ]
        self._inv1_bound_int = [math.floor(b) for b in self._inv1_bound]
        self._inv2_thresh_int = [math.ceil(t) for t in self._inv2_thresh]
        #: (1+δ)^g per group — consulted by coreness_estimate instead of
        #: recomputing the power on every query.
        self._group_pow = [
            (1.0 + delta) ** g for g in range(self.num_groups + 2)
        ]
        #: O(log K) depth charge of a desire-level scan, precomputed.
        self._levels_depth = log2_ceil(self.num_levels) + 1

    # ------------------------------------------------------------------
    # Level/group arithmetic
    # ------------------------------------------------------------------

    def group_number(self, level: int) -> int:
        """``gn(ℓ)``: index of the group containing ``level``."""
        return level // self.levels_per_group

    def inv1_bound(self, level: int) -> float:
        """Invariant-1 upper bound ``(2+3/λ)(1+δ)^{gn(ℓ)}`` at ``level``."""
        return self._inv1_bound[level]

    def inv2_threshold(self, level: int) -> float:
        """Invariant-2 lower bound ``(1+δ)^{gn(ℓ-1)}`` for a vertex at ``level``."""
        return self._inv2_thresh[level]

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def level(self, v: int) -> int:
        """Current level ``ℓ(v)`` (0 for unknown/isolated vertices)."""
        rec = self._vertices.get(v)
        return rec.level if rec is not None else 0

    def up_degree(self, v: int) -> int:
        """``up(v)``: number of neighbors at levels >= ``ℓ(v)``."""
        rec = self._vertices.get(v)
        return len(rec.up) if rec is not None else 0

    def up_star_degree(self, v: int) -> int:
        """``up*(v)``: number of neighbors at levels >= ``ℓ(v) - 1``."""
        rec = self._vertices.get(v)
        if rec is None:
            return 0
        below = rec.down.get(rec.level - 1)
        return len(rec.up) + (len(below) if below else 0)

    def degree(self, v: int) -> int:
        rec = self._vertices.get(v)
        return rec.deg if rec is not None else 0

    def neighbors(self, v: int) -> list[int]:
        # Sorted: the underlying record sets iterate in address order,
        # which is not reproducible across runs.
        rec = self._vertices.get(v)
        return sorted(rec.neighbors()) if rec is not None else []

    def has_edge(self, u: int, v: int) -> bool:
        ru = self._vertices.get(u)
        rv = self._vertices.get(v)
        if ru is None or rv is None:
            return False
        if rv.level >= ru.level:
            return rv in ru.up
        return rv in ru.down.get(rv.level, ())

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    def vertices(self) -> Iterator[int]:
        return iter(self._vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """All edges in canonical form."""
        for v, rec in self._vertices.items():
            for w in rec.neighbors():
                if v < w:
                    yield (v, w)

    # ------------------------------------------------------------------
    # Coreness estimation (Definition 5.11)
    # ------------------------------------------------------------------
    # coreness_estimate / coreness_estimates / core_members /
    # core_subgraph / densest_estimate come from the shared
    # :class:`~repro.core.query.QueryView` over the two hooks below.

    def _level_items(self) -> Iterator[tuple[int, int, int]]:
        for v, rec in self._vertices.items():
            yield v, rec.level, rec.deg

    def _level_deg_of(self, v: int) -> tuple[int, int] | None:
        rec = self._vertices.get(v)
        return (rec.level, rec.deg) if rec is not None else None

    def approximation_factor(self) -> float:
        """The provable max error ratio ``(2+3/λ)(1+δ)`` (Lemma 5.13).

        Only a guarantee for ``group_shrink == 1`` (PLDSOpt trades the
        proof for speed; Section 6.1).
        """
        return self.upper_coeff * (1.0 + self.delta)

    # ------------------------------------------------------------------
    # Orientation (Section 5.7, Algorithm 5)
    # ------------------------------------------------------------------

    def orientation_of(self, u: int, v: int) -> DirectedEdge:
        """Current orientation of edge {u, v}: lower level -> higher level,
        ties broken toward the larger index (smaller index is the tail)."""
        lu, lv = self.level(u), self.level(v)
        if lu < lv or (lu == lv and u < v):
            return (u, v)
        return (v, u)

    def out_neighbors(self, v: int) -> list[int]:
        """Neighbors w with edge oriented v -> w; all live in ``U[v]``."""
        rec = self._vertices.get(v)
        if rec is None:
            return []
        lv = rec.level
        out = []
        for wrec in rec.up:
            lw = wrec.level
            if lw > lv or (lw == lv and v < wrec.id):
                out.append(wrec.id)
        out.sort()
        return out

    def out_degree(self, v: int) -> int:
        # Counts in place — the materialized list out_neighbors() builds
        # is pure overhead when only the count is needed.
        rec = self._vertices.get(v)
        if rec is None:
            return 0
        lv = rec.level
        count = 0
        for wrec in rec.up:
            lw = wrec.level
            if lw > lv or (lw == lv and v < wrec.id):
                count += 1
        return count

    def in_neighbors(self, v: int) -> list[int]:
        """Neighbors w with edge oriented w -> v."""
        rec = self._vertices.get(v)
        if rec is None:
            return []
        lv = rec.level
        # Every down-neighbor sits strictly below v (edge points up into
        # v); an up-neighbor points into v only from the same level with
        # the smaller id.
        inn = [wrec.id for wrec in rec.up if wrec.level == lv and wrec.id < v]
        for s in rec.down.values():
            inn.extend(wrec.id for wrec in s)
        inn.sort()
        return inn

    def oriented_edges(self) -> Iterator[DirectedEdge]:
        for u, v in self.edges():
            yield self.orientation_of(u, v)

    # ------------------------------------------------------------------
    # Vertex updates (Section 5.9)
    # ------------------------------------------------------------------

    def insert_vertices(self, vs: Iterable[int]) -> None:
        """Insert zero-degree vertices (placed at level 0)."""
        count = 0
        for v in vs:
            if not self._has_vertex(v):
                count += 1
            self._record(v)
        self._vertex_updates += count
        self._maybe_rebuild()
        self._levels_reshaped = True

    def delete_vertices(self, vs: Iterable[int]) -> UpdateResult:
        """Delete vertices: all incident edges become one deletion batch."""
        vs = set(vs)
        dels: list[tuple[int, int]] = []
        for v in vs:
            if not self._has_vertex(v):
                continue
            for w in self.neighbors(v):
                e = canonical_edge(v, w)
                if e[0] in vs and e[1] in vs and e[0] != v:
                    continue  # count each intra-set edge once
                dels.append(e)
        result = self.update(Batch(deletions=dels))
        for v in vs:
            if self._drop_vertex(v):
                self._vertex_updates += 1
        self._maybe_rebuild()
        self._levels_reshaped = True
        return result

    # ------------------------------------------------------------------
    # Algorithm 1: Update
    # ------------------------------------------------------------------

    #: Span name of :meth:`update`; subclasses override (``lds.update``).
    _SPAN_NAME = "plds.update"

    def update(self, batch: Batch) -> UpdateResult:
        """Apply a batch of unique, valid edge updates (Algorithm 1).

        Insertions are rebalanced first (Algorithm 2), then deletions
        (Algorithm 3); orientation changes are derived afterwards
        (Algorithm 5).  Returns an :class:`UpdateResult`.

        The batch is validated up front (uniqueness, validity, and
        insert/delete disjointness — the Section-8 assumptions), so an
        invalid batch raises ``ValueError`` *before* any mutation; use
        :func:`repro.graphs.streams.preprocess_batch` to clean raw
        streams.
        """
        tracer = _tracing.ACTIVE
        if tracer is None:
            result = self._apply_batch(batch)
        else:
            with tracer.span(
                self._SPAN_NAME,
                self.tracker,
                insertions=len(batch.insertions),
                deletions=len(batch.deletions),
            ):
                result = self._apply_batch(batch)
        # Incremental-publication bookkeeping (repro.core.query): a
        # rebuild re-levels every vertex, so batch moves alone no longer
        # bound what changed — fall back to the full-publish sentinel.
        if self._levels_reshaped:
            self.last_moved = None
            self._levels_reshaped = False
        else:
            self.last_moved = result.moved_vertices
        return result

    def _apply_batch(self, batch: Batch) -> UpdateResult:
        self._validate_batch(batch)
        result = UpdateResult()
        self._touched = set()

        # Pre-batch orientations of deleted edges (Algorithm 5: deletions
        # report the orientation *before* the batch).
        if self.track_orientation:
            for e in batch.deletions:
                d = self._orient.get(e)
                if d is None:
                    d = self.orientation_of(*e)
                result.oriented_deletions.append(d)
                self._orient.pop(e, None)

        moved: set[int] = set()
        if batch.insertions:
            self._rebalance_insertions(batch.insertions, moved)
        if batch.deletions:
            self._rebalance_deletions(batch.deletions, moved)
        result.moved_vertices = moved

        if self.track_orientation:
            self._finish_orientation(batch, result)
        self._maybe_rebuild()
        return result

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> UpdateResult:
        """Convenience wrapper: one insertion-only batch."""
        return self.update(Batch(insertions=[canonical_edge(*e) for e in edges]))

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> UpdateResult:
        """Convenience wrapper: one deletion-only batch."""
        return self.update(Batch(deletions=[canonical_edge(*e) for e in edges]))

    def _validate_batch(self, batch: Batch) -> None:
        """Check the Section-8 batch assumptions before mutating anything."""
        self.tracker.add(work=max(1, len(batch)), depth=5)
        ins = set()
        for u, v in batch.insertions:
            if u == v:
                raise ValueError(f"self-loop ({u},{v}) in batch")
            e = canonical_edge(u, v)
            if e in ins:
                raise ValueError(f"duplicate insertion {e} in batch")
            if self.has_edge(*e):
                raise ValueError(f"insertion of existing edge {e}")
            ins.add(e)
        dels = set()
        for u, v in batch.deletions:
            e = canonical_edge(u, v)
            if e in dels:
                raise ValueError(f"duplicate deletion {e} in batch")
            if e in ins:
                raise ValueError(f"edge {e} both inserted and deleted in batch")
            if not self.has_edge(*e):
                raise ValueError(f"deletion of missing edge {e}")
            dels.add(e)

    # ------------------------------------------------------------------
    # Algorithm 2: RebalanceInsertions
    # ------------------------------------------------------------------

    def _rebalance_insertions(
        self, insertions: list[tuple[int, int]], moved: set[int]
    ) -> None:
        tracker = self.tracker
        vertices = self._vertices
        # Insert all edges into the structures (parallel hash inserts).
        # Dirty buckets are sorted-unique id lists (see :func:`_mark`), so
        # each round's movers come out in canonical order for free.
        dirty: dict[int, list[int]] = {}
        tracker.add(work=2 * len(insertions), depth=self._mut_depth)
        for u, v in insertions:
            for r in self._insert_edge_struct(u, v):
                _mark(dirty, r.level, r.id)

        bounds = self._inv1_bound_int
        jump = self.insertion_strategy == "jump"

        def rise(v: int) -> None:
            # Jump strategy only; the levelwise path is inlined below.
            rec = vertices[v]
            newly_marked = self._move_up_to(rec, self._up_desire_level(rec))
            moved.add(v)
            if len(rec.up) > bounds[rec.level]:
                newly_marked.append(rec)
            for wrec in newly_marked:
                _mark(dirty, wrec.level, wrec.id)

        track = self.track_orientation
        touched = self._touched
        mut_depth = self._mut_depth
        fault_plan = _faults.ACTIVE
        tracer = _tracing.ACTIVE
        mreg = _metrics.ACTIVE

        # Process levels bottom-up; Lemma 5.5 guarantees each level is
        # visited at most once (marks only propagate upward, so min(dirty)
        # is non-decreasing across iterations).
        while dirty:
            if fault_plan is not None:
                fault_plan.hit("plds.rise")
            level = min(dirty)
            candidates = dirty.pop(level)
            span = (
                tracer.begin(
                    "plds.rise", tracker, level=level, queue=len(candidates)
                )
                if tracer is not None
                else None
            )
            if mreg is not None:
                mreg.inc("plds.rise_levels")
                mreg.observe("plds.cascade_queue", len(candidates), phase="rise")
            tracker.add(work=1, depth=1)  # the level-loop iteration itself
            bound = bounds[level]
            if jump:
                movers = [
                    v
                    for v in candidates
                    if (rec := vertices[v]).level == level
                    and len(rec.up) > bound
                ]
                if not movers:
                    if span is not None:
                        tracer.end(span)
                    continue
                # The bucket is already sorted-unique, so the filtered
                # mover list is in canonical order without a re-sort.
                if __debug__:
                    assert _is_sorted_unique(movers)
                tracker.flat_parfor(movers, rise)
                if span is not None:
                    span.attrs["movers"] = len(movers)
                    tracer.end(span)
                continue
            # Levelwise fast path: :meth:`_move_up` inlined with aggregate
            # charging.  Each rise would charge (|U[v]| or 1, mut_depth)
            # into its own flat_parfor branch; the fold into the enclosing
            # frame is (sum of the works, mut_depth), charged once below.
            # All movers rise exactly one level, and every vertex they
            # newly mark sits exactly at ``level + 1``, so the dirty
            # bucket is updated in bulk too.
            target = level + 1
            bound_t = bounds[target]
            # A neighbor that already violated Invariant 1 at ``target``
            # before this level iteration is already in some dirty bucket
            # (edge inserts mark both endpoints; every rise re-marks the
            # riser while it still violates), so a riser only needs to
            # mark w on the exact bound crossing — later redundant marks
            # would be deduplicated by the dirty set anyway.
            crossing = bound_t + 1
            total_work = 0
            marked_next: list[int] = []
            marked_append = marked_next.append
            moved_add = moved.add
            # Movers are visited in ascending-id bucket order.  Any order
            # is parity-safe: a mover's U-set cardinality is unchanged
            # while its own level is being processed (same-level risers
            # re-add themselves to exactly the sets they left), so each
            # captured |U[v]| — and hence the aggregate work charge — is
            # order-invariant, and each target neighbor is marked exactly
            # once (bound-crossing add, or its own move) in every order.
            if track:
                for v in candidates:
                    rec = vertices[v]
                    if rec.level != level:
                        continue
                    up = rec.up
                    if len(up) <= bound:
                        continue
                    moved_add(v)
                    total_work += len(up)
                    stay = None
                    for wrec in up:
                        lw = wrec.level
                        if lw == level:
                            # w stays below v; v remains in U[w].
                            if stay is None:
                                stay = [wrec]
                            else:
                                stay.append(wrec)
                            w = wrec.id
                            touched.add((v, w) if v <= w else (w, v))
                        else:
                            wdown = wrec.down
                            bucket = wdown[level]
                            bucket.discard(rec)
                            if not bucket:
                                del wdown[level]
                            if lw == target:
                                wup = wrec.up
                                wup.add(rec)
                                if len(wup) == crossing:
                                    marked_append(wrec.id)
                                w = wrec.id
                                touched.add((v, w) if v <= w else (w, v))
                            else:  # lw > target: w's L-structure shifts.
                                slot = wdown.get(target)
                                if slot is None:
                                    wdown[target] = {rec}
                                else:
                                    slot.add(rec)
                    if stay is not None:
                        up.difference_update(stay)
                        slot = rec.down.get(level)
                        if slot is None:
                            rec.down[level] = set(stay)
                        else:
                            slot.update(stay)
                    rec.level = target
                    if len(up) > bound_t:
                        marked_append(v)
            else:
                # Same loop, minus orientation bookkeeping (the default).
                for v in candidates:
                    rec = vertices[v]
                    if rec.level != level:
                        continue
                    up = rec.up
                    if len(up) <= bound:
                        continue
                    moved_add(v)
                    total_work += len(up)
                    stay = None
                    for wrec in up:
                        lw = wrec.level
                        if lw == level:
                            # w stays below v; v remains in U[w].
                            if stay is None:
                                stay = [wrec]
                            else:
                                stay.append(wrec)
                        else:
                            wdown = wrec.down
                            bucket = wdown[level]
                            bucket.discard(rec)
                            if not bucket:
                                del wdown[level]
                            if lw == target:
                                wup = wrec.up
                                wup.add(rec)
                                if len(wup) == crossing:
                                    marked_append(wrec.id)
                            else:  # lw > target: w's L-structure shifts.
                                slot = wdown.get(target)
                                if slot is None:
                                    wdown[target] = {rec}
                                else:
                                    slot.add(rec)
                    if stay is not None:
                        up.difference_update(stay)
                        slot = rec.down.get(level)
                        if slot is None:
                            rec.down[level] = set(stay)
                        else:
                            slot.update(stay)
                    rec.level = target
                    if len(up) > bound_t:
                        marked_append(v)
            if not total_work:
                if span is not None:
                    tracer.end(span)
                continue  # no mover survived the filter at this level
            tracker.add(total_work, mut_depth)
            if marked_next:
                # Within a level iteration every vertex is marked at most
                # once (see the order-invariance note above), so one sort
                # yields the bucket's canonical sorted-unique form.
                bucket = dirty.get(target)
                if bucket is None:
                    marked_next.sort()
                    dirty[target] = marked_next
                else:
                    for w in marked_next:
                        _mark(dirty, target, w)
            if span is not None:
                tracer.end(span)

    def _move_up(self, rec: "_VertexRecord") -> list["_VertexRecord"]:
        """Move ``rec``'s vertex one level up (Algorithm 2's unit step).

        Specialized single-level version of :meth:`_move_up_to` — the
        dominant operation of levelwise insertion rebalancing.  With
        ``target = old + 1`` an up-neighbor is either at exactly ``old``
        (it stays below v; handled in bulk with C-level set operations),
        at ``old + 1`` (v rises into its U-set), or higher (its L-slot
        for v slides up one level).  Unlike :meth:`_move_up_to`, the
        returned violation list (of records) includes ``v``'s own record
        when v still violates Invariant 1 at the new level, so callers
        skip the re-check.  Takes the record (not the id) so shard
        kernels can apply the same step to ghost replicas that live
        outside ``_vertices``.  Cost: O(|U[v]|) work, O(log* n) depth —
        identical charges to the generic path.
        """
        v = rec.id
        old = rec.level
        target = old + 1
        up = rec.up
        self.tracker.add(len(up) or 1, self._mut_depth)
        track = self.track_orientation
        touched = self._touched
        bounds = self._inv1_bound_int

        stay: list[_VertexRecord] = []
        newly_marked: list[_VertexRecord] = []
        for wrec in up:
            lw = wrec.level
            if lw == old:
                # w stays below v; v remains in U[w].
                stay.append(wrec)
                if track:
                    w = wrec.id
                    touched.add((v, w) if v <= w else (w, v))
            else:
                wdown = wrec.down
                bucket = wdown[old]
                bucket.discard(rec)
                if not bucket:
                    del wdown[old]
                if lw == target:
                    wup = wrec.up
                    wup.add(rec)
                    if len(wup) > bounds[target]:
                        newly_marked.append(wrec)
                    if track:
                        w = wrec.id
                        touched.add((v, w) if v <= w else (w, v))
                else:  # lw > target: only w's L-structure shifts.
                    slot = wdown.get(target)
                    if slot is None:
                        wdown[target] = {rec}
                    else:
                        slot.add(rec)
        if stay:
            up.difference_update(stay)
            slot = rec.down.get(old)
            if slot is None:
                rec.down[old] = set(stay)
            else:
                slot.update(stay)
        rec.level = target
        if len(up) > bounds[target]:
            newly_marked.append(rec)
        return newly_marked

    def _move_up_to(
        self, rec: "_VertexRecord", target: int
    ) -> list["_VertexRecord"]:
        """Move ``rec`` up to ``target``, updating all affected structures.

        ``target == old + 1`` is the theoretical Algorithm 2 step; larger
        jumps implement the Section-6.1 optimization.  Returns the records
        of neighbors whose up-degree grew and now violate Invariant 1 (to
        be marked).  Record-based so shard kernels can move ghost
        replicas.  Cost: O(|U[v]|) work, O(log* n) depth.
        """
        v = rec.id
        old = rec.level
        if target <= old:
            raise AssertionError("move_up_to requires a strictly higher level")
        self.tracker.add(work=max(1, len(rec.up)), depth=self._mut_depth)
        track = self.track_orientation
        touched = self._touched
        bounds = self._inv1_bound_int

        to_down: list[tuple[_VertexRecord, int]] = []
        newly_marked: list[_VertexRecord] = []
        for wrec in rec.up:
            lw = wrec.level
            if lw == old:
                # w stays below v; v remains in U[w].
                to_down.append((wrec, lw))
                if track:
                    w = wrec.id
                    touched.add((v, w) if v <= w else (w, v))
            elif lw <= target:
                # old < lw <= target: v rises into U[w].
                bucket = wrec.down[old]
                bucket.discard(rec)
                if not bucket:
                    del wrec.down[old]
                wrec.up.add(rec)
                if len(wrec.up) > bounds[lw]:
                    newly_marked.append(wrec)
                if lw < target:
                    # w is now strictly below v.
                    to_down.append((wrec, lw))
                if track:
                    w = wrec.id
                    touched.add((v, w) if v <= w else (w, v))
            else:  # lw > target: only w's L-structure shifts.
                bucket = wrec.down[old]
                bucket.discard(rec)
                if not bucket:
                    del wrec.down[old]
                slot = wrec.down.get(target)
                if slot is None:
                    wrec.down[target] = {rec}
                else:
                    slot.add(rec)
        down = rec.down
        for wrec, lw in to_down:
            rec.up.discard(wrec)
            slot = down.get(lw)
            if slot is None:
                down[lw] = {wrec}
            else:
                slot.add(wrec)
        rec.level = target
        return newly_marked

    def _up_desire_level(self, rec: "_VertexRecord") -> int:
        """First level above ℓ(v) where Invariant 1 holds (Section 6.1).

        ``cnt(j)`` = #neighbors at levels >= j is non-increasing in j
        while the bound grows, so the first satisfying level is the
        closest.  Invariant 2 holds there automatically: the level below
        violated Invariant 1, so ``cnt(j-1) > (2+3/λ)(1+δ)^{gn(j-1)} >=
        (1+δ)^{gn(j-1)}``.
        """
        old = rec.level
        # Histogram the up-neighbor levels once, then walk upward dropping
        # the count of neighbors below each candidate level (all up
        # neighbors sit at levels >= old, so only exact-level counts are
        # ever subtracted) — same scan the sorted version did, without the
        # O(d log d) sort.
        counts: dict[int, int] = {}
        for wrec in rec.up:
            lw = wrec.level
            counts[lw] = counts.get(lw, 0) + 1
        cnt = len(rec.up)
        bounds = self._inv1_bound_int
        counts_get = counts.get
        j = old
        while True:
            j += 1
            dropped = counts_get(j - 1)
            if dropped:
                cnt -= dropped
            if cnt <= bounds[j]:
                break
        self.tracker.add(
            work=max(1, len(rec.up) + (j - old)),
            depth=self._levels_depth,
        )
        return j

    # ------------------------------------------------------------------
    # Algorithm 3: RebalanceDeletions
    # ------------------------------------------------------------------

    def _rebalance_deletions(
        self, deletions: list[tuple[int, int]], moved: set[int]
    ) -> None:
        tracker = self.tracker
        tracker.add(work=2 * len(deletions), depth=self._mut_depth)
        affected: set[int] = set()
        for u, v in deletions:
            self._delete_edge_struct(u, v)
            affected.add(u)
            affected.add(v)

        desire: dict[int, int] = {}
        # Pending buckets are sorted-unique id lists (see :func:`_mark`).
        pending: dict[int, list[int]] = {}
        vertices = self._vertices
        thresholds = self._inv2_thresh_int

        def consider(w: int) -> None:
            rec = vertices[w]
            lvl = rec.level
            if lvl == 0:
                return
            below = rec.down.get(lvl - 1)
            up_star = len(rec.up) + (len(below) if below else 0)
            if up_star < thresholds[lvl]:
                dl = self._calculate_desire_level(rec)
                desire[w] = dl
                _mark(pending, dl, w)

        tracker.flat_parfor(sorted(affected), consider)

        # Process levels bottom-up; each vertex moves exactly once
        # (Lemma 5.6: once level i is done, no vertex desires <= i).
        #
        # A stored desire-level can go stale in one way the "weakened"
        # propagation cannot see: a neighbor later drops below the pending
        # vertex's *target* level (while staying at/above its current
        # level minus one).  We therefore revalidate dl(v) at move time;
        # a changed value re-enqueues the vertex (desire-levels only
        # decrease during a deletion phase, so this terminates).
        fault_plan = _faults.ACTIVE
        tracer = _tracing.ACTIVE
        mreg = _metrics.ACTIVE
        while pending:
            if fault_plan is not None:
                fault_plan.hit("plds.desaturate")
            level = min(pending)
            bucket = pending.pop(level)
            span = (
                tracer.begin(
                    "plds.desaturate", tracker, level=level, queue=len(bucket)
                )
                if tracer is not None
                else None
            )
            if mreg is not None:
                mreg.inc("plds.desaturate_levels")
                mreg.observe(
                    "plds.cascade_queue", len(bucket), phase="desaturate"
                )
            movers = [
                v
                for v in bucket
                if desire.get(v) == level and vertices[v].level > level
            ]
            tracker.add(work=1, depth=1)
            if not movers:
                if span is not None:
                    tracer.end(span)
                continue

            def descend(v: int, level: int = level) -> None:
                rec = vertices[v]
                fresh = self._calculate_desire_level(rec)
                if fresh != level:
                    if fresh < rec.level:
                        desire[v] = fresh
                        _mark(pending, fresh, v)
                    else:
                        desire.pop(v, None)
                    return
                weakened = self._move_down(rec, level)
                moved.add(v)
                desire.pop(v, None)
                for wrec in weakened:
                    w = wrec.id
                    if desire.get(w) is not None:
                        # stale pending entry is skipped lazily
                        desire.pop(w, None)
                    consider(w)

            # Buckets are sorted-unique, so the filtered mover list is
            # already in canonical order — no per-round re-sort.
            if __debug__:
                assert _is_sorted_unique(movers)
            tracker.flat_parfor(movers, descend)
            if span is not None:
                span.attrs["movers"] = len(movers)
                tracer.end(span)

    def _move_down(
        self, rec: "_VertexRecord", new_level: int
    ) -> list["_VertexRecord"]:
        """Move ``rec`` down to ``new_level``, updating affected structures.

        Returns the records of neighbors whose ``up*`` decreased
        (candidates for new Invariant-2 violations).  Record-based (and
        record-returning) so shard kernels can move ghost replicas and
        partition the weakened set into local re-checks vs. remote
        messages.  Cost: O(#neighbors at levels >= new_level) work,
        O(log* n) depth.
        """
        v = rec.id
        old = rec.level
        if new_level >= old:
            raise AssertionError("move_down requires a strictly lower level")
        tracker = self.tracker
        track = self.track_orientation
        touched = self._touched
        weakened: list[_VertexRecord] = []
        ops = len(rec.up)

        # Neighbors formerly above or at v's old level.
        for wrec in rec.up:
            lw = wrec.level
            wdown = wrec.down
            if lw == old:
                wrec.up.discard(rec)
            else:  # lw > old
                bucket = wdown[old]
                bucket.discard(rec)
                if not bucket:
                    del wdown[old]
            slot = wdown.get(new_level)
            if slot is None:
                wdown[new_level] = {rec}
            else:
                slot.add(rec)
            # v left Z_{lw-1} iff new_level < lw - 1 <= old.
            if new_level < lw - 1 <= old:
                weakened.append(wrec)
            if track and lw <= old:
                w = wrec.id
                touched.add((v, w) if v <= w else (w, v))

        # Neighbors between new_level and old-1 move from L_v into U[v].
        rec_up_add = rec.up.add
        for j in range(new_level, old):
            bucket = rec.down.pop(j, None)
            if not bucket:
                continue
            ops += len(bucket)
            for wrec in bucket:
                rec_up_add(wrec)
                lw = wrec.level
                if new_level < lw:
                    wrec.up.discard(rec)
                    wdown = wrec.down
                    slot = wdown.get(new_level)
                    if slot is None:
                        wdown[new_level] = {rec}
                    else:
                        slot.add(rec)
                    if new_level < lw - 1 <= old:
                        weakened.append(wrec)
                if track:
                    w = wrec.id
                    touched.add((v, w) if v <= w else (w, v))

        rec.level = new_level
        tracker.add(work=max(1, ops), depth=self._mut_depth)
        return weakened

    # ------------------------------------------------------------------
    # Algorithm 4: CalculateDesireLevel
    # ------------------------------------------------------------------

    def _calculate_desire_level(self, rec: "_VertexRecord") -> int:
        """Closest level <= ℓ(v) satisfying both invariants.

        Scans downward accumulating ``cnt(j)`` = #neighbors at levels >= j
        and returns the *highest* level ``l'`` with
        ``cnt(l'-1) >= (1+δ)^{gn(l'-1)}`` (or 0 for degree-0 vertices).
        Invariant 1 holds automatically at that level: by maximality,
        ``cnt(l') < (1+δ)^{gn(l')} <= (2+3/λ)(1+δ)^{gn(l')}``.

        The scan does the same O(ℓ(v) - dl(v)) work as the paper's
        doubling-plus-binary-search; we charge the parallel version's
        O(log K) depth.
        """
        lvl = rec.level
        cnt = len(rec.up)
        scanned = 1
        best = 0
        down_get = rec.down.get
        thresholds = self._inv2_thresh_int
        for lprime in range(lvl, 0, -1):
            bucket = down_get(lprime - 1)
            if bucket:
                cnt += len(bucket)
            scanned += 1
            if cnt >= thresholds[lprime]:
                best = lprime
                break
        self.tracker.add(work=scanned, depth=self._levels_depth)
        return best

    # ------------------------------------------------------------------
    # Structure-level edge insertion/deletion
    # ------------------------------------------------------------------

    def _record(self, v: int) -> _VertexRecord:
        rec = self._vertices.get(v)
        if rec is None:
            rec = _VertexRecord(v)
            self._vertices[v] = rec
        return rec

    # The three hooks below exist so array-backed subclasses (the flat
    # engine in :mod:`repro.core.plds_flat`) can reuse the generic
    # vertex-update / rebuild / snapshot drivers without records.

    def _has_vertex(self, v: int) -> bool:
        return v in self._vertices

    def _drop_vertex(self, v: int) -> bool:
        """Remove an (isolated) vertex; True if it existed."""
        return self._vertices.pop(v, None) is not None

    def _restore_level(self, v: int, level: int) -> None:
        """Create ``v`` at ``level`` (snapshot restore; no rebalancing)."""
        self._record(v).level = level

    @staticmethod
    def _link_records(ru: _VertexRecord, rv: _VertexRecord) -> None:
        """Wire the edge (ru, rv) into both records' U/L structures.

        Placement follows the level rule only — no duplicate/self-loop
        checks and no ``_m`` accounting, so shard kernels can link a
        (local, ghost) record pair under their own edge-count discipline.
        """
        if rv.level >= ru.level:
            ru.up.add(rv)
        else:
            slot = ru.down.get(rv.level)
            if slot is None:
                ru.down[rv.level] = {rv}
            else:
                slot.add(rv)
        if ru.level >= rv.level:
            rv.up.add(ru)
        else:
            slot = rv.down.get(ru.level)
            if slot is None:
                rv.down[ru.level] = {ru}
            else:
                slot.add(ru)
        ru.deg += 1
        rv.deg += 1

    @staticmethod
    def _unlink_records(ru: _VertexRecord, rv: _VertexRecord) -> None:
        """Remove the edge (ru, rv) from both records' U/L structures."""
        if rv.level >= ru.level:
            ru.up.discard(rv)
        else:
            bucket = ru.down[rv.level]
            bucket.discard(rv)
            if not bucket:
                del ru.down[rv.level]
        if ru.level >= rv.level:
            rv.up.discard(ru)
        else:
            bucket = rv.down[ru.level]
            bucket.discard(ru)
            if not bucket:
                del rv.down[ru.level]
        ru.deg -= 1
        rv.deg -= 1

    def _insert_edge_struct(
        self, u: int, v: int
    ) -> tuple[_VertexRecord, _VertexRecord]:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if self.has_edge(u, v):
            raise ValueError(f"duplicate edge ({u},{v})")
        ru, rv = self._record(u), self._record(v)
        self._link_records(ru, rv)
        self._m += 1
        return ru, rv

    def _delete_edge_struct(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise ValueError(f"edge ({u},{v}) not present")
        ru, rv = self._vertices[u], self._vertices[v]
        self._unlink_records(ru, rv)
        self._m -= 1

    # ------------------------------------------------------------------
    # Orientation upkeep (Algorithm 5)
    # ------------------------------------------------------------------

    def _finish_orientation(self, batch: Batch, result: UpdateResult) -> None:
        tracker = self.tracker
        inserted = set(batch.insertions)
        tracker.add(
            work=max(1, len(self._touched) + len(inserted)), depth=self._mut_depth
        )
        for e in self._touched:
            if e in inserted or e not in self._orient:
                continue
            if not self.has_edge(*e):
                continue
            new_dir = self.orientation_of(*e)
            old_dir = self._orient[e]
            if new_dir != old_dir:
                result.flipped.append(old_dir)
                self._orient[e] = new_dir
        for e in inserted:
            d = self.orientation_of(*e)
            self._orient[e] = d
            result.oriented_insertions.append(d)
        self._touched = set()

    # ------------------------------------------------------------------
    # Rebuild (Section 5.9) and diagnostics
    # ------------------------------------------------------------------

    def _maybe_rebuild(self) -> None:
        # Section 5.9: rebuild once the live vertex count outgrows the
        # sizing hint, or after n/2 vertex updates have accumulated (the
        # rebuild cost amortizes to O(log² n) per vertex update).
        # The hint is sized at twice the vertex count of the last rebuild,
        # so n_hint // 4 approximates the paper's "n/2 vertex updates".
        if (
            self.num_vertices <= self.n_hint
            and self._vertex_updates <= max(self.n_hint // 4, 8)
        ):
            return
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("plds.rebuilds")
        tracer = _tracing.ACTIVE
        if tracer is None:
            self._rebuild()
            return
        with tracer.span(
            "plds.rebuild",
            self.tracker,
            vertices=self.num_vertices,
            edges=self._m,
        ):
            self._rebuild()

    def _rebuild(self) -> None:
        edges = list(self.edges())
        vertices = list(self.vertices())
        # Resize to the live vertex count (growing or shrinking), so the
        # level count K tracks the current n as Section 5.9 requires.
        new_hint = max(2, 2 * len(vertices))
        self.tracker.add(
            work=max(1, len(edges) + len(vertices)),
            depth=log2_ceil(max(2, len(edges))) + 1,
        )
        self.__init__(  # noqa: PLC2801 - deliberate in-place re-init
            n_hint=new_hint,
            delta=self.delta,
            lam=self.lam,
            group_shrink=self.group_shrink,
            upper_coeff=self.upper_coeff,
            tracker=self.tracker,
            track_orientation=self.track_orientation,
            insertion_strategy=self.insertion_strategy,
            structure=self.structure,
        )
        for v in vertices:  # keep isolated vertices alive at level 0
            self._record(v)
        if edges:
            self.update(Batch(insertions=edges))
        # Set AFTER the replay update above, so the outer update() (when
        # the rebuild fired from _maybe_rebuild mid-batch) reports
        # last_moved=None rather than just the replay's movers.
        self._levels_reshaped = True

    # ------------------------------------------------------------------
    # Snapshots (persistence for long-running monitors)
    # ------------------------------------------------------------------

    def to_snapshot(self) -> dict:
        """JSON-serializable snapshot of the full structure state.

        Levels fully determine the structure (the U/L partitions and the
        orientation are functions of the levels), so the snapshot stores
        parameters, per-vertex levels, and the edge list.
        """
        return {
            "format": 1,
            "params": {
                "n_hint": self.n_hint,
                "delta": self.delta,
                "lam": self.lam,
                "group_shrink": self.group_shrink,
                "upper_coeff": self.upper_coeff,
                "track_orientation": self.track_orientation,
                "insertion_strategy": self.insertion_strategy,
                "structure": self.structure,
            },
            "levels": sorted([v, self.level(v)] for v in self.vertices()),
            "edges": sorted(self.edges()),
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: dict, tracker: WorkDepthTracker | None = None
    ) -> "PLDS":
        """Reconstruct a PLDS from :meth:`to_snapshot` output.

        The levels are restored verbatim (no replay), so estimates,
        orientation, and invariants match the snapshotted instance
        exactly.  Raises ``ValueError`` if the snapshot is internally
        inconsistent (an edge referencing an unknown vertex, or a level
        out of range).
        """
        if snapshot.get("format") != 1:
            raise ValueError("unsupported snapshot format")
        plds = cls(tracker=tracker, **snapshot["params"])
        for v, level in snapshot["levels"]:
            if not 0 <= level < plds.num_levels:
                raise ValueError(f"level {level} of vertex {v} out of range")
            plds._restore_level(v, level)
        for u, v in snapshot["edges"]:
            if not plds._has_vertex(u) or not plds._has_vertex(v):
                raise ValueError(f"edge ({u},{v}) references unknown vertex")
            plds._insert_edge_struct(u, v)
        if plds.track_orientation:
            for e in plds.edges():
                plds._orient[e] = plds.orientation_of(*e)
        return plds

    def level_histogram(self) -> dict[int, int]:
        """Number of vertices per (non-empty) level."""
        hist: dict[int, int] = {}
        for rec in self._vertices.values():
            hist[rec.level] = hist.get(rec.level, 0) + 1
        return hist

    def group_histogram(self) -> dict[int, int]:
        """Number of vertices per (non-empty) group."""
        hist: dict[int, int] = {}
        for rec in self._vertices.values():
            g = self.group_number(rec.level)
            hist[g] = hist.get(g, 0) + 1
        return hist

    def stats(self) -> dict[str, float]:
        """Structure health snapshot: sizes, occupancy, cost so far.

        Useful for monitoring dashboards and debugging; everything here
        is O(n) to compute and side-effect free.
        """
        levels = [rec.level for rec in self._vertices.values()]
        return {
            "num_vertices": float(len(self._vertices)),
            "num_edges": float(self._m),
            "num_levels": float(self.num_levels),
            "levels_per_group": float(self.levels_per_group),
            "max_level_in_use": float(max(levels, default=0)),
            "mean_level": (sum(levels) / len(levels)) if levels else 0.0,
            "work": float(self.tracker.work),
            "depth": float(self.tracker.depth),
            "space_bytes": float(self.space_bytes()),
        }

    def check_invariants(self) -> list[str]:
        """Return human-readable descriptions of any invariant violations.

        Empty list means the structure satisfies Invariants 1 and 2 and its
        U/L bookkeeping is internally consistent.  Intended for tests.
        """
        problems: list[str] = []
        for v, rec in self._vertices.items():
            lvl = rec.level
            actual_deg = len(rec.up) + sum(len(s) for s in rec.down.values())
            if rec.deg != actual_deg:
                problems.append(
                    f"cached degree of v={v} is {rec.deg}, "
                    f"structures hold {actual_deg}"
                )
            if len(rec.up) > self.inv1_bound(lvl):
                problems.append(
                    f"Invariant 1 violated at v={v}: up={len(rec.up)} > "
                    f"{self.inv1_bound(lvl):.2f} (level {lvl})"
                )
            if lvl > 0 and rec.degree() > 0:
                up_star = len(rec.up) + len(rec.down.get(lvl - 1, ()))
                if up_star < self.inv2_threshold(lvl):
                    problems.append(
                        f"Invariant 2 violated at v={v}: up*={up_star} < "
                        f"{self.inv2_threshold(lvl):.2f} (level {lvl})"
                    )
            for wrec in rec.up:
                if wrec.level < lvl:
                    problems.append(f"U[{v}] holds {wrec.id} below level {lvl}")
            for j, bucket in rec.down.items():
                if j >= lvl:
                    problems.append(f"L_{v}[{j}] exists at/above level {lvl}")
                for wrec in bucket:
                    if wrec.level != j:
                        problems.append(
                            f"L_{v}[{j}] holds {wrec.id} at level "
                            f"{wrec.level}"
                        )
        return problems

    def space_bytes(self) -> int:
        """Rough byte count of the maintained structures (Section 6.8).

        Counts 8 bytes per stored vertex id / level slot / hash entry, the
        same bookkeeping granularity the paper's space experiments use.
        The randomized/deterministic variants keep a slot for *every*
        level below ℓ(v) (the O(n log² n) term); the space-efficient
        variant (Section 5.8) keeps a linked-list node only for non-empty
        levels, giving O(n + m).
        """
        total = 0
        for rec in self._vertices.values():
            total += 8  # level
            total += 8 * len(rec.up)
            if self.structure == "space_efficient":
                total += sum(16 + 8 * len(s) for s in rec.down.values())
            else:
                total += 8 * rec.level  # one L_v slot per lower level
                total += sum(8 * len(s) for s in rec.down.values())
        total += 24 * len(self._orient)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PLDS(n={self.num_vertices}, m={self._m}, K={self.num_levels}, "
            f"delta={self.delta}, lam={self.lam}, shrink={self.group_shrink})"
        )
