"""Densest-subgraph estimation from the level structure.

The LDS line of work the paper builds on (Bhattacharya et al. [13],
Section 3's related work) originally used level structures for dynamic
*densest subgraph*.  The same estimates fall out of our PLDS for free:

- the maximum density ρ* of any subgraph satisfies ``d/2 <= ρ* <= d``
  where ``d`` is the degeneracy (= maximum coreness), and
- the PLDS maintains ``k̂_max ∈ [d/(2+ε), (2+ε)·d]`` (Lemma 5.13),

so ``k̂_max / 2`` is a ``2(2+ε)``-approximation of ρ*, maintained
batch-dynamically at no extra cost.  A witness subgraph comes from the
top occupied levels.

For verification, :func:`charikar_peel` implements the classic greedy
2-approximation (peel minimum-degree vertices, keep the densest prefix),
whose output ``g`` brackets the optimum: ``g <= ρ* <= 2g``.
"""

from __future__ import annotations

from typing import Iterable

from .plds import PLDS

__all__ = ["charikar_peel", "densest_subgraph_estimate"]


def charikar_peel(
    edges: Iterable[tuple[int, int]],
) -> tuple[float, set[int]]:
    """Charikar's greedy densest-subgraph 2-approximation.

    Returns ``(density, vertices)`` of the densest peel prefix; the true
    maximum density ρ* satisfies ``density <= ρ* <= 2 * density``.
    """
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    if not adj:
        return 0.0, set()

    n = len(adj)
    m = sum(len(s) for s in adj.values()) // 2
    deg = {v: len(s) for v, s in adj.items()}
    maxdeg = max(deg.values())
    buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
    for v, d in deg.items():
        buckets[d].add(v)

    removal_order: list[int] = []
    removed: set[int] = set()
    cur = 0
    cur_edges = m
    best_density = m / n
    best_cut = 0  # removals applied when the best density was seen
    for step in range(n - 1):
        while not buckets[cur]:
            cur += 1
        v = buckets[cur].pop()
        removed.add(v)
        removal_order.append(v)
        cur_edges -= deg[v]
        for w in adj[v]:
            if w in removed:
                continue
            buckets[deg[w]].discard(w)
            deg[w] -= 1
            buckets[deg[w]].add(w)
            cur = min(cur, deg[w])
        density = cur_edges / (n - step - 1)
        if density > best_density:
            best_density = density
            best_cut = step + 1
    survivors = set(adj) - set(removal_order[:best_cut])
    return best_density, survivors


def densest_subgraph_estimate(plds: PLDS) -> tuple[float, set[int]]:
    """``2(2+ε)``-approximate maximum subgraph density from a PLDS.

    Returns ``(density_estimate, witness_vertices)`` where the estimate
    is ``k̂_max / 2`` and the witness is the set of vertices achieving
    the maximum coreness estimate (the top occupied group).  Costs O(n);
    no update-time overhead beyond the PLDS itself.
    """
    best = 0.0
    for v in plds.vertices():
        est = plds.coreness_estimate(v)
        if est > best:
            best = est
    if best == 0.0:
        return 0.0, set()
    witness = {
        v for v in plds.vertices() if plds.coreness_estimate(v) == best
    }
    return best / 2.0, witness
