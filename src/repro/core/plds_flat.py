"""Flat array-backed PLDS: the record layout replaced by integer slots.

:class:`PLDSFlat` reimplements the PLDS hot state (``_VertexRecord``
objects holding ``up: set[record]`` / ``down: dict[level, set[record]]``)
as flat, slot-indexed structures in the GBBS style ("Theoretically
Efficient Parallel Graph Algorithms Can Be Fast and Scalable" — flat
arrays and work-efficient primitives, not pointer graphs):

- every vertex owns a dense *slot* in ``[0, n)``; all per-vertex state
  is parallel arrays indexed by slot, compacted on vertex deletion;
- ``level`` is one dense integer vector (``_lv``) — the single hottest
  load of every cascade loop becomes a list subscript (~17ns on CPython
  3.11) instead of an attribute load through a record header (~25ns); a
  contiguous int32 image of the vector (:meth:`_level_bytes`) is the
  IPC format the pool backend ships through shared memory;
- adjacency is slot-based: ``_up[i]`` is a set of neighbor *slots*
  (plain ints), ``_down[i]`` maps lower levels to slot sets — int
  hashing is cheaper than record hashing and payloads are shareable
  with worker processes by value;
- desire levels are computed into a dense ``-1``-initialised scratch
  vector sized by the live slot count, not a per-batch dict.

The layout is the prerequisite for a real execution backend: a
:class:`~repro.parallel.pool.PoolBackend` tracker can ship the level
image through ``multiprocessing.shared_memory`` and fan the read-only
desire-level scan out to worker processes (see
:func:`repro.parallel.pool.attach_consider_task`), which is impossible
with address-hashed record sets.

Parity contract
---------------
``PLDSFlat`` is *observationally bit-identical* to :class:`PLDS` at the
same parameters: identical coreness estimates AND identical metered
(work, depth) on every update stream.  Every charge site of the record
implementation is replicated with the same amounts, and every cascade
processes movers in the same canonical ascending-id order.  The golden
parity fixture and ``tests/test_flat.py`` gate this.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator

from .. import faults as _faults
from ..graphs.dynamic_graph import canonical_edge
from ..graphs.streams import Batch
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .plds import PLDS, _is_sorted_unique

__all__ = ["PLDSFlat"]


def _merge_marks(
    buckets: dict[int, list[int]], buf: list[tuple[int, int]]
) -> None:
    """Bulk-apply buffered ``(level, id)`` marks into cascade buckets.

    Produces exactly the sorted-unique buckets that per-item
    :func:`~repro.core.plds.PLDS` ``_mark`` calls would — one sort per
    touched level instead of a bisect-insort (an O(bucket) list shift)
    per mark.  Safe whenever nothing reads ``buckets`` between the marks
    being buffered and this merge, which is the case between the cascade
    loops' ``flat_parfor`` rounds.  ``buf`` is drained.
    """
    per: dict[int, list[int]] = {}
    for level, w in buf:
        lst = per.get(level)
        if lst is None:
            per[level] = [w]
        else:
            lst.append(w)
    buf.clear()
    for level, items in per.items():
        cur = buckets.get(level)
        if cur is None:
            buckets[level] = sorted(set(items))
        else:
            buckets[level] = sorted(set(items).union(cur))


class PLDSFlat(PLDS):
    """Array-backed PLDS (see module docstring).

    Accepts exactly the :class:`PLDS` constructor parameters; the
    execution backend is selected by the ``tracker`` (pass a
    :class:`repro.parallel.pool.PoolBackend` to fan the scan phases out
    to a process pool).
    """

    def __init__(self, n_hint: int, **kwargs: Any) -> None:
        # The Section-5.9 rebuild path re-runs __init__ on a live
        # instance; release the previous resident image (if any) so its
        # stale slot numbering can never be flushed again.
        stale_image = getattr(self, "_pool_image", None)
        if stale_image is not None:
            stale_image.close()
        super().__init__(n_hint, **kwargs)
        #: id -> slot.  Slots are dense in [0, _n) and stable between
        #: vertex deletions (which compact by swapping the last slot in).
        self._slot_of: dict[int, int] = {}
        #: slot -> id.
        self._vid: list[int] = []
        self._n = 0
        #: slot -> level; the dense vector every hot loop reads.
        self._lv: list[int] = []
        self._deg: list[int] = []
        #: slot -> set of neighbor slots at levels >= the slot's level.
        self._up: list[set[int]] = []
        #: slot -> {lower level -> set of neighbor slots there}.
        self._down: list[dict[int, set[int]]] = []
        # -- resident-image dirty protocol (repro.parallel.pool) -------
        #: whether the tracker pool-dispatches (gates dirty noting).
        self._pool_track = bool(getattr(self.tracker, "pool_tasks", False))
        #: the ResidentImage shipping this engine's state, if any.
        self._pool_image: Any = None
        #: slot numbering changed (vertex insert/compact): full rebuild.
        self._pool_renumber = True
        #: edges changed but numbering held: CSR rewrite, level deltas.
        self._pool_adj_dirty = True
        #: slots whose level changed since the last flush.
        self._pool_dirty_slots: list[int] = []

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def _slot(self, v: int) -> int:
        i = self._slot_of.get(v)
        if i is None:
            i = self._n
            self._n = i + 1
            self._pool_renumber = True
            self._slot_of[v] = i
            self._vid.append(v)
            self._lv.append(0)
            self._deg.append(0)
            self._up.append(set())
            self._down.append({})
        return i

    def _record(self, v: int):  # type: ignore[override]
        # Base-class drivers (insert_vertices, _rebuild) only create the
        # vertex and ignore the return value.
        return self._slot(v)

    def _has_vertex(self, v: int) -> bool:
        return v in self._slot_of

    def _restore_level(self, v: int, level: int) -> None:
        self._lv[self._slot(v)] = level

    def _level_bytes(self) -> bytes:
        """Contiguous int32 image of the level vector.

        This is the zero-copy IPC format: the pool backend memcpys it
        into a shared segment once per dispatch and workers read levels
        straight out of the mapped buffer.
        """
        return array("i", self._lv).tobytes()

    # ------------------------------------------------------------------
    # Resident-image encoders (repro.parallel.pool.ResidentImage)
    # ------------------------------------------------------------------

    def pool_csr(self) -> tuple[array, array]:
        """CSR-style slot adjacency: ``(offsets, neighbor slots)``.

        Row ``i`` lists slot ``i``'s full neighbor multiset (up-set then
        down buckets — workers recover the split from levels alone), so
        the image survives level moves untouched and is rebuilt only
        when edges or slot numbering change.
        """
        n = self._n
        offsets = array("i", bytes(4 * (n + 1)))
        nbrs: list[int] = []
        extend = nbrs.extend
        ups = self._up
        downs = self._down
        for i in range(n):
            extend(ups[i])
            for bucket in downs[i].values():
                extend(bucket)
            offsets[i + 1] = len(nbrs)
        return offsets, array("i", nbrs)

    def pool_levels_array(self) -> array:
        return array("i", self._lv)

    def pool_levels_range(self, lo: int, hi: int) -> array:
        return array("i", self._lv[lo:hi])

    def _pool_note_ids(self, ids: Any) -> None:
        """Record that these vertices' levels (may have) changed since
        the last image flush.  Over-approximation is safe — flushed
        bytes are read fresh — and the list is capped: a degenerate
        backlog (e.g. the no-shared-memory fallback never flushing)
        collapses into a full-image rebuild instead of unbounded
        growth."""
        if self._pool_renumber:
            return
        dirty = self._pool_dirty_slots
        slot_of = self._slot_of
        dirty.extend(slot_of[v] for v in ids)
        if len(dirty) > 1024 and len(dirty) > 4 * self._n:
            self._pool_renumber = True
            del dirty[:]

    def _drop_vertex(self, v: int) -> bool:
        i = self._slot_of.pop(v, None)
        if i is None:
            return False
        self._pool_renumber = True
        last = self._n - 1
        lv = self._lv
        if i != last:
            # Compact: move the last slot's state into i and rewrite the
            # moved vertex's slot number in its neighbors' structures.
            w = self._vid[last]
            lw = lv[last]
            self._slot_of[w] = i
            self._vid[i] = w
            lv[i] = lw
            self._deg[i] = self._deg[last]
            up_w = self._up[last]
            down_w = self._down[last]
            self._up[i] = up_w
            self._down[i] = down_w
            for j in up_w:
                self._rename_in(j, lw, last, i)
            for bucket in down_w.values():
                for j in bucket:
                    self._rename_in(j, lw, last, i)
        self._vid.pop()
        self._lv.pop()
        self._deg.pop()
        self._up.pop()
        self._down.pop()
        self._n = last
        return True

    def _rename_in(self, j: int, level_of_moved: int, old: int, new: int) -> None:
        """Replace slot ``old`` by ``new`` inside neighbor ``j``'s sets."""
        if level_of_moved >= self._lv[j]:
            up_j = self._up[j]
            if old in up_j:
                up_j.discard(old)
                up_j.add(new)
                return
        bucket = self._down[j].get(level_of_moved)
        if bucket is not None and old in bucket:
            bucket.discard(old)
            bucket.add(new)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def level(self, v: int) -> int:
        i = self._slot_of.get(v)
        return self._lv[i] if i is not None else 0

    def up_degree(self, v: int) -> int:
        i = self._slot_of.get(v)
        return len(self._up[i]) if i is not None else 0

    def up_star_degree(self, v: int) -> int:
        i = self._slot_of.get(v)
        if i is None:
            return 0
        below = self._down[i].get(self._lv[i] - 1)
        return len(self._up[i]) + (len(below) if below else 0)

    def degree(self, v: int) -> int:
        i = self._slot_of.get(v)
        return self._deg[i] if i is not None else 0

    def neighbors(self, v: int) -> list[int]:
        i = self._slot_of.get(v)
        if i is None:
            return []
        vid = self._vid
        out = [vid[j] for j in self._up[i]]
        for bucket in self._down[i].values():
            out.extend(vid[j] for j in bucket)
        out.sort()
        return out

    def has_edge(self, u: int, v: int) -> bool:
        slot_of = self._slot_of
        i = slot_of.get(u)
        j = slot_of.get(v)
        if i is None or j is None:
            return False
        lv = self._lv
        if lv[j] >= lv[i]:
            return j in self._up[i]
        return j in self._down[i].get(lv[j], ())

    @property
    def num_vertices(self) -> int:
        return self._n

    def vertices(self) -> Iterator[int]:
        return iter(self._vid)

    def edges(self) -> Iterator[tuple[int, int]]:
        vid = self._vid
        for i in range(self._n):
            v = vid[i]
            for j in self._up[i]:
                w = vid[j]
                if v < w:
                    yield (v, w)
            for bucket in self._down[i].values():
                for j in bucket:
                    w = vid[j]
                    if v < w:
                        yield (v, w)

    # ------------------------------------------------------------------
    # Coreness estimation
    # ------------------------------------------------------------------
    # The shared QueryView surface (coreness_estimate, core_members,
    # densest_estimate, ...) reads the flat arrays through these hooks.

    def _level_items(self) -> Iterator[tuple[int, int, int]]:
        lv = self._lv
        deg = self._deg
        vid = self._vid
        for i in range(self._n):
            yield vid[i], lv[i], deg[i]

    def _level_deg_of(self, v: int) -> tuple[int, int] | None:
        i = self._slot_of.get(v)
        return (self._lv[i], self._deg[i]) if i is not None else None

    # ------------------------------------------------------------------
    # Orientation queries
    # ------------------------------------------------------------------

    def out_neighbors(self, v: int) -> list[int]:
        i = self._slot_of.get(v)
        if i is None:
            return []
        lv = self._lv
        vid = self._vid
        li = lv[i]
        out = []
        for j in self._up[i]:
            lw = lv[j]
            if lw > li or (lw == li and v < vid[j]):
                out.append(vid[j])
        out.sort()
        return out

    def out_degree(self, v: int) -> int:
        i = self._slot_of.get(v)
        if i is None:
            return 0
        lv = self._lv
        vid = self._vid
        li = lv[i]
        count = 0
        for j in self._up[i]:
            lw = lv[j]
            if lw > li or (lw == li and v < vid[j]):
                count += 1
        return count

    def in_neighbors(self, v: int) -> list[int]:
        i = self._slot_of.get(v)
        if i is None:
            return []
        lv = self._lv
        vid = self._vid
        li = lv[i]
        inn = [vid[j] for j in self._up[i] if lv[j] == li and vid[j] < v]
        for bucket in self._down[i].values():
            inn.extend(vid[j] for j in bucket)
        inn.sort()
        return inn

    # ------------------------------------------------------------------
    # Structure-level edge insertion/deletion
    # ------------------------------------------------------------------

    def _link_slots(self, i: int, j: int) -> None:
        self._pool_adj_dirty = True
        lv = self._lv
        li = lv[i]
        lj = lv[j]
        if lj >= li:
            self._up[i].add(j)
        else:
            down = self._down[i]
            slot = down.get(lj)
            if slot is None:
                down[lj] = {j}
            else:
                slot.add(j)
        if li >= lj:
            self._up[j].add(i)
        else:
            down = self._down[j]
            slot = down.get(li)
            if slot is None:
                down[li] = {i}
            else:
                slot.add(i)
        self._deg[i] += 1
        self._deg[j] += 1

    def _unlink_slots(self, i: int, j: int) -> None:
        self._pool_adj_dirty = True
        lv = self._lv
        li = lv[i]
        lj = lv[j]
        if lj >= li:
            self._up[i].discard(j)
        else:
            down = self._down[i]
            bucket = down[lj]
            bucket.discard(j)
            if not bucket:
                del down[lj]
        if li >= lj:
            self._up[j].discard(i)
        else:
            down = self._down[j]
            bucket = down[li]
            bucket.discard(i)
            if not bucket:
                del down[li]
        self._deg[i] -= 1
        self._deg[j] -= 1

    def _insert_edge_struct(self, u: int, v: int):  # type: ignore[override]
        if u == v:
            raise ValueError("self-loops are not allowed")
        # Duplicate check inlined on the slots so the lookups are shared
        # with the link step (the record engine resolves each endpoint
        # twice: once in has_edge, once in _record).
        slot_of = self._slot_of
        i = slot_of.get(u)
        j = slot_of.get(v)
        if i is not None and j is not None:
            lv = self._lv
            present = (
                j in self._up[i]
                if lv[j] >= lv[i]
                else j in self._down[i].get(lv[j], ())
            )
            if present:
                raise ValueError(f"duplicate edge ({u},{v})")
        if i is None:
            i = self._slot(u)
        if j is None:
            j = self._slot(v)
        self._link_slots(i, j)
        self._m += 1
        return i, j

    def _delete_edge_struct(self, u: int, v: int) -> None:
        # Presence check inlined on the slots (cf. _insert_edge_struct).
        slot_of = self._slot_of
        i = slot_of.get(u)
        j = slot_of.get(v)
        present = False
        if i is not None and j is not None:
            lv = self._lv
            present = (
                j in self._up[i]
                if lv[j] >= lv[i]
                else j in self._down[i].get(lv[j], ())
            )
        if not present:
            raise ValueError(f"edge ({u},{v}) not present")
        self._unlink_slots(i, j)
        self._m -= 1

    def _validate_batch(self, batch: Batch) -> None:
        """Flat edition of :meth:`PLDS._validate_batch`.

        Same checks, same error messages, same ``(max(1,|batch|), 5)``
        charge; the per-edge presence probes run on hoisted slot
        structures instead of bound ``has_edge`` calls.
        """
        self.tracker.add(work=max(1, len(batch)), depth=5)
        slot_get = self._slot_of.get
        lv = self._lv
        ups = self._up
        downs = self._down
        ins = set()
        for u, v in batch.insertions:
            if u == v:
                raise ValueError(f"self-loop ({u},{v}) in batch")
            e = canonical_edge(u, v)
            if e in ins:
                raise ValueError(f"duplicate insertion {e} in batch")
            i = slot_get(e[0])
            j = slot_get(e[1])
            if i is not None and j is not None:
                present = (
                    j in ups[i]
                    if lv[j] >= lv[i]
                    else j in downs[i].get(lv[j], ())
                )
                if present:
                    raise ValueError(f"insertion of existing edge {e}")
            ins.add(e)
        dels = set()
        for u, v in batch.deletions:
            e = canonical_edge(u, v)
            if e in dels:
                raise ValueError(f"duplicate deletion {e} in batch")
            if e in ins:
                raise ValueError(f"edge {e} both inserted and deleted in batch")
            i = slot_get(e[0])
            j = slot_get(e[1])
            present = False
            if i is not None and j is not None:
                present = (
                    j in ups[i]
                    if lv[j] >= lv[i]
                    else j in downs[i].get(lv[j], ())
                )
            if not present:
                raise ValueError(f"deletion of missing edge {e}")
            dels.add(e)

    # ------------------------------------------------------------------
    # Algorithm 2: RebalanceInsertions (flat)
    # ------------------------------------------------------------------

    def _rebalance_insertions(
        self, insertions: list[tuple[int, int]], moved: set[int]
    ) -> None:
        tracker = self.tracker
        slot_of = self._slot_of
        lv = self._lv
        dirty: dict[int, list[int]] = {}
        tracker.add(work=2 * len(insertions), depth=self._mut_depth)
        # Levels are static while edges link in, so the dirty buckets
        # can be seeded in bulk: collect endpoints per level, then one
        # sorted-unique build per level (vs two bisect-insorts per edge).
        seed: dict[int, list[int]] = {}
        for u, v in insertions:
            i, j = self._insert_edge_struct(u, v)
            lst = seed.get(lv[i])
            if lst is None:
                seed[lv[i]] = [u]
            else:
                lst.append(u)
            lst = seed.get(lv[j])
            if lst is None:
                seed[lv[j]] = [v]
            else:
                lst.append(v)
        for level, seeded in seed.items():
            dirty[level] = sorted(set(seeded))
        vid = self._vid
        ups = self._up
        downs = self._down

        bounds = self._inv1_bound_int
        jump = self.insertion_strategy == "jump"

        #: (level, id) marks buffered during a rise round; merged into
        #: ``dirty`` after the round's flat_parfor (levels of marked
        #: vertices are static within a round, so deferring is exact).
        rise_marks: list[tuple[int, int]] = []
        rise_marks_append = rise_marks.append

        def rise(v: int) -> None:
            # Jump strategy only; the levelwise path is inlined below.
            i = slot_of[v]
            newly_marked = self._move_up_to_slot(i, self._up_desire_slot(i))
            moved.add(v)
            if len(ups[i]) > bounds[lv[i]]:
                newly_marked.append(i)
            for j in newly_marked:
                rise_marks_append((lv[j], vid[j]))

        pool_track = self._pool_track
        if jump and pool_track:
            # A pool-capable backend ships this desire scan to worker
            # processes over the resident image; the inline body is the
            # fallback and the semantics/charge reference.
            from ..parallel.pool import attach_rise_task

            attach_rise_task(self, rise, moved, rise_marks)

        track = self.track_orientation
        touched = self._touched
        mut_depth = self._mut_depth
        fault_plan = _faults.ACTIVE
        tracer = _tracing.ACTIVE
        mreg = _metrics.ACTIVE

        while dirty:
            if fault_plan is not None:
                fault_plan.hit("plds.rise")
            level = min(dirty)
            candidates = dirty.pop(level)
            span = (
                tracer.begin(
                    "plds.rise", tracker, level=level, queue=len(candidates)
                )
                if tracer is not None
                else None
            )
            if mreg is not None:
                mreg.inc("plds.rise_levels")
                mreg.observe("plds.cascade_queue", len(candidates), phase="rise")
            tracker.add(work=1, depth=1)  # the level-loop iteration itself
            bound = bounds[level]
            if jump:
                movers = [
                    v
                    for v in candidates
                    if lv[(i := slot_of[v])] == level and len(ups[i]) > bound
                ]
                if not movers:
                    if span is not None:
                        tracer.end(span)
                    continue
                if __debug__:
                    assert _is_sorted_unique(movers)
                tracker.flat_parfor(movers, rise)
                if pool_track:
                    self._pool_note_ids(movers)
                if rise_marks:
                    _merge_marks(dirty, rise_marks)
                if span is not None:
                    span.attrs["movers"] = len(movers)
                    tracer.end(span)
                continue
            # Levelwise fast path, flat edition: the record loop operating
            # on slots.  Each mover's U-set is classified in one pass over
            # dense level-vector reads; charges are identical to the
            # record path (sum of captured |U[v]| over movers, one
            # mut_depth — see plds.py for the order-invariance argument;
            # ascending-id order is the same canonical order both engines
            # use).
            target = level + 1
            bound_t = bounds[target]
            crossing = bound_t + 1
            total_work = 0
            marked_next: list[int] = []
            marked_append = marked_next.append
            moved_add = moved.add
            if track:
                for v in candidates:
                    i = slot_of[v]
                    if lv[i] != level:
                        continue
                    up_i = ups[i]
                    if len(up_i) <= bound:
                        continue
                    moved_add(v)
                    total_work += len(up_i)
                    stay = None
                    for j in up_i:
                        lw = lv[j]
                        if lw == level:
                            # w stays below v; v remains in U[w].
                            if stay is None:
                                stay = [j]
                            else:
                                stay.append(j)
                            w = vid[j]
                            touched.add((v, w) if v <= w else (w, v))
                        else:
                            jdown = downs[j]
                            bucket = jdown[level]
                            bucket.discard(i)
                            if not bucket:
                                del jdown[level]
                            if lw == target:
                                jup = ups[j]
                                jup.add(i)
                                if len(jup) == crossing:
                                    marked_append(vid[j])
                                w = vid[j]
                                touched.add((v, w) if v <= w else (w, v))
                            else:  # lw > target: j's L-structure shifts.
                                slot = jdown.get(target)
                                if slot is None:
                                    jdown[target] = {i}
                                else:
                                    slot.add(i)
                    if stay is not None:
                        up_i.difference_update(stay)
                        down = downs[i]
                        slot = down.get(level)
                        if slot is None:
                            down[level] = set(stay)
                        else:
                            slot.update(stay)
                    lv[i] = target
                    if len(up_i) > bound_t:
                        marked_append(v)
            else:
                # Same loop, minus orientation bookkeeping (the default).
                for v in candidates:
                    i = slot_of[v]
                    if lv[i] != level:
                        continue
                    up_i = ups[i]
                    if len(up_i) <= bound:
                        continue
                    moved_add(v)
                    total_work += len(up_i)
                    stay = None
                    for j in up_i:
                        lw = lv[j]
                        if lw == level:
                            # w stays below v; v remains in U[w].
                            if stay is None:
                                stay = [j]
                            else:
                                stay.append(j)
                        else:
                            jdown = downs[j]
                            bucket = jdown[level]
                            bucket.discard(i)
                            if not bucket:
                                del jdown[level]
                            if lw == target:
                                jup = ups[j]
                                jup.add(i)
                                if len(jup) == crossing:
                                    marked_append(vid[j])
                            else:  # lw > target: j's L-structure shifts.
                                slot = jdown.get(target)
                                if slot is None:
                                    jdown[target] = {i}
                                else:
                                    slot.add(i)
                    if stay is not None:
                        up_i.difference_update(stay)
                        down = downs[i]
                        slot = down.get(level)
                        if slot is None:
                            down[level] = set(stay)
                        else:
                            slot.update(stay)
                    lv[i] = target
                    if len(up_i) > bound_t:
                        marked_append(v)
            if not total_work:
                if span is not None:
                    tracer.end(span)
                continue  # no mover survived the filter at this level
            tracker.add(total_work, mut_depth)
            if pool_track:
                # Candidates over-approximate the movers; flushed bytes
                # are read fresh, so the slack is only a few range
                # bytes.
                self._pool_note_ids(candidates)
            if marked_next:
                bucket = dirty.get(target)
                if bucket is None:
                    marked_next.sort()
                    dirty[target] = marked_next
                else:
                    # Same contents a per-item _mark loop yields: the
                    # insort path dedupes against the bucket and itself.
                    dirty[target] = sorted(set(marked_next).union(bucket))
            if span is not None:
                tracer.end(span)

    def _move_up_to_slot(self, i: int, target: int) -> list[int]:
        """Slot edition of :meth:`PLDS._move_up_to`; identical charges."""
        self.tracker.add(work=max(1, len(self._up[i])), depth=self._mut_depth)
        return self._move_up_raw(i, target)

    def _move_up_raw(self, i: int, target: int) -> list[int]:
        """The move itself, uncharged — the pool backend's rise task
        folds the charge from its dispatch totals instead."""
        lv = self._lv
        old = lv[i]
        if target <= old:
            raise AssertionError("move_up_to requires a strictly higher level")
        ups = self._up
        downs = self._down
        up_i = ups[i]
        track = self.track_orientation
        touched = self._touched
        vid = self._vid
        v = vid[i]
        bounds = self._inv1_bound_int

        to_down: list[tuple[int, int]] = []
        newly_marked: list[int] = []
        for j in up_i:
            lw = lv[j]
            if lw == old:
                to_down.append((j, lw))
                if track:
                    w = vid[j]
                    touched.add((v, w) if v <= w else (w, v))
            elif lw <= target:
                # old < lw <= target: v rises into U[j].
                jdown = downs[j]
                bucket = jdown[old]
                bucket.discard(i)
                if not bucket:
                    del jdown[old]
                jup = ups[j]
                jup.add(i)
                if len(jup) > bounds[lw]:
                    newly_marked.append(j)
                if lw < target:
                    to_down.append((j, lw))
                if track:
                    w = vid[j]
                    touched.add((v, w) if v <= w else (w, v))
            else:  # lw > target: only j's L-structure shifts.
                jdown = downs[j]
                bucket = jdown[old]
                bucket.discard(i)
                if not bucket:
                    del jdown[old]
                slot = jdown.get(target)
                if slot is None:
                    jdown[target] = {i}
                else:
                    slot.add(i)
        down = downs[i]
        for j, lw in to_down:
            up_i.discard(j)
            slot = down.get(lw)
            if slot is None:
                down[lw] = {j}
            else:
                slot.add(j)
        lv[i] = target
        return newly_marked

    def _up_desire_slot(self, i: int) -> int:
        """Slot edition of :meth:`PLDS._up_desire_level`; same charges."""
        target, work = self._up_desire_calc(i)
        self.tracker.add(work=work, depth=self._levels_depth)
        return target

    def _up_desire_calc(self, i: int) -> tuple[int, int]:
        """The desire walk itself, uncharged: ``(target, work)``.

        Shared between the inline charge wrapper above and the pool
        rise task's conflict re-evaluation, which must reproduce the
        walk (and its work amount) without double-charging the
        tracker."""
        lv = self._lv
        old = lv[i]
        up_i = self._up[i]
        counts: dict[int, int] = {}
        for j in up_i:
            lw = lv[j]
            counts[lw] = counts.get(lw, 0) + 1
        cnt = len(up_i)
        bounds = self._inv1_bound_int
        counts_get = counts.get
        j = old
        while True:
            j += 1
            dropped = counts_get(j - 1)
            if dropped:
                cnt -= dropped
            if cnt <= bounds[j]:
                break
        return j, max(1, len(up_i) + (j - old))

    # ------------------------------------------------------------------
    # Algorithm 3: RebalanceDeletions (flat)
    # ------------------------------------------------------------------

    def _rebalance_deletions(
        self, deletions: list[tuple[int, int]], moved: set[int]
    ) -> None:
        tracker = self.tracker
        tracker.add(work=2 * len(deletions), depth=self._mut_depth)
        affected: set[int] = set()
        for u, v in deletions:
            self._delete_edge_struct(u, v)
            affected.add(u)
            affected.add(v)

        slot_of = self._slot_of
        lv = self._lv
        ups = self._up
        downs = self._down
        thresholds = self._inv2_thresh_int
        #: slot -> desire level, -1 = unset (the dense scratch that
        #: replaces the record engine's desire dict).
        desire = [-1] * self._n
        pending: dict[int, list[int]] = {}
        tracker_add = tracker.add
        levels_depth = self._levels_depth
        #: (level, id) marks buffered during a scan/descend round and
        #: bulk-merged into ``pending`` after the round's flat_parfor —
        #: nothing reads ``pending`` mid-round, so deferring is exact.
        mark_buf: list[tuple[int, int]] = []
        mark_buf_append = mark_buf.append

        def consider(w: int) -> None:
            i = slot_of[w]
            lvl = lv[i]
            if lvl == 0:
                return
            down_get = downs[i].get
            below = down_get(lvl - 1)
            up_star = len(ups[i]) + (len(below) if below else 0)
            if up_star < thresholds[lvl]:
                # _desire_slot inlined, resuming after its first scan
                # iteration: that iteration accumulates exactly up_star
                # and can never break (up_star < thresholds[lvl] holds
                # here), so start at lvl-1 with scanned already 2.  The
                # (work, depth) charge is identical to the record path's
                # _calculate_desire_level.
                cnt = up_star
                scanned = 2
                best = 0
                for lprime in range(lvl - 1, 0, -1):
                    bucket = down_get(lprime - 1)
                    if bucket:
                        cnt += len(bucket)
                    if cnt >= thresholds[lprime]:
                        best = lprime
                        scanned += 1
                        break
                    scanned += 1
                tracker_add(scanned, levels_depth)
                desire[i] = best
                mark_buf_append((best, w))

        scan_order = sorted(affected)
        if getattr(tracker, "pool_tasks", False):
            # A pool-capable backend ships this read-only scan to worker
            # processes over the shared level array; the inline body is
            # the fallback and the semantics/charge reference.
            from ..parallel.pool import attach_consider_task

            attach_consider_task(self, consider, desire, pending)
        tracker.flat_parfor(scan_order, consider)
        if mark_buf:
            _merge_marks(pending, mark_buf)

        fault_plan = _faults.ACTIVE
        tracer = _tracing.ACTIVE
        mreg = _metrics.ACTIVE
        while pending:
            if fault_plan is not None:
                fault_plan.hit("plds.desaturate")
            level = min(pending)
            bucket = pending.pop(level)
            span = (
                tracer.begin(
                    "plds.desaturate", tracker, level=level, queue=len(bucket)
                )
                if tracer is not None
                else None
            )
            if mreg is not None:
                mreg.inc("plds.desaturate_levels")
                mreg.observe(
                    "plds.cascade_queue", len(bucket), phase="desaturate"
                )
            movers = [
                v
                for v in bucket
                if desire[(i := slot_of[v])] == level and lv[i] > level
            ]
            tracker.add(work=1, depth=1)
            if not movers:
                if span is not None:
                    tracer.end(span)
                continue

            def descend(v: int, level: int = level) -> None:
                i = slot_of[v]
                fresh = self._desire_slot(i)
                if fresh != level:
                    if fresh < lv[i]:
                        desire[i] = fresh
                        mark_buf_append((fresh, v))
                    else:
                        desire[i] = -1
                    return
                weakened = self._move_down_slot(i, level)
                moved.add(v)
                desire[i] = -1
                vid = self._vid
                for j in weakened:
                    w = vid[j]
                    if desire[j] != -1:
                        # stale pending entry is skipped lazily
                        desire[j] = -1
                    consider(w)

            if __debug__:
                assert _is_sorted_unique(movers)
            tracker.flat_parfor(movers, descend)
            if self._pool_track:
                self._pool_note_ids(movers)
            if mark_buf:
                _merge_marks(pending, mark_buf)
            if span is not None:
                span.attrs["movers"] = len(movers)
                tracer.end(span)

    def _move_down_slot(self, i: int, new_level: int) -> list[int]:
        """Slot edition of :meth:`PLDS._move_down`; identical charges."""
        lv = self._lv
        old = lv[i]
        if new_level >= old:
            raise AssertionError("move_down requires a strictly lower level")
        tracker = self.tracker
        track = self.track_orientation
        touched = self._touched
        ups = self._up
        downs = self._down
        vid = self._vid
        v = vid[i]
        up_i = ups[i]
        weakened: list[int] = []
        ops = len(up_i)

        # Neighbors formerly above or at v's old level.
        for j in up_i:
            lw = lv[j]
            jdown = downs[j]
            if lw == old:
                ups[j].discard(i)
            else:  # lw > old
                bucket = jdown[old]
                bucket.discard(i)
                if not bucket:
                    del jdown[old]
            slot = jdown.get(new_level)
            if slot is None:
                jdown[new_level] = {i}
            else:
                slot.add(i)
            # v left Z_{lw-1} iff new_level < lw - 1 <= old.
            if new_level < lw - 1 <= old:
                weakened.append(j)
            if track and lw <= old:
                w = vid[j]
                touched.add((v, w) if v <= w else (w, v))

        # Neighbors between new_level and old-1 move from L_v into U[v].
        down = downs[i]
        up_add = up_i.add
        for lvl in range(new_level, old):
            bucket = down.pop(lvl, None)
            if not bucket:
                continue
            ops += len(bucket)
            for j in bucket:
                up_add(j)
                lw = lv[j]
                if new_level < lw:
                    ups[j].discard(i)
                    jdown = downs[j]
                    slot = jdown.get(new_level)
                    if slot is None:
                        jdown[new_level] = {i}
                    else:
                        slot.add(i)
                    if new_level < lw - 1 <= old:
                        weakened.append(j)
                if track:
                    w = vid[j]
                    touched.add((v, w) if v <= w else (w, v))

        lv[i] = new_level
        tracker.add(work=max(1, ops), depth=self._mut_depth)
        return weakened

    def _desire_slot(self, i: int) -> int:
        """Slot edition of :meth:`PLDS._calculate_desire_level`."""
        lvl = self._lv[i]
        cnt = len(self._up[i])
        scanned = 1
        best = 0
        down_get = self._down[i].get
        thresholds = self._inv2_thresh_int
        for lprime in range(lvl, 0, -1):
            bucket = down_get(lprime - 1)
            if bucket:
                cnt += len(bucket)
            scanned += 1
            if cnt >= thresholds[lprime]:
                best = lprime
                break
        self.tracker.add(work=scanned, depth=self._levels_depth)
        return best

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def level_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for lvl in self._lv:
            hist[lvl] = hist.get(lvl, 0) + 1
        return hist

    def group_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for lvl in self._lv:
            g = self.group_number(lvl)
            hist[g] = hist.get(g, 0) + 1
        return hist

    def stats(self) -> dict[str, float]:
        levels = self._lv
        return {
            "num_vertices": float(self._n),
            "num_edges": float(self._m),
            "num_levels": float(self.num_levels),
            "levels_per_group": float(self.levels_per_group),
            "max_level_in_use": float(max(levels, default=0)),
            "mean_level": (sum(levels) / len(levels)) if levels else 0.0,
            "work": float(self.tracker.work),
            "depth": float(self.tracker.depth),
            "space_bytes": float(self.space_bytes()),
        }

    def check_invariants(self) -> list[str]:
        problems: list[str] = []
        lv = self._lv
        vid = self._vid
        for i in range(self._n):
            v = vid[i]
            lvl = lv[i]
            up_i = self._up[i]
            down_i = self._down[i]
            actual_deg = len(up_i) + sum(len(s) for s in down_i.values())
            if self._deg[i] != actual_deg:
                problems.append(
                    f"cached degree of v={v} is {self._deg[i]}, "
                    f"structures hold {actual_deg}"
                )
            if len(up_i) > self.inv1_bound(lvl):
                problems.append(
                    f"Invariant 1 violated at v={v}: up={len(up_i)} > "
                    f"{self.inv1_bound(lvl):.2f} (level {lvl})"
                )
            if lvl > 0 and self._deg[i] > 0:
                up_star = len(up_i) + len(down_i.get(lvl - 1, ()))
                if up_star < self.inv2_threshold(lvl):
                    problems.append(
                        f"Invariant 2 violated at v={v}: up*={up_star} < "
                        f"{self.inv2_threshold(lvl):.2f} (level {lvl})"
                    )
            for j in up_i:
                if lv[j] < lvl:
                    problems.append(f"U[{v}] holds {vid[j]} below level {lvl}")
            for lj, bucket in down_i.items():
                if lj >= lvl:
                    problems.append(f"L_{v}[{lj}] exists at/above level {lvl}")
                for j in bucket:
                    if lv[j] != lj:
                        problems.append(
                            f"L_{v}[{lj}] holds {vid[j]} at level {lv[j]}"
                        )
        return problems

    def space_bytes(self) -> int:
        """Byte count of the flat layout (cf. :meth:`PLDS.space_bytes`).

        The dense level and desire vectors cost one pointer-sized list
        slot per vertex (CPython interns the small level ints, so the
        entries alias shared objects) instead of a boxed-int attribute
        per record; the int32 IPC image (:meth:`_level_bytes`) adds 4
        bytes per vertex while a pool dispatch is in flight.  Adjacency
        entries are counted at the same 8-byte granularity the record
        engine uses, plus 16 bytes per non-empty down bucket.  See
        docs/cost_model.md ("Flat-layout memory model").
        """
        total = 8 * self._n  # level vector
        total += 8 * self._n  # desire scratch (allocated per deletion phase)
        total += 12 * self._n  # slot map entry + reverse id entry
        for i in range(self._n):
            total += 8 * len(self._up[i])
            total += sum(16 + 8 * len(s) for s in self._down[i].values())
        total += 24 * len(self._orient)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PLDSFlat(n={self._n}, m={self._m}, K={self.num_levels}, "
            f"delta={self.delta}, lam={self.lam}, shrink={self.group_shrink})"
        )
