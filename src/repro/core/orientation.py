"""Low out-degree orientation helpers (Section 5.7, Corollary 3.3).

The orientation itself is maintained inside :class:`~repro.core.plds.PLDS`
(edges point from lower to higher levels, ties toward the larger index —
``PLDS.orientation_of`` / ``PLDS.out_neighbors``).  This module provides
the verification and measurement utilities used by tests and benchmarks:
acyclicity, maximum out-degree, and the degeneracy yardstick the
``O(α)``-out-degree guarantee is measured against.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "is_acyclic_orientation",
    "max_out_degree",
    "out_degrees",
    "degeneracy",
]


def out_degrees(directed_edges: Iterable[tuple[int, int]]) -> dict[int, int]:
    """Out-degree of every vertex appearing in the directed edge list."""
    deg: dict[int, int] = {}
    for u, v in directed_edges:
        deg[u] = deg.get(u, 0) + 1
        deg.setdefault(v, 0)
    return deg


def max_out_degree(directed_edges: Iterable[tuple[int, int]]) -> int:
    return max(out_degrees(directed_edges).values(), default=0)


def is_acyclic_orientation(directed_edges: Iterable[tuple[int, int]]) -> bool:
    """True iff the directed graph has no directed cycle (Kahn's algorithm)."""
    adj: dict[int, list[int]] = {}
    indeg: dict[int, int] = {}
    for u, v in directed_edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, [])
        indeg[v] = indeg.get(v, 0) + 1
        indeg.setdefault(u, 0)
    stack = [v for v, d in indeg.items() if d == 0]
    seen = 0
    while stack:
        u = stack.pop()
        seen += 1
        for w in adj[u]:
            indeg[w] -= 1
            if indeg[w] == 0:
                stack.append(w)
    return seen == len(adj)


def degeneracy(edges: Iterable[tuple[int, int]]) -> int:
    """Degeneracy d of the undirected graph (== max core number).

    Computed by min-degree peeling.  The arboricity α satisfies
    ``d/2 <= α <= d`` (paper footnote 1), so ``d`` is the yardstick for the
    ``O(α)``-out-degree guarantee.
    """
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    if not adj:
        return 0
    # Bucket queue peeling: O(n + m).
    deg = {v: len(nbrs) for v, nbrs in adj.items()}
    maxdeg = max(deg.values())
    buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
    for v, d in deg.items():
        buckets[d].add(v)
    removed: set[int] = set()
    d_val = 0
    cur = 0
    for _ in range(len(adj)):
        while cur <= maxdeg and not buckets[cur]:
            cur += 1
        v = buckets[cur].pop()
        removed.add(v)
        d_val = max(d_val, cur)
        for w in adj[v]:
            if w in removed:
                continue
            buckets[deg[w]].discard(w)
            deg[w] -= 1
            buckets[deg[w]].add(w)
            cur = min(cur, deg[w])
    return d_val
