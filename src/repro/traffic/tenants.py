"""Multi-tenant traffic modeling: who sends what, when, and how skewed.

A :class:`TenantSpec` describes one tenant's traffic shape — arrival
process, read/write mix, hot-key skew, and which registered workload
(:func:`repro.registry.make_workload`) generates its update stream.  A
:class:`TrafficMix` is the set of tenants a soak run interleaves onto
one shared :class:`~repro.service.CoreService`.

Everything is driven by seeded :class:`random.Random` streams keyed on
``(seed, tenant name)``, and all clocks are *simulated* seconds (the
``T_p`` currency of :class:`~repro.parallel.scheduler.BrentScheduler`),
so a mix replays bit-identically: same seed, same arrivals, same keys.

Arrival processes
-----------------
``poisson``
    Memoryless arrivals at ``rate`` requests per simulated second.
``bursty``
    A square-wave modulated Poisson process: during the first
    ``duty_cycle`` fraction of every ``period`` the instantaneous rate
    is ``rate * burst_factor``; off-phase it drops to ``rate / 4``.
    This is the open-loop stampede that exercises shedding.
``diurnal``
    Sinusoidal modulation with period ``period`` — a slow tide between
    roughly 0.05x and 2x the base rate, modeling day/night cycles.

Hot-key skew
------------
Read keys are drawn from the tenant's own vertex range with a
power-law-ish transform: ``index = floor(span * u**(1 + hot_key_skew))``
for uniform ``u`` — ``hot_key_skew = 0`` is uniform, larger values
concentrate reads on a small hot head, stressing any per-key path.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..registry import workload_keys
from ..service.admission import TenantQuota

__all__ = [
    "ARRIVALS",
    "TenantSpec",
    "TrafficMix",
    "default_mix",
    "next_arrival_gap",
    "pick_read_vertex",
]

#: Supported arrival process names, in documentation order.
ARRIVALS: tuple[str, ...] = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape (see module docstring for semantics)."""

    name: str
    rate: float = 0.05
    read_fraction: float = 0.5
    arrival: str = "poisson"
    burst_factor: float = 6.0
    period: float = 400.0
    duty_cycle: float = 0.25
    hot_key_skew: float = 1.0
    workload: str = "churn"
    workload_size: int = 40
    workload_rounds: int = 64
    batch_size: int = 8
    quota: TenantQuota | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate <= 0:
            raise ValueError("tenant rate must be > 0")
        if not (0 <= self.read_fraction <= 1):
            raise ValueError("read_fraction must be in [0, 1]")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; choose from {ARRIVALS}"
            )
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if self.period <= 0:
            raise ValueError("period must be > 0")
        if not (0 < self.duty_cycle < 1):
            raise ValueError("duty_cycle must be in (0, 1)")
        if self.hot_key_skew < 0:
            raise ValueError("hot_key_skew must be >= 0")
        if self.workload not in workload_keys():
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from {workload_keys()}"
            )
        if self.workload_size < 1 or self.workload_rounds < 1:
            raise ValueError("workload_size and workload_rounds must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "rate": self.rate,
            "read_fraction": self.read_fraction,
            "arrival": self.arrival,
            "burst_factor": self.burst_factor,
            "period": self.period,
            "duty_cycle": self.duty_cycle,
            "hot_key_skew": self.hot_key_skew,
            "workload": self.workload,
            "workload_size": self.workload_size,
            "workload_rounds": self.workload_rounds,
            "batch_size": self.batch_size,
            "quota": (
                None
                if self.quota is None
                else {"rate": self.quota.rate, "burst": self.quota.burst}
            ),
        }


@dataclass(frozen=True)
class TrafficMix:
    """The tenant set one soak run interleaves onto a shared service."""

    tenants: tuple[TenantSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a traffic mix needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in mix: {names}")

    def to_json_dict(self) -> dict:
        return {"tenants": [t.to_json_dict() for t in self.tenants]}


def next_arrival_gap(spec: TenantSpec, rng: random.Random, now: float) -> float:
    """Seeded gap to the tenant's next request arrival, from ``now``.

    The modulated processes sample the instantaneous rate at ``now``
    and draw an exponential gap from it — a standard (and deterministic)
    approximation that slightly smears phase boundaries.
    """
    rate = spec.rate
    if spec.arrival == "bursty":
        phase = (now % spec.period) / spec.period
        rate = rate * spec.burst_factor if phase < spec.duty_cycle else rate / 4.0
    elif spec.arrival == "diurnal":
        wave = (1.0 + math.sin(2.0 * math.pi * now / spec.period)) / 2.0
        rate = rate * max(0.05, 2.0 * wave)
    return rng.expovariate(rate)


def pick_read_vertex(spec: TenantSpec, rng: random.Random, span: int) -> int:
    """A hot-key-skewed vertex index in ``[0, span)`` (tenant-local)."""
    if span <= 1:
        return 0
    u = rng.random()
    return min(span - 1, int(span * u ** (1.0 + spec.hot_key_skew)))


def default_mix(
    n_tenants: int,
    *,
    rate: float = 0.05,
    workload_size: int = 40,
    workload_rounds: int = 64,
    quota: TenantQuota | None = None,
) -> TrafficMix:
    """A representative mix: bursty writer, read-heavy, diurnal, adversarial.

    Templates cycle, so any ``n_tenants >= 1`` gets a diverse blend; the
    first two tenants (a bursty write-heavy one and a steady read-heavy
    one) are the canonical overload pair the acceptance gate soaks.
    """
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    templates: tuple[dict, ...] = (
        {"arrival": "bursty", "read_fraction": 0.35, "workload": "churn",
         "hot_key_skew": 1.5},
        {"arrival": "poisson", "read_fraction": 0.8, "workload": "churn",
         "hot_key_skew": 0.5},
        {"arrival": "diurnal", "read_fraction": 0.5, "workload": "cycle"},
        {"arrival": "poisson", "read_fraction": 0.2, "workload": "star"},
    )
    tenants = tuple(
        TenantSpec(
            name=f"tenant{i}",
            rate=rate,
            workload_size=workload_size,
            workload_rounds=workload_rounds,
            quota=quota,
            **templates[i % len(templates)],
        )
        for i in range(n_tenants)
    )
    return TrafficMix(tenants=tenants)
