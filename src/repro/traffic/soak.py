"""Chaos-armed soak harness: sustained multi-tenant load on one service.

:class:`SoakRunner` is a deterministic discrete-event simulation that
drives a single admission-controlled
:class:`~repro.service.CoreService` with a :class:`TrafficMix` for a
fixed *simulated* horizon:

- Each tenant's arrivals (Poisson / bursty / diurnal, seeded) pop off a
  shared event heap; each event is a read or a write per the tenant's
  ``read_fraction``.
- Writes take the next batch of the tenant's registered workload script
  (:func:`repro.registry.make_workload`, vertex ids offset into a
  tenant-private range so the interleaved scripts stay valid on the
  shared graph) and go through :meth:`CoreService.submit` — so every
  write is an explicit ``admitted`` / ``rejected`` / ``shed`` decision.
  Rejected and shed writes are *retried* by the tenant at the decision's
  ``retry_after`` hint (an open-loop client with backoff); the batch is
  consumed only once admitted, which keeps the script's edge validity.
- Admitted writes occupy a single simulated server: completion =
  ``max(arrival, server_free) + t_p`` with ``t_p`` from the batch's own
  :class:`~repro.service.BatchTelemetry`, and the backlog of unfinished
  completions is the ``queue_depth`` the admission controller bounds.
  Latency (completion − arrival) is therefore pure simulated time — the
  per-tenant p50/p99 in the artifact are bit-reproducible.
- Reads are wait-free through one :meth:`CoreService.reader` handle
  (hot-key-skewed key choice), each recording its served staleness.
- Chaos: a persistent fault plan stays installed for the whole run.
  With ``fault_rate > 0`` the runner keeps arming fresh single-crash
  :class:`~repro.faults.FaultPoint`\\ s (one in flight at a time) at
  sites the run actually traverses; a configured :class:`StallWindow`
  arms a :class:`~repro.faults.StallPoint` slow-shard/slow-apply stall
  between two simulated times — the backpressure trigger.
- With ``verify_reads`` (default) the plan is a sampling
  :class:`~repro.bench.chaos.ReadProbePlan`: wait-free reads taken at
  faultpoint traversals — i.e. mid-cascade, mid-rollback — are checked
  against the committed-prefix reference maps at the end of the run
  (zero tolerated violations, staleness ≤ 1), extending the chaos
  harness's linearizability argument to sustained load.

The output is a JSON SLO artifact (``SOAK_<label>.json``) in the
``BENCH_*.json`` style: per-tenant admission accounting (every
rejection accounted), latency percentiles, read staleness, degraded and
backpressure time, fault/stall tallies, and the consistency block.  It
contains *no wall-clock values*, so rerunning the same config + seed
reproduces it bit-identically.
"""

from __future__ import annotations

import heapq
import math
import random
from contextlib import ExitStack
from dataclasses import dataclass

from .. import faults as _faults
from ..bench.chaos import ReadProbePlan, probe_consistent
from ..obs import metrics as _metrics
from ..obs import timeline as _timeline
from ..graphs.streams import Batch
from ..service import CoreService
from ..registry import make_workload
from ..service.admission import AdmissionController, AdmissionPolicy, TenantQuota
from .tenants import TenantSpec, TrafficMix, next_arrival_gap, pick_read_vertex

__all__ = ["StallWindow", "SoakConfig", "SoakRunner"]


@dataclass(frozen=True)
class StallWindow:
    """Inject a slow shard (or slow apply) between two simulated times.

    ``site=None`` auto-selects ``shard.apply`` for sharded runs (strided
    so roughly one shard per scatter stalls — see
    :class:`~repro.faults.StallPoint.every`) and ``service.apply``
    otherwise.
    """

    start: float
    end: float
    depth: int = 4000
    site: str | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("stall window needs 0 <= start < end")
        if self.depth < 1:
            raise ValueError("stall depth must be >= 1")

    def to_json_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "site": self.site,
        }


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak run needs; hashable inputs ⇒ replayable output."""

    mix: TrafficMix
    horizon: float = 600.0
    seed: int = 0
    algorithm: str = "pldsopt"
    shards: int | None = None
    threads: int = 60
    fault_rate: float = 0.0
    stall: StallWindow | None = None
    policy: AdmissionPolicy | None = None
    default_quota: TenantQuota | None = None
    verify_reads: bool = True
    probe_every: int = 7
    read_latency: float = 1.0
    sample_every: float = 25.0
    label: str = "soak"

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")
        if not (0 <= self.fault_rate < 1):
            raise ValueError("fault_rate must be in [0, 1)")
        if self.probe_every < 1:
            raise ValueError("probe_every must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables)")


class _SoakProbePlan(ReadProbePlan):
    """A :class:`ReadProbePlan` that records every Nth probe only.

    A soak run traverses faultpoints tens of thousands of times; probing
    each would dominate the run.  Sampling every ``probe_every``-th
    traversal keeps the linearizability check dense (hundreds to
    thousands of probes) at bounded cost — the *fault* counters still
    advance on every traversal, so crash arming is unaffected.
    """

    def __init__(self, probe_every: int) -> None:
        super().__init__(())
        self.probe_every = probe_every
        self._traversals = 0

    def hit(self, site: str) -> None:
        self._traversals += 1
        if self._traversals % self.probe_every == 0:
            super().hit(site)  # probe + count (+ fire if armed)
        else:
            _faults.FaultPlan.hit(self, site)


class _TenantState:
    """Mutable per-tenant runtime: script cursor, rng, SLO accumulators."""

    def __init__(
        self, spec: TenantSpec, index: int, seed: int
    ) -> None:
        self.spec = spec
        self.rng = random.Random(seed * 1_000_003 + index)
        initial, batches = make_workload(
            spec.workload,
            spec.workload_size,
            spec.workload_rounds,
            seed=seed * 31 + index,
            batch_size=spec.batch_size,
        )
        self.initial = initial
        self.script = batches
        self.cursor = 0
        span = 0
        for u, v in initial:
            span = max(span, u + 1, v + 1)
        for batch in batches:
            for u, v in batch.insertions + batch.deletions:
                span = max(span, u + 1, v + 1)
        self.span = max(1, span)
        self.offset = 0  # assigned by the runner once all spans are known
        self.failed = False
        self.error: str | None = None
        self.write_latencies: list[float] = []
        self.read_latencies: list[float] = []
        self.max_staleness = 0
        self.counters: dict[str, int] = {
            "write_events": 0,
            "admitted": 0,
            "rejected": 0,
            "shed": 0,
            "retries": 0,
            "abandoned": 0,
            "exhausted": 0,
            "errors": 0,
            "rolled_back": 0,
            "attempts": 0,
            "degraded_batches": 0,
            "read_events": 0,
            "read_admitted": 0,
            "read_rejected": 0,
            "read_degraded": 0,
        }

    def shift(self, edges: list[tuple[int, int]]) -> list[tuple[int, int]]:
        off = self.offset
        return [(u + off, v + off) for u, v in edges]

    def next_batch(self) -> Batch | None:
        if self.cursor >= len(self.script):
            return None
        batch = self.script[self.cursor]
        return Batch(
            insertions=self.shift(batch.insertions),
            deletions=self.shift(batch.deletions),
        )


class SoakRunner:
    """Run one :class:`SoakConfig` to completion (or interruption).

    :meth:`run` executes the event loop and returns the report;
    :meth:`report` can be called at *any* point (the CLI calls it from
    the ``KeyboardInterrupt`` handler to flush a partial artifact with
    ``interrupted: true``).
    """

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.states = [
            _TenantState(spec, i, config.seed)
            for i, spec in enumerate(config.mix.tenants)
        ]
        offset = 0
        for state in self.states:
            state.offset = offset
            offset += state.span
        quotas = {
            s.spec.name: s.spec.quota
            for s in self.states
            if s.spec.quota is not None
        }
        self.controller = AdmissionController(
            policy=config.policy or AdmissionPolicy(),
            quotas=quotas,
            default_quota=config.default_quota,
        )
        # `shards` routes the service through the sharded coordinator
        # (registry key "plds-sharded"); that is what makes the shard-lag
        # backpressure signal live.
        algorithm = "plds-sharded" if config.shards is not None else config.algorithm
        engine_kwargs: dict = {}
        if config.shards is not None:
            engine_kwargs["shards"] = config.shards
        self.svc = CoreService(
            algorithm,
            n_hint=max(64, offset),
            threads=config.threads,
            admission=self.controller,
            **engine_kwargs,
        )
        self.sharded = bool(self.svc.spec.sharded)
        if config.verify_reads:
            self.plan: _faults.FaultPlan = _SoakProbePlan(config.probe_every)
        else:
            self.plan = _faults.FaultPlan()
        # Continuous telemetry: a private registry (unless the caller
        # already installed one) sampled into a Timeline on a simulated
        # grid plus every committed batch — the artifact's `timeline`.
        if config.sample_every > 0:
            self.registry: _metrics.MetricsRegistry | None = (
                _metrics.MetricsRegistry()
            )
            self.timeline: _timeline.Timeline | None = _timeline.Timeline()
        else:
            self.registry = None
            self.timeline = None
        self.reader = self.svc.reader()
        #: committed-prefix reference maps: ``references[k]`` is the
        #: coreness map after the first ``k`` applied batches.
        self.references: list[dict[int, float]] = [{}]
        self._fault_rng = random.Random(config.seed * 7_919 + 13)
        self._fault_sites = ["service.apply", "plds.rise", "plds.desaturate"]
        if self.sharded:
            self._fault_sites.append("shard.apply")
        self._armed_count = 0
        self._stall_point: _faults.StallPoint | None = None
        self._stall_closed = False
        self._backlog: list[float] = []
        self._server_free = 0.0
        self._now = 0.0
        self._events = 0
        self._degraded_prev = False
        self._degraded_since: float | None = None
        self._degraded_time = 0.0
        self._degraded_entered = 0
        self._interrupted = False
        self._finished = False

    # -- the event loop -------------------------------------------------

    def run(self) -> dict:
        """Execute the soak; returns :meth:`report`'s artifact dict."""
        try:
            with ExitStack() as stack:
                if self.timeline is not None:
                    if _metrics.ACTIVE is None and self.registry is not None:
                        stack.enter_context(_metrics.collecting(self.registry))
                    stack.enter_context(_timeline.sampling(self.timeline))
                stack.enter_context(_faults.active(self.plan))
                if self.config.verify_reads:
                    assert isinstance(self.plan, ReadProbePlan)
                    self.plan.bind(self.svc)
                self._setup()
                self._loop()
            self._finished = True
        except KeyboardInterrupt:
            self._interrupted = True
            raise
        return self.report()

    def _setup(self) -> None:
        """Apply each tenant's initial edge set (outside admission)."""
        for state in self.states:
            if not state.initial:
                continue
            self.svc.apply_batch(Batch(insertions=state.shift(state.initial)))
            self._record_reference()

    def _loop(self) -> None:
        config = self.config
        heap: list[tuple[float, int, int, str]] = []
        seq = 0
        for i, state in enumerate(self.states):
            gap = next_arrival_gap(state.spec, state.rng, 0.0)
            if gap <= config.horizon:
                heapq.heappush(heap, (gap, seq, i, "arrival"))
                seq += 1
        tline = self.timeline
        next_sample = config.sample_every
        while heap:
            t, _, i, kind = heapq.heappop(heap)
            if t > config.horizon:
                break
            if tline is not None:
                # Sample on the simulated grid *before* serving the
                # event at t, so each tick captures exactly the state
                # up to its grid time regardless of arrival spacing.
                while next_sample <= t:
                    tline.sample(next_sample, kind="tick")
                    next_sample += config.sample_every
            self._now = t
            self._events += 1
            state = self.states[i]
            if kind == "arrival":
                nxt = t + next_arrival_gap(state.spec, state.rng, t)
                if nxt <= config.horizon:
                    heapq.heappush(heap, (nxt, seq, i, "arrival"))
                    seq += 1
                is_read = state.rng.random() < state.spec.read_fraction
            else:
                is_read = False  # retries are always writes
                state.counters["retries"] += 1
            if is_read:
                self._serve_read(state, t)
            else:
                retry_after = self._serve_write(state, t)
                if retry_after is not None:
                    retry_at = t + retry_after
                    if retry_at <= t:
                        # A hint smaller than float resolution at t must
                        # still advance the clock, or the heap replays
                        # the same instant forever.
                        retry_at = math.nextafter(t, math.inf)
                    if math.isfinite(retry_at) and retry_at <= config.horizon:
                        heapq.heappush(heap, (retry_at, seq, i, "retry"))
                        seq += 1
                    else:
                        state.counters["abandoned"] += 1
        self._close_degraded(self._now)
        if tline is not None:
            tline.sample(round(self._now, 9), kind="end")

    # -- writes ----------------------------------------------------------

    def _serve_write(self, state: _TenantState, t: float) -> float | None:
        """Process one write arrival; returns a retry delay or ``None``."""
        state.counters["write_events"] += 1
        if state.failed:
            state.counters["errors"] += 1
            return None
        batch = state.next_batch()
        if batch is None:
            state.counters["exhausted"] += 1
            return None
        self._update_stall(t)
        self._maybe_arm_fault()
        while self._backlog and self._backlog[0] <= t:
            heapq.heappop(self._backlog)
        depth = len(self._backlog)
        try:
            decision = self.svc.submit(
                batch, tenant=state.spec.name, now=t, queue_depth=depth
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            # An apply that exhausted its retries: the engine rolled back
            # and the journal aborted, so the script head is still valid.
            # Park the tenant after repeated failures instead of looping.
            state.counters["errors"] += 1
            state.error = f"{type(exc).__name__}: {exc}"
            if state.counters["errors"] >= 3:
                state.failed = True
            return None
        if decision.outcome == "rejected":
            state.counters["rejected"] += 1
            return decision.retry_after
        if decision.outcome == "shed":
            state.counters["shed"] += 1
            return decision.retry_after
        state.cursor += 1
        state.counters["admitted"] += 1
        telemetry = decision.telemetry
        assert telemetry is not None
        state.counters["attempts"] += telemetry.attempts
        if telemetry.rolled_back:
            state.counters["rolled_back"] += 1
        if telemetry.degraded or self.svc.degraded:
            state.counters["degraded_batches"] += 1
        start = max(t, self._server_free)
        completion = start + telemetry.t_p
        self._server_free = completion
        heapq.heappush(self._backlog, completion)
        state.write_latencies.append(completion - t)
        self._record_reference()
        self._track_degraded(t)
        return None

    def _record_reference(self) -> None:
        if self.config.verify_reads:
            self.references.append(dict(self.svc.coreness_map()))

    # -- reads -----------------------------------------------------------

    def _serve_read(self, state: _TenantState, t: float) -> None:
        state.counters["read_events"] += 1
        decision = self.svc.admit_read(state.spec.name, now=t)
        if not decision.admitted:
            state.counters["read_rejected"] += 1
            return
        state.counters["read_admitted"] += 1
        wide = state.rng.random() >= 0.9
        vertex = state.offset + pick_read_vertex(state.spec, state.rng, state.span)
        if wide:
            result = self.reader.coreness_map()
            latency = 5.0 * self.config.read_latency
        else:
            result = self.reader.coreness(vertex)
            latency = self.config.read_latency
        state.read_latencies.append(latency)
        if result.staleness > state.max_staleness:
            state.max_staleness = result.staleness
        if result.degraded:
            state.counters["read_degraded"] += 1

    # -- chaos arming ----------------------------------------------------

    def _maybe_arm_fault(self) -> None:
        """Arm one fresh crash point, at most one unfired at a time."""
        if not self.config.fault_rate:
            return
        if self._armed_count > len(self.plan.fired):
            return  # previous injection has not fired yet
        if self._fault_rng.random() >= self.config.fault_rate:
            return
        live = [s for s in self._fault_sites if self.plan.counts[s] > 0]
        site = self._fault_rng.choice(live) if live else "service.apply"
        self.plan.arm(_faults.FaultPoint(site, self.plan.counts[site] + 1))
        self._armed_count += 1

    def _update_stall(self, t: float) -> None:
        window = self.config.stall
        if window is None:
            return
        if self._stall_point is None and window.start <= t < window.end:
            site = window.site or (
                "shard.apply" if self.sharded else "service.apply"
            )
            every = self.svc.engine.num_shards if site == "shard.apply" else 1
            self._stall_point = self.plan.stall(site, window.depth, every=every)
        elif (
            self._stall_point is not None
            and not self._stall_closed
            and t >= window.end
        ):
            self.plan.end_stall(self._stall_point)
            self._stall_closed = True

    # -- degraded-time bookkeeping --------------------------------------

    def _track_degraded(self, t: float) -> None:
        degraded = self.svc.degraded
        if degraded and not self._degraded_prev:
            self._degraded_since = t
            self._degraded_entered += 1
        elif not degraded and self._degraded_prev:
            if self._degraded_since is not None:
                self._degraded_time += t - self._degraded_since
                self._degraded_since = None
        self._degraded_prev = degraded

    def _close_degraded(self, t: float) -> None:
        if self._degraded_prev and self._degraded_since is not None:
            self._degraded_time += max(0.0, t - self._degraded_since)
            self._degraded_since = t

    # -- reporting -------------------------------------------------------

    def report(self, interrupted: bool | None = None) -> dict:
        """The SLO artifact (JSON-ready, no wall-clock — bit-replayable)."""
        if interrupted is None:
            interrupted = self._interrupted or not self._finished
        config = self.config
        probes = list(getattr(self.plan, "probes", []))
        consistent = sum(
            1 for p in probes if probe_consistent(p, self.references)
        )
        probe_staleness = max((p.staleness for p in probes), default=0)
        accounting_ok = True
        tenants: dict[str, dict] = {}
        for state in self.states:
            name = state.spec.name
            c = state.counters
            for kind, mapping in (
                ("write", {"admitted": c["admitted"], "rejected": c["rejected"],
                           "shed": c["shed"]}),
                ("read", {"admitted": c["read_admitted"],
                          "rejected": c["read_rejected"]}),
            ):
                recorded = self.controller.outcome_counts(name, kind)
                for outcome, count in mapping.items():
                    if recorded.get(outcome, 0) != count:
                        accounting_ok = False
            quota = self.controller.quota_for(name)
            tenants[name] = {
                "writes": {
                    "events": c["write_events"],
                    "admitted": c["admitted"],
                    "rejected": c["rejected"],
                    "shed": c["shed"],
                    "retries": c["retries"],
                    "abandoned": c["abandoned"],
                    "exhausted": c["exhausted"],
                    "errors": c["errors"],
                    "attempts": c["attempts"],
                    "rolled_back": c["rolled_back"],
                    "degraded_batches": c["degraded_batches"],
                    "p50_latency": _percentile(state.write_latencies, 0.50),
                    "p99_latency": _percentile(state.write_latencies, 0.99),
                    "max_latency": (
                        max(state.write_latencies)
                        if state.write_latencies
                        else None
                    ),
                },
                "reads": {
                    "events": c["read_events"],
                    "admitted": c["read_admitted"],
                    "rejected": c["read_rejected"],
                    "degraded": c["read_degraded"],
                    "p50_latency": _percentile(state.read_latencies, 0.50),
                    "p99_latency": _percentile(state.read_latencies, 0.99),
                    "max_staleness": state.max_staleness,
                },
                "quota": {"rate": quota.rate, "burst": quota.burst},
                "error": state.error,
            }
        total_errors = sum(s.counters["errors"] for s in self.states)
        ok = (
            not interrupted
            and accounting_ok
            and consistent == len(probes)
            and probe_staleness <= 1
            and total_errors == 0
        )
        artifact = {
            "format": 1,
            "kind": "soak",
            "label": config.label,
            "ok": ok,
            "interrupted": interrupted,
            "accounting_ok": accounting_ok,
            "config": {
                "algorithm": config.algorithm,
                "shards": config.shards,
                "seed": config.seed,
                "horizon": config.horizon,
                "threads": config.threads,
                "fault_rate": config.fault_rate,
                "verify_reads": config.verify_reads,
                "probe_every": config.probe_every,
                "read_latency": config.read_latency,
                "sample_every": config.sample_every,
                "stall": (
                    None if config.stall is None else config.stall.to_json_dict()
                ),
                "policy": self.controller.policy.to_json_dict(),
                "mix": config.mix.to_json_dict(),
            },
            "clock": {"end": self._now, "events": self._events},
            "totals": {
                "batches_applied": self.svc.batches_applied,
                "write_events": sum(
                    s.counters["write_events"] for s in self.states
                ),
                "read_events": sum(
                    s.counters["read_events"] for s in self.states
                ),
                "admitted": sum(s.counters["admitted"] for s in self.states),
                "rejected": sum(s.counters["rejected"] for s in self.states),
                "shed": sum(s.counters["shed"] for s in self.states),
                "errors": total_errors,
            },
            "consistency": {
                "reads_probed": len(probes),
                "reads_consistent": consistent,
                "max_staleness": probe_staleness,
                "references": len(self.references),
            },
            "faults": {
                "armed": self._armed_count,
                "fired": len(self.plan.fired),
                "stalled_hits": self.plan.stalled_hits,
                "site_counts": dict(sorted(self.plan.counts.items())),
            },
            "backpressure": self.controller.snapshot(self._now),
            "degraded": {
                "time": round(self._degraded_time, 9),
                "entered": self._degraded_entered,
                "active": self._degraded_prev,
            },
            "tenants": tenants,
        }
        if self.timeline is not None:
            artifact["timeline"] = self.timeline.to_json_dict()
        return artifact


def _percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]
