"""Multi-tenant traffic modeling and the chaos-armed soak harness.

:class:`TenantSpec` / :class:`TrafficMix` describe *who* sends traffic
and with what shape (arrival process, read/write mix, hot-key skew,
registered workload); :class:`SoakRunner` drives a shared,
admission-controlled :class:`~repro.service.CoreService` with a mix for
N simulated seconds — faults and stalls armed — and emits a
bit-reproducible per-tenant SLO artifact.  See :mod:`repro.traffic.soak`
for the full model and ``repro soak`` for the CLI entry point.
"""

from .soak import SoakConfig, SoakRunner, StallWindow
from .tenants import ARRIVALS, TenantSpec, TrafficMix, default_mix

__all__ = [
    "ARRIVALS",
    "SoakConfig",
    "SoakRunner",
    "StallWindow",
    "TenantSpec",
    "TrafficMix",
    "default_mix",
]
