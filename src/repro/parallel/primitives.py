"""Metered parallel primitives.

Implements the primitives the paper assumes in Section 2 ("Preliminaries"),
with the costs the paper cites charged to a :class:`~repro.parallel.engine.WorkDepthTracker`:

===============  =================  ==================
primitive        work               depth
===============  =================  ==================
reduce           O(n)               O(log n)
filter / pack    O(n)               O(log n)
prefix sum       O(n)               O(log n)
comparison sort  O(n log n)         O(log n)
semisort         O(n) expected      O(log n) w.h.p.
===============  =================  ==================

The values returned are computed sequentially (and deterministically) but
are exactly what the parallel primitive would produce.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from .engine import WorkDepthTracker

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)

__all__ = [
    "log2_ceil",
    "parallel_reduce",
    "parallel_filter",
    "parallel_prefix_sum",
    "parallel_sort",
    "parallel_semisort",
    "parallel_max",
    "parallel_count",
]


def log2_ceil(n: int) -> int:
    """``ceil(log2(n))`` for n >= 1, else 0 — used for depth charges."""
    if n <= 1:
        return 0
    return (n - 1).bit_length()


def _charge_linear(tracker: WorkDepthTracker, n: int) -> None:
    tracker.add(work=max(n, 1), depth=log2_ceil(n) + 1)


def parallel_reduce(
    tracker: WorkDepthTracker,
    seq: Sequence[T],
    op: Callable[[T, T], T],
    identity: T,
) -> T:
    """Tree reduction: O(n) work, O(log n) depth."""
    _charge_linear(tracker, len(seq))
    acc = identity
    for x in seq:
        acc = op(acc, x)
    return acc


def parallel_max(tracker: WorkDepthTracker, seq: Sequence[int], default: int = 0) -> int:
    _charge_linear(tracker, len(seq))
    return max(seq, default=default)


def parallel_count(
    tracker: WorkDepthTracker, seq: Iterable[T], pred: Callable[[T], bool]
) -> int:
    # Only one pass is needed, so sized inputs (lists, sets, dict views)
    # are consumed in place; only true one-shot iterators get materialized.
    if not hasattr(seq, "__len__"):
        seq = list(seq)
    _charge_linear(tracker, len(seq))  # type: ignore[arg-type]
    return sum(1 for x in seq if pred(x))


def parallel_filter(
    tracker: WorkDepthTracker, seq: Sequence[T], pred: Callable[[T], bool]
) -> list[T]:
    """Stable filter (pack): O(n) work, O(log n) depth.

    Preserves the relative order of kept elements, as the paper requires.
    """
    _charge_linear(tracker, len(seq))
    return [x for x in seq if pred(x)]


def parallel_prefix_sum(
    tracker: WorkDepthTracker,
    seq: Sequence[int],
    identity: int = 0,
) -> list[int]:
    """Exclusive prefix sum: ``out[i] = identity + sum(seq[:i])``.

    O(n) work, O(log n) depth (Blelloch scan).
    """
    _charge_linear(tracker, len(seq))
    out: list[int] = []
    acc = identity
    for x in seq:
        out.append(acc)
        acc += x
    return out


def parallel_sort(
    tracker: WorkDepthTracker,
    seq: Sequence[T],
    key: Callable[[T], object] | None = None,
) -> list[T]:
    """Comparison sort: O(n log n) work, O(log n) depth (e.g. sample sort)."""
    n = len(seq)
    tracker.add(work=max(1, n * max(1, log2_ceil(n))), depth=log2_ceil(n) + 1)
    return sorted(seq, key=key)  # type: ignore[type-var,arg-type]


def parallel_semisort(
    tracker: WorkDepthTracker,
    pairs: Sequence[tuple[K, T]],
) -> dict[K, list[T]]:
    """Group pairs by key: O(n) expected work, O(log n) depth w.h.p. [43].

    Returns groups keyed by the (hashable) key; within a group, values keep
    their input order.  Used by the static approximate k-core algorithm
    (Algorithm 6) to aggregate peeled-edge counts per neighbor.
    """
    _charge_linear(tracker, len(pairs))
    groups: dict[K, list[T]] = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    return groups
