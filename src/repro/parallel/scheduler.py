"""Simulated multiprocessor scheduling via Brent's bound.

The paper's Figure 10 plots self-relative speedup against thread count on
a 30-core (60 hyperthread) machine.  CPython cannot run the algorithms
with real threads, so we *simulate* scheduling: given the measured work
``W`` and depth ``D`` of a computation, a greedy scheduler on ``p``
processors finishes in time

    T_p  with  W/p <= T_p <= W/p + D          (Brent's theorem)

We model ``T_p = W/p + D`` (the pessimistic end of the bound), optionally
inflated by a per-processor scheduling overhead, which reproduces the
qualitative shape of the paper's scalability curves: near-linear speedup
while ``W/p >> D``, saturating when the critical path dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Cost

__all__ = ["BrentScheduler", "speedup_curve"]


@dataclass(frozen=True)
class BrentScheduler:
    """Converts (work, depth) into simulated parallel running times.

    Parameters
    ----------
    overhead_per_processor:
        Additive cost per extra processor, modelling scheduler/fork
        overhead (paper Section 6.3 observes parallel overheads dominate
        small batches).  Default 0.
    hyperthread_cores:
        If set, processors beyond this count contribute only
        ``hyperthread_yield`` of a full core (the paper's machine has 30
        physical cores with 2-way hyperthreading: threads 31..60 give
        diminished returns).
    hyperthread_yield:
        Effective fraction of a core contributed by a hyperthread.
    """

    overhead_per_processor: float = 0.0
    hyperthread_cores: int | None = None
    hyperthread_yield: float = 0.35

    def effective_processors(self, p: int) -> float:
        """Number of effective cores for ``p`` hardware threads."""
        if p < 1:
            raise ValueError("p must be >= 1")
        if self.hyperthread_cores is None or p <= self.hyperthread_cores:
            return float(p)
        extra = p - self.hyperthread_cores
        return self.hyperthread_cores + extra * self.hyperthread_yield

    def time(self, cost: Cost, p: int) -> float:
        """Simulated running time of ``cost`` on ``p`` threads."""
        peff = self.effective_processors(p)
        return cost.work / peff + cost.depth + self.overhead_per_processor * (p - 1)

    def speedup(self, cost: Cost, p: int) -> float:
        """Self-relative speedup T_1 / T_p."""
        return self.time(cost, 1) / self.time(cost, p)


def speedup_curve(
    cost: Cost,
    processors: list[int],
    scheduler: BrentScheduler | None = None,
) -> list[tuple[int, float]]:
    """Convenience: [(p, speedup)] for each processor count."""
    sched = scheduler or BrentScheduler()
    return [(p, sched.speedup(cost, p)) for p in processors]
