"""Work-depth model simulation substrate.

Provides the metered parallel primitives the paper assumes (Section 2):
a :class:`WorkDepthTracker` that accounts work and depth of simulated
parallel computations, batch-metered hash tables, classic primitives
(reduce, filter, scan, sort, semisort), and a Brent-bound scheduler for
simulating multiprocessor running times.
"""

from .engine import Cost, NullTracker, WorkDepthTracker, parfor, parmap
from .hashtable import ParallelHashMap, ParallelHashSet
from .primitives import (
    log2_ceil,
    parallel_count,
    parallel_filter,
    parallel_max,
    parallel_prefix_sum,
    parallel_reduce,
    parallel_semisort,
    parallel_sort,
)
from .scheduler import BrentScheduler, speedup_curve

__all__ = [
    "Cost",
    "NullTracker",
    "WorkDepthTracker",
    "parfor",
    "parmap",
    "ParallelHashMap",
    "ParallelHashSet",
    "log2_ceil",
    "parallel_count",
    "parallel_filter",
    "parallel_max",
    "parallel_prefix_sum",
    "parallel_reduce",
    "parallel_semisort",
    "parallel_sort",
    "BrentScheduler",
    "speedup_curve",
]
