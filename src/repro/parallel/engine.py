"""Work-depth metering engine.

The paper analyzes its algorithms in the *work-depth model* (Section 2):
*work* is the total number of operations executed, and *depth* is the
longest chain of sequential dependencies.  CPython cannot run the
algorithms with real shared-memory parallelism, so this module provides a
deterministic *simulation* of the binary-forking model: parallel constructs
execute sequentially in a canonical order, but every operation is metered
so that, at the end of an algorithm, we know exactly how much work was done
and how long the critical path was.

The central object is :class:`WorkDepthTracker`.  Algorithms thread a
tracker through their calls and charge costs with :meth:`~WorkDepthTracker.add`.
Parallel structure is expressed with :meth:`~WorkDepthTracker.parallel` /
:func:`parfor`: within a parallel scope, the work of all branches is summed
while only the *maximum* branch depth is added to the enclosing depth.

This mirrors the composition rules of the work-depth model:

- sequential composition: ``W = W1 + W2``, ``D = D1 + D2``
- parallel composition:   ``W = W1 + W2``, ``D = max(D1, D2)``

Example
-------
>>> t = WorkDepthTracker()
>>> with t.parallel() as par:
...     for x in range(4):
...         with par.branch():
...             t.add(work=10, depth=3)
>>> (t.work, t.depth)
(40, 3)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "WorkDepthTracker",
    "NullTracker",
    "Cost",
    "parfor",
    "parmap",
    "set_fault_hook",
    "set_obs_hook",
]


#: Fault-injection hook for the ``engine.parfor`` site.  This layer has
#: no imports from the rest of the package (see docs/architecture.md),
#: so :mod:`repro.faults` pushes its hook in via :func:`set_fault_hook`
#: instead of being imported here.  ``None`` (the default) keeps every
#: parfor at one module-global load plus a branch — the zero-overhead
#: contract the perf harness gates.
_FAULT_HOOK: Callable[[str], None] | None = None

#: Observability hook for the same ``engine.parfor`` site, pushed in by
#: :mod:`repro.obs.metrics` under the identical import-clean contract.
_OBS_HOOK: Callable[[str], None] | None = None


def set_fault_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or with ``None`` remove) the ``engine.parfor`` fault hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def set_obs_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or with ``None`` remove) the ``engine.parfor`` obs hook."""
    global _OBS_HOOK
    _OBS_HOOK = hook


@dataclass(frozen=True)
class Cost:
    """An immutable (work, depth) pair, the currency of the model."""

    work: int = 0
    depth: int = 0

    def __add__(self, other: "Cost") -> "Cost":
        """Sequential composition."""
        return Cost(self.work + other.work, self.depth + other.depth)

    def __or__(self, other: "Cost") -> "Cost":
        """Parallel composition."""
        return Cost(self.work + other.work, max(self.depth, other.depth))

    def scaled(self, k: int) -> "Cost":
        return Cost(self.work * k, self.depth * k)


class _Frame:
    """One accounting frame: accumulates sequential work/depth."""

    __slots__ = ("work", "depth")

    def __init__(self) -> None:
        self.work = 0
        self.depth = 0


class _Branch:
    """One parallel branch: isolates costs while active.

    Hand-rolled context manager — profiling showed generator-based
    ``@contextmanager`` overhead dominating fine-grained parallel loops
    (hundreds of thousands of branches per batch).
    """

    __slots__ = ("_scope", "_frame")

    def __init__(self, scope: "_ParallelScope") -> None:
        self._scope = scope

    def __enter__(self) -> None:
        self._frame = _Frame()
        self._scope._tracker._stack.append(self._frame)

    def __exit__(self, *exc_info: object) -> None:
        self._scope._tracker._stack.pop()
        frame = self._frame
        scope = self._scope
        scope.work += frame.work
        if frame.depth > scope.max_depth:
            scope.max_depth = frame.depth


class _ParallelScope:
    """Accumulates branches: sums work, maxes depth."""

    __slots__ = ("_tracker", "work", "max_depth")

    def __init__(self, tracker: "WorkDepthTracker") -> None:
        self._tracker = tracker
        self.work = 0
        self.max_depth = 0

    def branch(self) -> _Branch:
        """Open one parallel branch; costs inside it are isolated."""
        return _Branch(self)


class WorkDepthTracker:
    """Meters work and depth of a (simulated) parallel computation.

    The tracker maintains a stack of frames.  ``add`` charges the top
    frame; a ``parallel`` scope redirects branch costs into an aggregator
    that is folded back (sum-work / max-depth) when the scope closes.

    A fresh tracker may be used for a whole experiment or reset per batch
    via :meth:`snapshot` / :meth:`delta`.
    """

    def __init__(self) -> None:
        self._root = _Frame()
        self._stack: list[_Frame] = [self._root]

    # -- charging -----------------------------------------------------

    def add(self, work: int = 1, depth: int = 1) -> None:
        """Charge ``work`` units of work and ``depth`` units of depth."""
        frame = self._stack[-1]
        frame.work += work
        frame.depth += depth

    def add_cost(self, cost: Cost) -> None:
        self.add(cost.work, cost.depth)

    def charge_parfor(self, n: int, per_work: int = 1, per_depth: int = 1) -> None:
        """Charge a uniform-cost parfor of ``n`` branches in O(1).

        Exactly equivalent to a :meth:`parallel` scope with ``n`` branches
        each charging ``(per_work, per_depth)`` — total work ``n * per_work``
        (sum), total depth ``per_depth`` (max) — without opening ``n``
        frames.  ``n <= 0`` charges nothing, like an empty scope.
        """
        if n <= 0:
            return
        frame = self._stack[-1]
        frame.work += n * per_work
        frame.depth += per_depth

    # -- structure ----------------------------------------------------

    @contextmanager
    def parallel(self) -> Iterator[_ParallelScope]:
        """Open a parallel scope.

        Branches created with ``scope.branch()`` compose in parallel; the
        combined cost (sum of works, max of depths) is charged to the
        enclosing frame when the scope exits.
        """
        scope = _ParallelScope(self)
        yield scope
        frame = self._stack[-1]
        frame.work += scope.work
        frame.depth += scope.max_depth

    def flat_parfor(self, items: Iterable[T], body: Callable[[T], None]) -> None:
        """Run ``body`` over ``items`` with parallel cost composition.

        Semantically identical to :func:`parfor` (sum of branch works,
        max of branch depths, folded into the enclosing frame), but a
        single scratch frame is reused for every branch instead of
        pushing/popping one ``_Frame`` plus two context managers per
        iteration — the dominant interpreter overhead of fine-grained
        loops with hundreds of thousands of branches per batch.
        """
        if _FAULT_HOOK is not None:
            _FAULT_HOOK("engine.parfor")
        if _OBS_HOOK is not None:
            _OBS_HOOK("engine.parfor")
        stack = self._stack
        scratch = _Frame()
        stack.append(scratch)
        total_work = 0
        max_depth = 0
        try:
            for item in items:
                scratch.work = 0
                scratch.depth = 0
                body(item)
                total_work += scratch.work
                if scratch.depth > max_depth:
                    max_depth = scratch.depth
        finally:
            stack.pop()
        frame = stack[-1]
        frame.work += total_work
        frame.depth += max_depth

    # -- reading ------------------------------------------------------

    @property
    def work(self) -> int:
        return self._root.work

    @property
    def depth(self) -> int:
        return self._root.depth

    @property
    def cost(self) -> Cost:
        return Cost(self._root.work, self._root.depth)

    def snapshot(self) -> Cost:
        """Capture current totals (for computing per-phase deltas)."""
        return self.cost

    def delta(self, since: Cost) -> Cost:
        """Cost accumulated since ``since`` (a prior :meth:`snapshot`)."""
        return Cost(self.work - since.work, self.depth - since.depth)

    def reset(self) -> None:
        self._root.work = 0
        self._root.depth = 0
        del self._stack[1:]


class _NullBranch:
    """No-op branch context, shared by every :class:`NullTracker` scope."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullScope:
    """Scope whose branches are free."""

    __slots__ = ()
    _branch = _NullBranch()

    def branch(self) -> _NullBranch:
        return self._branch


class NullTracker(WorkDepthTracker):
    """A tracker that charges nothing — for unmetered "serving" runs.

    Deployments that only need coreness answers (not work/depth accounting)
    pay the metering substrate's bookkeeping for nothing; passing
    ``tracker=NullTracker()`` turns every charge site into a no-op while
    keeping the full :class:`WorkDepthTracker` interface, so algorithm
    code needs no branching.  ``work`` and ``depth`` read 0.
    """

    _null_scope = _NullScope()

    def add(self, work: int = 1, depth: int = 1) -> None:
        return None

    def add_cost(self, cost: Cost) -> None:
        return None

    def charge_parfor(self, n: int, per_work: int = 1, per_depth: int = 1) -> None:
        return None

    @contextmanager
    def parallel(self) -> Iterator[_NullScope]:  # type: ignore[override]
        yield self._null_scope

    def flat_parfor(self, items: Iterable[T], body: Callable[[T], None]) -> None:
        if _FAULT_HOOK is not None:
            _FAULT_HOOK("engine.parfor")
        if _OBS_HOOK is not None:
            _OBS_HOOK("engine.parfor")
        for item in items:
            body(item)


def parfor(
    tracker: WorkDepthTracker,
    items: Iterable[T],
    body: Callable[[T], None],
) -> None:
    """Simulated ``parfor``: run ``body`` over ``items``.

    All iterations execute sequentially (canonical order — the paper's
    Lemma 5.9 shows an equivalent sequential order always exists), but their
    costs compose in parallel: total work is the sum over iterations, total
    depth the maximum over iterations.
    """
    if _FAULT_HOOK is not None:
        _FAULT_HOOK("engine.parfor")
    if _OBS_HOOK is not None:
        _OBS_HOOK("engine.parfor")
    with tracker.parallel() as par:
        for item in items:
            with par.branch():
                body(item)


def parmap(
    tracker: WorkDepthTracker,
    items: Sequence[T],
    fn: Callable[[T], U],
) -> list[U]:
    """Like :func:`parfor` but collects results, preserving input order."""
    out: list[U] = []
    with tracker.parallel() as par:
        for item in items:
            with par.branch():
                out.append(fn(item))
    return out
