"""Process-pool execution backend: a ``flat_parfor`` that actually fans out.

:class:`PoolBackend` is a :class:`~repro.parallel.engine.WorkDepthTracker`
whose ``flat_parfor`` dispatches *pool-capable* bodies to a
``ProcessPoolExecutor`` instead of simulating the parallel loop inline.
A body advertises pool capability by carrying a :class:`PoolTask`
attribute (see :func:`attach_consider_task`, :func:`attach_rise_task`,
:func:`attach_shard_consider_task`); bodies without one run through the
inherited simulated path unchanged, so the backend is a strict superset
of the simulated one.

Shared state travels through ``multiprocessing.shared_memory`` as one
*resident* graph image per engine (:class:`ResidentImage`): an int32
level vector plus a CSR-style slot-indexed adjacency (offsets + neighbor
array).  The image outlives individual dispatches — workers keep the
segments mapped between dispatches (module-level cache) — and a
dirty-range delta protocol replaces the per-dispatch full memcpy: the
engine records which slots changed level since the last flush, and
:meth:`ResidentImage.flush` rewrites only the coalesced byte ranges that
cover them.  The adjacency array is rewritten only when edges changed,
and the whole image is rebuilt from scratch only when slot numbering
changed (vertex insertion/compaction, i.e. structural "compaction"
events).  Per-dispatch bytes-copied and range counts are accounted on
the backend (``pool_stats()``) and exported as
``engine.pool.bytes_copied`` / ``engine.pool.dirty_ranges`` series.

Workers return, per chunk, the results plus the metered ``(sum of
works, max of depths)`` of their items; the main process folds those
into the enclosing frame with exactly the composition the simulated
``flat_parfor`` uses, so metered totals are bit-identical between
backends (gated by ``tests/test_backend.py``).

Three read-only scans are pool-dispatched:

- the deletion-phase desire-level scan (Algorithm 4 over the affected
  set) of the flat engine (:func:`attach_consider_task`);
- the insertion-phase jump-rise desire scan
  (:func:`attach_rise_task`) — workers evaluate desire levels against
  the snapshot; a conflict-aware ``finish`` step in the main process
  re-evaluates the few movers whose neighborhood already moved this
  round, keeping the result bit-identical to the sequential cascade;
- the shard kernels' post-ghost-exchange desire evaluation
  (:func:`attach_shard_consider_task`), the same Algorithm-4 scan run
  per shard against the kernel's local+ghost image.

When ``shared_memory`` (or process pools) are unavailable the backend
falls back to the simulated path with a ``RuntimeWarning`` and an
``engine.pool_fallback.calls`` obs counter instead of crashing.
"""

from __future__ import annotations

import os
import warnings
import weakref
from typing import Any, Callable, Iterable, Sequence, TypeVar

from . import engine as _engine
from .engine import WorkDepthTracker

# The *engine* module stays import-clean of repro.obs (hooks are pushed
# in via set_obs_hook); the pool backend is a leaf above it and may
# consult the observability globals directly, like the shard layer does.
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing

try:  # pragma: no cover - import always succeeds on CPython >= 3.8/posix
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_context
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without shm support
    ProcessPoolExecutor = None  # type: ignore[assignment,misc]
    get_context = None  # type: ignore[assignment]
    _shm = None  # type: ignore[assignment]

#: Patch point: tests (and exotic platforms) set this to ``None`` to
#: exercise the fallback guard without uninstalling ``_posixshmem``.
shared_memory = _shm

T = TypeVar("T")

__all__ = [
    "PoolBackend",
    "PoolTask",
    "ResidentImage",
    "WorkerTally",
    "merge_worker_tallies",
    "attach_consider_task",
    "attach_rise_task",
    "attach_shard_consider_task",
    "consider_chunk",
    "rise_chunk",
]

#: One worker's share of a dispatch: ``(worker, slot_lo, slot_hi, tasks,
#: work)`` — ``[slot_lo, slot_hi)`` is the contiguous item-index range
#: the worker's chunk covered.
WorkerTally = tuple[int, int, int, int, int]


def merge_worker_tallies(
    registry: "_metrics.MetricsRegistry", tallies: "Sequence[WorkerTally]"
) -> None:
    """Fold per-worker dispatch tallies into ``engine.pool.*`` series.

    Iterates in worker-id order, so the merge is independent of the
    order chunks completed (counter adds commute and each worker's
    slot-range gauges are written exactly once per dispatch).
    """
    for worker, lo, hi, tasks, work in sorted(tallies):
        registry.inc("engine.pool.tasks", tasks, worker=worker)
        registry.inc("engine.pool.work", work, worker=worker)
        registry.gauge("engine.pool.slot_lo", lo, worker=worker)
        registry.gauge("engine.pool.slot_hi", hi, worker=worker)


def _noop() -> None:
    """Cleanup for tasks backed by a resident image: nothing to tear
    down per dispatch — the image's segments persist until the backend
    (or the source engine) closes them."""


# ----------------------------------------------------------------------
# Worker-side segment cache
# ----------------------------------------------------------------------

#: Segments this worker process has attached, by name.  The resident
#: image reuses segment names across dispatches (capacity headroom), so
#: workers map each segment once and read fresh bytes out of the same
#: mapping on every dispatch — attach cost is paid only when a name is
#: first seen (or after a growth re-creation changes it).
_WORKER_SEGMENTS: dict[str, Any] = {}

#: Eviction bound: shard runs route many kernels (each with its own
#: image) through one shared executor; cap the per-worker mapping count.
_WORKER_SEGMENT_CAP = 64


def _worker_segment(name: str) -> Any:
    seg = _WORKER_SEGMENTS.get(name)
    if seg is None:
        if len(_WORKER_SEGMENTS) >= _WORKER_SEGMENT_CAP:
            for old in _WORKER_SEGMENTS.values():
                try:
                    old.close()
                except Exception:  # pragma: no cover - best effort
                    pass
            _WORKER_SEGMENTS.clear()
        # Attaching re-registers the segment with the resource tracker;
        # the tracker process is shared with the owner (fork) and its
        # cache is a set, so the duplicate collapses and the owner's
        # unlink() is the single deregistration.
        seg = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS[name] = seg
    return seg


def _image_views(
    lv_name: str, adj_name: str, n: int, adj_ints: int
) -> tuple[Any, Any, Any]:
    """Attach (or reuse) the image segments; return int32 views
    ``(levels, offsets, neighbors)``."""
    lv_seg = _worker_segment(lv_name)
    adj_seg = _worker_segment(adj_name)
    levels = memoryview(lv_seg.buf)[: 4 * n].cast("i")
    adj = memoryview(adj_seg.buf)[: 4 * adj_ints].cast("i")
    return levels, adj[: n + 1], adj[n + 1 :]


# ----------------------------------------------------------------------
# Resident image + dirty-range delta protocol
# ----------------------------------------------------------------------


def _coalesce(slots: Iterable[int], gap: int) -> list[tuple[int, int]]:
    """Merge dirty slot indices into sorted ``[lo, hi)`` ranges,
    bridging gaps of at most ``gap`` slots (a bounded over-approximation
    that trades a few extra bytes for fewer range writes)."""
    uniq = sorted(set(slots))
    if not uniq:
        return []
    ranges: list[tuple[int, int]] = []
    lo = prev = uniq[0]
    for s in uniq[1:]:
        if s - prev <= gap:
            prev = s
            continue
        ranges.append((lo, prev + 1))
        lo = prev = s
    ranges.append((lo, prev + 1))
    return ranges


def _release_segments(pid: int, segments: list[Any]) -> None:
    # weakref.finalize backstop shared with forked children: only the
    # creating process may unlink (a worker's atexit must not tear the
    # owner's live segments down).
    if os.getpid() != pid:
        return
    for seg in segments:
        try:
            seg.close()
        except Exception:  # pragma: no cover - best effort
            pass
        try:
            seg.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
    segments.clear()


class ResidentImage:
    """A resident shared-memory graph image for one source engine.

    Two segments: the int32 level vector and the CSR adjacency
    (``[offsets (n+1) ints][neighbor slots]``).  Segments carry
    power-of-two capacity headroom so their names — what workers key
    their mappings on — survive in-place rewrites; only genuine growth
    re-creates a segment under a new name.

    :meth:`flush` implements the delta protocol.  The source engine
    (duck-typed: :class:`~repro.core.plds_flat.PLDSFlat` or
    :class:`~repro.shard.kernel.ShardKernel`) exposes:

    - ``_pool_renumber`` — slot numbering changed (vertex insertion,
      compaction, restore): the whole image is rebuilt;
    - ``_pool_adj_dirty`` — edges changed but numbering held: only the
      CSR is rewritten, levels still go through ranges;
    - ``_pool_dirty_slots`` — slots whose level changed since the last
      flush: coalesced into ranges and only those bytes rewritten;
    - ``pool_csr()`` / ``pool_levels_array()`` / ``pool_levels_range()``
      — the encoders.

    Lifecycle: owned by the root :class:`PoolBackend` (closed by its
    ``close()``/context-manager exit, covering exception and
    KeyboardInterrupt paths) and back-referenced by the source; a
    ``weakref.finalize`` backstop unlinks the segments if the backend is
    garbage-collected without a close.
    """

    #: Dirty slots closer than this merge into one flushed range.
    GAP = 32

    def __init__(self, owner: "PoolBackend", source: Any) -> None:
        self._owner = owner
        self._source = source
        #: live segments; shared (same list object) with the finalizer.
        self._segments: list[Any] = []
        self._levels_seg: Any = None
        self._adj_seg: Any = None
        self._n = 0
        self._adj_ints = 0
        self.closed = False
        self.full_flushes = 0
        self.delta_flushes = 0
        #: ranges written by the most recent flush (``[(lo, hi)]``, or
        #: ``[(0, n)]`` for a full flush) — consulted by the protocol
        #: tests.
        self.last_ranges: list[tuple[int, int]] = []
        self.last_bytes = 0
        self._finalizer = weakref.finalize(
            self, _release_segments, os.getpid(), self._segments
        )
        owner._images.append(self)

    def _segment_with_capacity(self, current: Any, nbytes: int) -> Any:
        if current is not None and current.size >= nbytes:
            return current
        cap = 64
        while cap < nbytes:
            cap <<= 1
        fresh = shared_memory.SharedMemory(create=True, size=cap)
        if current is not None:
            try:
                self._segments.remove(current)
            except ValueError:  # pragma: no cover - defensive
                pass
            try:
                current.close()
            except Exception:  # pragma: no cover - best effort
                pass
            try:
                current.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._segments.append(fresh)
        return fresh

    def _write_adj(self, offsets: Any, nbrs: Any) -> int:
        adj_ints = len(offsets) + len(nbrs)
        self._adj_seg = self._segment_with_capacity(
            self._adj_seg, max(1, 4 * adj_ints)
        )
        buf = self._adj_seg.buf
        off_b = offsets.tobytes()
        buf[: len(off_b)] = off_b
        nbr_b = nbrs.tobytes()
        buf[len(off_b) : len(off_b) + len(nbr_b)] = nbr_b
        self._adj_ints = adj_ints
        return 4 * adj_ints

    def flush(self, source: Any) -> tuple[str, str, int, int]:
        """Bring the image up to date; return ``(levels segment name,
        adjacency segment name, slot count, adjacency int count)``.

        Full rebuild when numbering changed (or first flush), CSR-only
        rewrite when edges changed, coalesced level ranges otherwise.
        Bytes written are accounted on the owning backend and the
        ``engine.pool.bytes_copied`` / ``engine.pool.dirty_ranges``
        series.
        """
        nbytes = 0
        nranges = 0
        if source._pool_renumber or self._levels_seg is None:
            offsets, nbrs = source.pool_csr()
            n = len(offsets) - 1
            nbytes += self._write_adj(offsets, nbrs)
            lv_b = source.pool_levels_array().tobytes()
            self._levels_seg = self._segment_with_capacity(
                self._levels_seg, max(1, len(lv_b))
            )
            self._levels_seg.buf[: len(lv_b)] = lv_b
            nbytes += len(lv_b)
            self._n = n
            source._pool_renumber = False
            source._pool_adj_dirty = False
            del source._pool_dirty_slots[:]
            self.full_flushes += 1
            self.last_ranges = [(0, n)] if n else []
        else:
            if source._pool_adj_dirty:
                # Edges changed but slot numbering held: the CSR is
                # rewritten while levels still flow through ranges.
                offsets, nbrs = source.pool_csr()
                nbytes += self._write_adj(offsets, nbrs)
                source._pool_adj_dirty = False
            ranges = _coalesce(source._pool_dirty_slots, self.GAP)
            del source._pool_dirty_slots[:]
            lbuf = self._levels_seg.buf
            for lo, hi in ranges:
                data = source.pool_levels_range(lo, hi).tobytes()
                lbuf[4 * lo : 4 * hi] = data
                nbytes += len(data)
            nranges = len(ranges)
            self.last_ranges = ranges
            self.delta_flushes += 1
        self.last_bytes = nbytes
        owner = self._owner
        owner.bytes_copied += nbytes
        # What the pre-delta protocol would have copied: the full image,
        # every dispatch.
        owner.bytes_full_equiv += 4 * (self._n + self._adj_ints)
        owner.dirty_ranges += nranges
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("engine.pool.bytes_copied", nbytes)
            if nranges:
                mreg.inc("engine.pool.dirty_ranges", nranges)
        return self._levels_seg.name, self._adj_seg.name, self._n, self._adj_ints

    def close(self) -> None:
        """Unlink the segments and detach from owner/source
        (idempotent; safe on exception/KeyboardInterrupt paths)."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        for seg in self._segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover - best effort
                pass
            try:
                seg.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._levels_seg = None
        self._adj_seg = None
        try:
            self._owner._images.remove(self)
        except ValueError:
            pass
        source = self._source
        if source is not None and getattr(source, "_pool_image", None) is self:
            source._pool_image = None
        self._source = None


class PoolTask:
    """How to run one ``flat_parfor`` body on worker processes.

    - ``prepare(items)`` runs in the main process and returns
      ``(ctx, cleanup)``: a picklable context shared by every chunk
      (typically the resident image's segment names, refreshed via
      :meth:`ResidentImage.flush`) and a zero-argument cleanup callback
      invoked after the dispatch.
    - ``encode(item)`` turns one item into a picklable payload.
    - ``chunk_fn(ctx, payloads)`` is an importable module-level function
      executed on workers; it returns ``(results, work, depth)`` where
      ``work``/``depth`` are the sum/max of the per-item charges the
      inline body would have metered.
    - ``apply(item, result)`` runs in the main process, in canonical
      item order, to integrate one result.  It must not charge the
      tracker — the fold already accounts for the full scan.
    - ``finish(items, results)`` (optional, replaces ``apply``) runs in
      the main process over *all* results in canonical order and returns
      the ``(total work, max depth)`` to fold — used by bodies whose
      per-item integration mutates shared state (the jump-rise cascade),
      where the authoritative charges are only known at apply time.
    """

    __slots__ = ("prepare", "encode", "chunk_fn", "apply", "finish")

    def __init__(
        self,
        prepare: Callable[[Sequence[Any]], tuple[Any, Callable[[], None]]],
        encode: Callable[[Any], Any],
        chunk_fn: Callable[..., tuple[list[Any], int, int]],
        apply: Callable[[Any, Any], None] | None,
        finish: Callable[[Sequence[Any], list[Any]], tuple[int, int]]
        | None = None,
    ) -> None:
        self.prepare = prepare
        self.encode = encode
        self.chunk_fn = chunk_fn
        self.apply = apply
        self.finish = finish


class PoolBackend(WorkDepthTracker):
    """A tracker whose ``flat_parfor`` fans pool-capable bodies out.

    Parameters
    ----------
    workers:
        Worker process count (and chunk count per dispatch).
    min_dispatch:
        Below this many items a dispatch is not worth two IPC round
        trips; the body runs through the inherited simulated path
        (observationally identical, so this is purely a policy knob).

    A sharded run hands each kernel a child backend
    (:meth:`subtracker`): children meter independently (the shard
    engine's fold contract) but share the root's executor and resident
    images, and their dispatch/fallback counts bubble up so the root
    reports fleet-wide totals.
    """

    #: Marker consulted by pool-aware algorithms (e.g. the flat engine's
    #: deletion rebalance) to decide whether building a PoolTask is
    #: worth the closure allocations.
    pool_tasks = True

    def __init__(self, workers: int = 2, min_dispatch: int = 8) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.min_dispatch = min_dispatch
        #: dispatches that actually reached the process pool.
        self.dispatches = 0
        #: dispatches that fell back to the simulated path because the
        #: shared-memory substrate is unavailable.
        self.fallbacks = 0
        #: bytes actually written into shared segments by image flushes.
        self.bytes_copied = 0
        #: bytes a full-image flush per dispatch would have written.
        self.bytes_full_equiv = 0
        #: dirty ranges written by delta flushes.
        self.dirty_ranges = 0
        self._images: list[ResidentImage] = []
        self._parent: PoolBackend | None = None
        self._executor: Any = None
        self._warned = False

    # -- lifecycle -----------------------------------------------------

    def _pool_root(self) -> "PoolBackend":
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    def subtracker(self) -> "PoolBackend":
        """A child backend for one shard kernel: independent metering,
        shared executor/image ownership, counters bubbling to the
        root."""
        child = PoolBackend(
            workers=self.workers, min_dispatch=self.min_dispatch
        )
        child._parent = self
        return child

    def resident_image(self, source: Any) -> ResidentImage:
        """The resident image for ``source``, created (and registered on
        the root backend) on first use."""
        image = getattr(source, "_pool_image", None)
        if image is None or image.closed:
            image = ResidentImage(self._pool_root(), source)
            source._pool_image = image
        return image

    def _ensure_executor(self) -> Any:
        root = self._pool_root()
        if root._executor is None:
            ctx = None
            if get_context is not None:
                try:
                    ctx = get_context("fork")
                except ValueError:  # pragma: no cover - non-posix
                    ctx = None
            root._executor = ProcessPoolExecutor(
                max_workers=root.workers, mp_context=ctx
            )
        return root._executor

    def close(self) -> None:
        """Release resident images and shut the worker pool down
        (idempotent; run on context-manager exit so exception and
        KeyboardInterrupt paths unlink every shared segment)."""
        for image in list(self._images):
            image.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def pool_stats(self) -> dict[str, int | float]:
        """Dispatch/copy accounting (fleet-wide when called on the root
        backend of a sharded run)."""
        d = self.dispatches
        return {
            "dispatches": d,
            "fallbacks": self.fallbacks,
            "bytes_copied": self.bytes_copied,
            "bytes_full_equiv": self.bytes_full_equiv,
            "dirty_ranges": self.dirty_ranges,
            "mean_bytes_per_dispatch": (self.bytes_copied / d) if d else 0.0,
            "mean_bytes_full_equiv": (
                (self.bytes_full_equiv / d) if d else 0.0
            ),
        }

    def __enter__(self) -> "PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- execution -----------------------------------------------------

    def _note_fallback(self) -> None:
        node: PoolBackend | None = self
        while node is not None:
            node.fallbacks += 1
            node = node._parent
        hook = _engine._OBS_HOOK
        if hook is not None:
            hook("engine.pool_fallback")
        root = self._pool_root()
        if not root._warned:
            root._warned = True
            warnings.warn(
                "multiprocessing.shared_memory unavailable; PoolBackend is "
                "falling back to the simulated execution path",
                RuntimeWarning,
                stacklevel=4,
            )

    def flat_parfor(
        self, items: Iterable[T], body: Callable[[T], None]
    ) -> None:
        task: PoolTask | None = getattr(body, "pool_task", None)
        if task is not None:
            seq = list(items)
            if len(seq) >= self.min_dispatch:
                if shared_memory is None or ProcessPoolExecutor is None:
                    self._note_fallback()
                else:
                    self._dispatch(seq, task)
                    return
            items = seq
        super().flat_parfor(items, body)

    def _dispatch(self, items: Sequence[T], task: PoolTask) -> None:
        tracer = _tracing.ACTIVE
        if tracer is None:
            self._dispatch_run(items, task)
            return
        # Spanning over self: the fold's self.add lands inside, so the
        # pool.dispatch span's work/depth equal the dispatch's metered
        # (sum, max) exactly.
        span = tracer.begin(
            "pool.dispatch",
            self,
            items=len(items),
            workers=min(self.workers, max(1, len(items))),
        )
        try:
            self._dispatch_run(items, task)
        except BaseException as exc:
            tracer.end(span, error=type(exc).__name__)
            raise
        tracer.end(span)

    def _dispatch_run(self, items: Sequence[T], task: PoolTask) -> None:
        # Same observable protocol as the simulated flat_parfor: the
        # engine.parfor hooks fire exactly once per parallel loop, and
        # the fold into the enclosing frame is (sum of per-item works,
        # max of per-item depths).  The fault hook fires *before*
        # prepare(), so an injected fault leaves the image unflushed and
        # the dirty records retained — exactly the simulated partial
        # state (the body never ran).
        fault_hook = _engine._FAULT_HOOK
        if fault_hook is not None:
            fault_hook("engine.parfor")
        obs_hook = _engine._OBS_HOOK
        if obs_hook is not None:
            obs_hook("engine.parfor")
        ctx, cleanup = task.prepare(items)
        tallies: list[WorkerTally] = []
        try:
            payloads = [task.encode(item) for item in items]
            n_chunks = min(self.workers, len(payloads))
            size = -(-len(payloads) // n_chunks)  # ceil division
            executor = self._ensure_executor()
            futures = [
                executor.submit(task.chunk_fn, ctx, payloads[i : i + size])
                for i in range(0, len(payloads), size)
            ]
            total_work = 0
            max_depth = 0
            chunk_results: list[list[Any]] = []
            for worker, future in enumerate(futures):  # deterministic order
                results, work, depth = future.result()
                total_work += work
                if depth > max_depth:
                    max_depth = depth
                chunk_results.append(results)
                lo = worker * size
                hi = min(lo + size, len(payloads))
                tallies.append((worker, lo, hi, hi - lo, work))
        finally:
            cleanup()
        node: PoolBackend | None = self
        while node is not None:
            node.dispatches += 1
            node = node._parent
        if task.finish is not None:
            flat: list[Any] = []
            for results in chunk_results:
                flat.extend(results)
            total_work, max_depth = task.finish(items, flat)
        else:
            index = 0
            for results in chunk_results:
                for result in results:
                    task.apply(items[index], result)
                    index += 1
        self.add(total_work, max_depth)
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("engine.pool.dispatches")
            merge_worker_tallies(mreg, tallies)


# ----------------------------------------------------------------------
# The consider-scan task (Algorithm 4 over the affected set)
# ----------------------------------------------------------------------


def consider_chunk(
    ctx: tuple[str, str, int, int, list[int], int],
    payloads: list[int],
) -> tuple[list[tuple[int, int] | None], int, int]:
    """Worker-side kernel for the deletion-phase desire-level scan.

    ``ctx`` is ``(levels segment, adjacency segment, slot count,
    adjacency ints, Invariant-2 integer thresholds, depth charge per
    scan)``; each payload is a slot index — neighbors come from the
    resident CSR, so nothing per-vertex is pickled.  Per item the kernel
    replicates the inline body exactly: nothing for level-0 or
    non-violating vertices, otherwise the Algorithm-4 downward scan
    returning ``(desire level, scanned)`` and charging ``(scanned,
    levels_depth)``.
    """
    lv_name, adj_name, n, adj_ints, thresholds, levels_depth = ctx
    levels, offsets, nbrs = _image_views(lv_name, adj_name, n, adj_ints)
    results: list[tuple[int, int] | None] = []
    total_work = 0
    max_depth = 0
    for slot in payloads:
        lvl = levels[slot]
        if lvl == 0:
            results.append(None)
            continue
        # Histogram the neighbor levels; the up/down split of the
        # flat structures is exactly the level rule, so bucket sizes
        # are recoverable from levels alone.
        len_up = 0
        counts: dict[int, int] = {}
        for k in range(offsets[slot], offsets[slot + 1]):
            lw = levels[nbrs[k]]
            if lw >= lvl:
                len_up += 1
            else:
                counts[lw] = counts.get(lw, 0) + 1
        up_star = len_up + counts.get(lvl - 1, 0)
        if up_star >= thresholds[lvl]:
            results.append(None)
            continue
        cnt = len_up
        scanned = 1
        best = 0
        counts_get = counts.get
        for lprime in range(lvl, 0, -1):
            c = counts_get(lprime - 1, 0)
            if c:
                cnt += c
            scanned += 1
            if cnt >= thresholds[lprime]:
                best = lprime
                break
        results.append((best, scanned))
        total_work += scanned
        if levels_depth > max_depth:
            max_depth = levels_depth
    return results, total_work, max_depth


def attach_consider_task(
    plds: Any,
    body: Callable[[int], None],
    desire: Any,
    pending: dict[int, list[int]],
) -> None:
    """Attach a :class:`PoolTask` for the consider scan to ``body``.

    ``plds`` is a :class:`~repro.core.plds_flat.PLDSFlat`; ``desire`` is
    its per-batch desire array and ``pending`` the cascade buckets.  The
    task delta-flushes the resident image, has workers run
    :func:`consider_chunk` against the shared CSR, and applies results
    (desire assignment + pending marks) in canonical order —
    byte-for-byte the effect of the inline body.
    """
    from ..core.plds import _mark

    slot_of = plds._slot_of

    def prepare(items: Sequence[int]) -> tuple[Any, Callable[[], None]]:
        image = plds.tracker.resident_image(plds)
        lv_name, adj_name, n, adj_ints = image.flush(plds)
        ctx = (
            lv_name,
            adj_name,
            n,
            adj_ints,
            list(plds._inv2_thresh_int),
            plds._levels_depth,
        )
        return ctx, _noop

    def encode(w: int) -> int:
        return slot_of[w]

    def apply(w: int, result: tuple[int, int] | None) -> None:
        if result is None:
            return
        dl, _scanned = result
        desire[slot_of[w]] = dl
        _mark(pending, dl, w)

    body.pool_task = PoolTask(  # type: ignore[attr-defined]
        prepare, encode, consider_chunk, apply
    )


# ----------------------------------------------------------------------
# The jump-rise task (Algorithm 2's desire scan over one level's movers)
# ----------------------------------------------------------------------


def rise_chunk(
    ctx: tuple[str, str, int, int, list[int]],
    payloads: list[int],
) -> tuple[list[tuple[int, int]], int, int]:
    """Worker-side kernel for the insertion-phase rise desire scan.

    ``ctx`` is ``(levels segment, adjacency segment, slot count,
    adjacency ints, Invariant-1 integer bounds)``; each payload a mover
    slot.  Per slot the kernel evaluates the upward desire walk of
    ``PLDSFlat._up_desire_slot`` against the snapshot: the up-set is
    recovered from levels (neighbors at >= the mover's level), and the
    walk climbs until Invariant 1 holds.  Returns ``(target level,
    desire work)`` per slot.  The charge totals returned here feed only
    worker telemetry — the authoritative fold is computed by the task's
    ``finish`` step, which re-evaluates movers invalidated by
    earlier same-round moves.
    """
    lv_name, adj_name, n, adj_ints, bounds = ctx
    levels, offsets, nbrs = _image_views(lv_name, adj_name, n, adj_ints)
    results: list[tuple[int, int]] = []
    total_work = 0
    for slot in payloads:
        old = levels[slot]
        u = 0
        counts: dict[int, int] = {}
        for k in range(offsets[slot], offsets[slot + 1]):
            lw = levels[nbrs[k]]
            if lw >= old:
                u += 1
                counts[lw] = counts.get(lw, 0) + 1
        cnt = u
        counts_get = counts.get
        j = old
        while True:
            j += 1
            dropped = counts_get(j - 1)
            if dropped:
                cnt -= dropped
            if cnt <= bounds[j]:
                break
        work = max(1, u + (j - old))
        results.append((j, work))
        total_work += work
    return results, total_work, 0


def attach_rise_task(
    plds: Any,
    body: Callable[[int], None],
    moved: set[int],
    rise_marks: list[tuple[int, int]],
) -> None:
    """Attach a :class:`PoolTask` for the jump-rise scan to ``body``.

    Workers evaluate each mover's desire level against the flushed
    snapshot (:func:`rise_chunk`); the ``finish`` step then walks movers
    in canonical ascending-id order applying the moves in the main
    process.  Within one rise round all movers sit at the same level, so
    an earlier mover can invalidate a later mover's snapshot result only
    by *being its neighbor* (the mover's own up-set membership is
    otherwise untouched by same-level peers rising).  ``finish``
    therefore keeps the set of already-moved slots and recomputes the
    desire walk live for exactly the movers adjacent to it — every other
    worker result is provably identical to what the sequential cascade
    would compute — making coreness AND metered totals bit-identical to
    the simulated backend.
    """
    slot_of = plds._slot_of

    def prepare(items: Sequence[int]) -> tuple[Any, Callable[[], None]]:
        image = plds.tracker.resident_image(plds)
        lv_name, adj_name, n, adj_ints = image.flush(plds)
        ctx = (lv_name, adj_name, n, adj_ints, list(plds._inv1_bound_int))
        return ctx, _noop

    def encode(v: int) -> int:
        return slot_of[v]

    def finish(
        items: Sequence[int], results: list[tuple[int, int]]
    ) -> tuple[int, int]:
        lv = plds._lv
        ups = plds._up
        vid = plds._vid
        bounds = plds._inv1_bound_int
        moved_add = moved.add
        marks_append = rise_marks.append
        applied: set[int] = set()
        total_work = 0
        for v, res in zip(items, results):
            i = slot_of[v]
            up_i = ups[i]
            if applied and not applied.isdisjoint(up_i):
                # A neighbor already rose this round: the snapshot walk
                # may be stale — redo it against live levels (this is
                # exactly the walk the inline body would run here).
                target, desire_work = plds._up_desire_calc(i)
            else:
                target, desire_work = res
            # |U[v]| is captured before the move, like the inline
            # _move_up_to_slot charge.
            total_work += desire_work + max(1, len(up_i))
            newly_marked = plds._move_up_raw(i, target)
            moved_add(v)
            if len(up_i) > bounds[lv[i]]:
                newly_marked.append(i)
            for j in newly_marked:
                marks_append((lv[j], vid[j]))
            applied.add(i)
        depth = plds._levels_depth + plds._mut_depth if items else 0
        return total_work, depth

    body.pool_task = PoolTask(  # type: ignore[attr-defined]
        prepare, encode, rise_chunk, None, finish=finish
    )


# ----------------------------------------------------------------------
# The shard-kernel consider task (ghost-exchange desire evaluation)
# ----------------------------------------------------------------------


def attach_shard_consider_task(kernel: Any, body: Callable[[int], None]) -> None:
    """Attach a :class:`PoolTask` for a shard kernel's post-exchange
    desire evaluation to ``body``.

    The kernel's resident image covers local *and* ghost records (the
    CSR row of a local vertex references ghost slots, whose levels are
    in the shared vector), so :func:`consider_chunk` runs unchanged per
    shard.  Results apply the kernel's ``_consider`` effect — desire
    assignment plus pending-bucket insertion — in canonical order.
    """

    def prepare(items: Sequence[int]) -> tuple[Any, Callable[[], None]]:
        image = kernel.tracker.resident_image(kernel)
        lv_name, adj_name, n, adj_ints = image.flush(kernel)
        ctx = (
            lv_name,
            adj_name,
            n,
            adj_ints,
            list(kernel._inv2_thresh_int),
            kernel._levels_depth,
        )
        return ctx, _noop

    def encode(v: int) -> int:
        return kernel._pool_slot_of[v]

    def apply(v: int, result: tuple[int, int] | None) -> None:
        if result is None:
            return
        dl, _scanned = result
        kernel._desire[v] = dl
        bucket = kernel._pending.get(dl)
        if bucket is None:
            kernel._pending[dl] = {v}
        else:
            bucket.add(v)

    body.pool_task = PoolTask(  # type: ignore[attr-defined]
        prepare, encode, consider_chunk, apply
    )
