"""Process-pool execution backend: a ``flat_parfor`` that actually fans out.

:class:`PoolBackend` is a :class:`~repro.parallel.engine.WorkDepthTracker`
whose ``flat_parfor`` dispatches *pool-capable* bodies to a
``ProcessPoolExecutor`` instead of simulating the parallel loop inline.
A body advertises pool capability by carrying a :class:`PoolTask`
attribute (see :func:`attach_consider_task`); bodies without one — every
mutating cascade step — run through the inherited simulated path
unchanged, so the backend is a strict superset of the simulated one.

Shared state travels through ``multiprocessing.shared_memory``: the flat
engine's contiguous int32 level image (see
:meth:`repro.core.plds_flat.PLDSFlat._level_bytes`) is
copied into a shared segment with one ``memcpy`` per dispatch, and every
worker maps that segment directly — per-worker access is zero-copy; no
per-vertex state is pickled.  Workers return, per chunk, the results
plus the metered ``(sum of works, max of depths)`` of their items; the
main process folds those into the enclosing frame with exactly the
composition the simulated ``flat_parfor`` uses, so metered totals are
bit-identical between backends (gated by ``tests/test_backend.py``).

Only read-only scans are pool-dispatched.  The deletion-phase
desire-level scan (Algorithm 4 over the affected set) is the one PLDS
phase with no structural mutations — each item reads levels and
adjacency and emits a (desire-level, scanned) pair — which makes it
safe to execute concurrently *and* keeps the sequential/parallel
equivalence of the paper's Lemma 5.9 trivially intact.  Results are
applied in the main process in canonical item order.

When ``shared_memory`` (or process pools) are unavailable the backend
falls back to the simulated path with a ``RuntimeWarning`` and an
``engine.pool_fallback.calls`` obs counter instead of crashing.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, Sequence, TypeVar

from . import engine as _engine
from .engine import WorkDepthTracker

# The *engine* module stays import-clean of repro.obs (hooks are pushed
# in via set_obs_hook); the pool backend is a leaf above it and may
# consult the observability globals directly, like the shard layer does.
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing

try:  # pragma: no cover - import always succeeds on CPython >= 3.8/posix
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_context
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without shm support
    ProcessPoolExecutor = None  # type: ignore[assignment,misc]
    get_context = None  # type: ignore[assignment]
    _shm = None  # type: ignore[assignment]

#: Patch point: tests (and exotic platforms) set this to ``None`` to
#: exercise the fallback guard without uninstalling ``_posixshmem``.
shared_memory = _shm

T = TypeVar("T")

__all__ = [
    "PoolBackend",
    "PoolTask",
    "WorkerTally",
    "merge_worker_tallies",
    "attach_consider_task",
    "consider_chunk",
]

#: One worker's share of a dispatch: ``(worker, slot_lo, slot_hi, tasks,
#: work)`` — ``[slot_lo, slot_hi)`` is the contiguous item-index range
#: the worker's chunk covered.
WorkerTally = tuple[int, int, int, int, int]


def merge_worker_tallies(
    registry: "_metrics.MetricsRegistry", tallies: "Sequence[WorkerTally]"
) -> None:
    """Fold per-worker dispatch tallies into ``engine.pool.*`` series.

    Iterates in worker-id order, so the merge is independent of the
    order chunks completed (counter adds commute and each worker's
    slot-range gauges are written exactly once per dispatch).
    """
    for worker, lo, hi, tasks, work in sorted(tallies):
        registry.inc("engine.pool.tasks", tasks, worker=worker)
        registry.inc("engine.pool.work", work, worker=worker)
        registry.gauge("engine.pool.slot_lo", lo, worker=worker)
        registry.gauge("engine.pool.slot_hi", hi, worker=worker)


class PoolTask:
    """How to run one ``flat_parfor`` body on worker processes.

    - ``prepare(items)`` runs in the main process and returns
      ``(ctx, cleanup)``: a picklable context shared by every chunk
      (typically holding a shared-memory segment name) and a
      zero-argument cleanup callback invoked after the dispatch.
    - ``encode(item)`` turns one item into a picklable payload.
    - ``chunk_fn(ctx, payloads)`` is an importable module-level function
      executed on workers; it returns ``(results, work, depth)`` where
      ``work``/``depth`` are the sum/max of the per-item charges the
      inline body would have metered.
    - ``apply(item, result)`` runs in the main process, in canonical
      item order, to integrate one result.  It must not charge the
      tracker — the fold already accounts for the full scan.
    """

    __slots__ = ("prepare", "encode", "chunk_fn", "apply")

    def __init__(
        self,
        prepare: Callable[[Sequence[Any]], tuple[Any, Callable[[], None]]],
        encode: Callable[[Any], Any],
        chunk_fn: Callable[..., tuple[list[Any], int, int]],
        apply: Callable[[Any, Any], None],
    ) -> None:
        self.prepare = prepare
        self.encode = encode
        self.chunk_fn = chunk_fn
        self.apply = apply


class PoolBackend(WorkDepthTracker):
    """A tracker whose ``flat_parfor`` fans pool-capable bodies out.

    Parameters
    ----------
    workers:
        Worker process count (and chunk count per dispatch).
    min_dispatch:
        Below this many items a dispatch is not worth two IPC round
        trips; the body runs through the inherited simulated path
        (observationally identical, so this is purely a policy knob).
    """

    #: Marker consulted by pool-aware algorithms (e.g. the flat engine's
    #: deletion rebalance) to decide whether building a PoolTask is
    #: worth the closure allocations.
    pool_tasks = True

    def __init__(self, workers: int = 2, min_dispatch: int = 8) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.min_dispatch = min_dispatch
        #: dispatches that actually reached the process pool.
        self.dispatches = 0
        #: dispatches that fell back to the simulated path because the
        #: shared-memory substrate is unavailable.
        self.fallbacks = 0
        self._executor: Any = None
        self._warned = False

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> Any:
        if self._executor is None:
            ctx = None
            if get_context is not None:
                try:
                    ctx = get_context("fork")
                except ValueError:  # pragma: no cover - non-posix
                    ctx = None
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- execution -----------------------------------------------------

    def _note_fallback(self) -> None:
        self.fallbacks += 1
        hook = _engine._OBS_HOOK
        if hook is not None:
            hook("engine.pool_fallback")
        if not self._warned:
            self._warned = True
            warnings.warn(
                "multiprocessing.shared_memory unavailable; PoolBackend is "
                "falling back to the simulated execution path",
                RuntimeWarning,
                stacklevel=4,
            )

    def flat_parfor(
        self, items: Iterable[T], body: Callable[[T], None]
    ) -> None:
        task: PoolTask | None = getattr(body, "pool_task", None)
        if task is not None:
            seq = list(items)
            if len(seq) >= self.min_dispatch:
                if shared_memory is None or ProcessPoolExecutor is None:
                    self._note_fallback()
                else:
                    self._dispatch(seq, task)
                    return
            items = seq
        super().flat_parfor(items, body)

    def _dispatch(self, items: Sequence[T], task: PoolTask) -> None:
        tracer = _tracing.ACTIVE
        if tracer is None:
            self._dispatch_run(items, task)
            return
        # Spanning over self: the fold's self.add lands inside, so the
        # pool.dispatch span's work/depth equal the dispatch's metered
        # (sum, max) exactly.
        span = tracer.begin(
            "pool.dispatch",
            self,
            items=len(items),
            workers=min(self.workers, max(1, len(items))),
        )
        try:
            self._dispatch_run(items, task)
        except BaseException as exc:
            tracer.end(span, error=type(exc).__name__)
            raise
        tracer.end(span)

    def _dispatch_run(self, items: Sequence[T], task: PoolTask) -> None:
        # Same observable protocol as the simulated flat_parfor: the
        # engine.parfor hooks fire exactly once per parallel loop, and
        # the fold into the enclosing frame is (sum of per-item works,
        # max of per-item depths).
        fault_hook = _engine._FAULT_HOOK
        if fault_hook is not None:
            fault_hook("engine.parfor")
        obs_hook = _engine._OBS_HOOK
        if obs_hook is not None:
            obs_hook("engine.parfor")
        ctx, cleanup = task.prepare(items)
        tallies: list[WorkerTally] = []
        try:
            payloads = [task.encode(item) for item in items]
            n_chunks = min(self.workers, len(payloads))
            size = -(-len(payloads) // n_chunks)  # ceil division
            executor = self._ensure_executor()
            futures = [
                executor.submit(task.chunk_fn, ctx, payloads[i : i + size])
                for i in range(0, len(payloads), size)
            ]
            total_work = 0
            max_depth = 0
            chunk_results: list[list[Any]] = []
            for worker, future in enumerate(futures):  # deterministic order
                results, work, depth = future.result()
                total_work += work
                if depth > max_depth:
                    max_depth = depth
                chunk_results.append(results)
                lo = worker * size
                hi = min(lo + size, len(payloads))
                tallies.append((worker, lo, hi, hi - lo, work))
        finally:
            cleanup()
        self.dispatches += 1
        index = 0
        for results in chunk_results:
            for result in results:
                task.apply(items[index], result)
                index += 1
        self.add(total_work, max_depth)
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("engine.pool.dispatches")
            merge_worker_tallies(mreg, tallies)


# ----------------------------------------------------------------------
# The consider-scan task (Algorithm 4 over the affected set)
# ----------------------------------------------------------------------


def consider_chunk(
    ctx: tuple[str, int, list[int], int],
    payloads: list[tuple[int, list[int]]],
) -> tuple[list[tuple[int, int] | None], int, int]:
    """Worker-side kernel for the deletion-phase desire-level scan.

    ``ctx`` is ``(segment name, live slot count, Invariant-2 integer
    thresholds, depth charge per scan)``; each payload is ``(slot,
    neighbor slots)``.  Levels are read straight out of the shared
    segment.  Per item the kernel replicates the inline body exactly:
    nothing for level-0 or non-violating vertices, otherwise the
    Algorithm-4 downward scan returning ``(desire level, scanned)`` and
    charging ``(scanned, levels_depth)``.
    """
    name, n, thresholds, levels_depth = ctx
    # Attaching re-registers the segment with the resource tracker; the
    # tracker process is shared with the owner (fork) and its cache is a
    # set, so the duplicate collapses and the owner's unlink() is the
    # single deregistration.
    segment = shared_memory.SharedMemory(name=name)
    try:
        levels = memoryview(segment.buf)[: 4 * n].cast("i")
        results: list[tuple[int, int] | None] = []
        total_work = 0
        max_depth = 0
        for slot, nbrs in payloads:
            lvl = levels[slot]
            if lvl == 0:
                results.append(None)
                continue
            # Histogram the neighbor levels; the up/down split of the
            # flat structures is exactly the level rule, so bucket sizes
            # are recoverable from levels alone.
            len_up = 0
            counts: dict[int, int] = {}
            for j in nbrs:
                lw = levels[j]
                if lw >= lvl:
                    len_up += 1
                else:
                    counts[lw] = counts.get(lw, 0) + 1
            up_star = len_up + counts.get(lvl - 1, 0)
            if up_star >= thresholds[lvl]:
                results.append(None)
                continue
            cnt = len_up
            scanned = 1
            best = 0
            counts_get = counts.get
            for lprime in range(lvl, 0, -1):
                c = counts_get(lprime - 1, 0)
                if c:
                    cnt += c
                scanned += 1
                if cnt >= thresholds[lprime]:
                    best = lprime
                    break
            results.append((best, scanned))
            total_work += scanned
            if levels_depth > max_depth:
                max_depth = levels_depth
        levels.release()
        return results, total_work, max_depth
    finally:
        segment.close()


def attach_consider_task(
    plds: Any,
    body: Callable[[int], None],
    desire: Any,
    pending: dict[int, list[int]],
) -> None:
    """Attach a :class:`PoolTask` for the consider scan to ``body``.

    ``plds`` is a :class:`~repro.core.plds_flat.PLDSFlat`; ``desire`` is
    its per-batch desire array and ``pending`` the cascade buckets.  The
    task ships the live level array through shared memory, has workers
    run :func:`consider_chunk`, and applies results (desire assignment +
    pending marks) in canonical order — byte-for-byte the effect of the
    inline body.
    """
    from ..core.plds import _mark

    slot_of = plds._slot_of
    ups = plds._up
    downs = plds._down

    def prepare(items: Sequence[int]) -> tuple[Any, Callable[[], None]]:
        n = plds._n
        nbytes = 4 * n
        segment = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        segment.buf[:nbytes] = plds._level_bytes()
        ctx = (
            segment.name,
            n,
            list(plds._inv2_thresh_int),
            plds._levels_depth,
        )

        def cleanup() -> None:
            segment.close()
            segment.unlink()

        return ctx, cleanup

    def encode(w: int) -> tuple[int, list[int]]:
        i = slot_of[w]
        nbrs = list(ups[i])
        for bucket in downs[i].values():
            nbrs.extend(bucket)
        return i, nbrs

    def apply(w: int, result: tuple[int, int] | None) -> None:
        if result is None:
            return
        dl, _scanned = result
        desire[slot_of[w]] = dl
        _mark(pending, dl, w)

    body.pool_task = PoolTask(  # type: ignore[attr-defined]
        prepare, encode, consider_chunk, apply
    )
