"""Metered parallel hash table.

The paper (Section 2, citing [42]) assumes parallel hash tables that
support ``n`` insertions or deletions in O(n) work and O(log* n) depth
w.h.p., and ``n`` membership queries in O(n) work and O(1) depth w.h.p.
The PLDS implementation (Section 6.1) uses concurrent linear-probing
tables with tombstone deletion.

This module provides :class:`ParallelHashSet` and :class:`ParallelHashMap`
— deterministic dict/set-backed structures that charge those costs to a
:class:`~repro.parallel.engine.WorkDepthTracker`.  ``log*`` is so small for
any feasible input that we charge a constant ``LOG_STAR_DEPTH`` per batched
mutation, which is asymptotically faithful for every n < 2^65536.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from .engine import WorkDepthTracker

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["ParallelHashSet", "ParallelHashMap", "LOG_STAR_DEPTH"]

#: Depth charged per batched hash-table mutation — stands in for O(log* n),
#: which is <= 5 for any n < 2^65536.
LOG_STAR_DEPTH = 5


def _sized(items: Iterable[K]) -> "Iterable[K]":
    """Return ``items`` unchanged if it knows its length, else a list.

    Batch operations need ``len`` for the work charge; copying an input
    that is already a list/set/tuple/view would double the real work of
    every batched call for nothing.
    """
    return items if hasattr(items, "__len__") else list(items)


class ParallelHashSet(Generic[K]):
    """A set with metered batch operations.

    Single-element operations charge unit work; batch operations charge
    O(batch) work and O(log* n) depth, matching [42].
    """

    __slots__ = ("_data", "_tracker")

    def __init__(
        self, tracker: WorkDepthTracker, items: Iterable[K] = ()
    ) -> None:
        self._tracker = tracker
        self._data: set[K] = set(items)
        if self._data:
            tracker.add(work=len(self._data), depth=LOG_STAR_DEPTH)

    # -- single-element ops (unit work, unit depth) --------------------

    def add(self, item: K) -> None:
        self._tracker.add(work=1, depth=1)
        self._data.add(item)

    def discard(self, item: K) -> None:
        self._tracker.add(work=1, depth=1)
        self._data.discard(item)

    def __contains__(self, item: K) -> bool:
        self._tracker.add(work=1, depth=1)
        return item in self._data

    # -- batch ops ------------------------------------------------------

    def add_batch(self, items: Iterable[K]) -> None:
        items = _sized(items)
        self._tracker.add(work=max(1, len(items)), depth=LOG_STAR_DEPTH)
        self._data.update(items)

    def discard_batch(self, items: Iterable[K]) -> None:
        items = _sized(items)
        self._tracker.add(work=max(1, len(items)), depth=LOG_STAR_DEPTH)
        self._data.difference_update(items)

    def contains_batch(self, items: Iterable[K]) -> list[bool]:
        items = _sized(items)
        self._tracker.add(work=max(1, len(items)), depth=1)
        return [x in self._data for x in items]

    # -- iteration / size (free reads of a materialized structure) ------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def as_set(self) -> set[K]:
        """Direct (unmetered) view for assertions and tests."""
        return self._data


class ParallelHashMap(Generic[K, V]):
    """A map with metered batch operations (same cost model as the set)."""

    __slots__ = ("_data", "_tracker")

    def __init__(self, tracker: WorkDepthTracker) -> None:
        self._tracker = tracker
        self._data: dict[K, V] = {}

    def __setitem__(self, key: K, value: V) -> None:
        self._tracker.add(work=1, depth=1)
        self._data[key] = value

    def __getitem__(self, key: K) -> V:
        self._tracker.add(work=1, depth=1)
        return self._data[key]

    def __delitem__(self, key: K) -> None:
        self._tracker.add(work=1, depth=1)
        del self._data[key]

    def __contains__(self, key: K) -> bool:
        self._tracker.add(work=1, depth=1)
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        self._tracker.add(work=1, depth=1)
        return self._data.get(key, default)

    def set_batch(self, pairs: Iterable[tuple[K, V]]) -> None:
        pairs = _sized(pairs)
        self._tracker.add(work=max(1, len(pairs)), depth=LOG_STAR_DEPTH)
        self._data.update(pairs)

    def delete_batch(self, keys: Iterable[K]) -> None:
        keys = _sized(keys)
        self._tracker.add(work=max(1, len(keys)), depth=LOG_STAR_DEPTH)
        for k in keys:
            self._data.pop(k, None)

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def items(self) -> Iterable[tuple[K, V]]:
        return self._data.items()

    def as_dict(self) -> dict[K, V]:
        """Direct (unmetered) view for assertions and tests."""
        return self._data
