"""Synthetic graph generators — laptop-scale analogs of the paper's datasets.

The paper evaluates on 11 real-world graphs (Table 3) spanning three
density regimes:

- *social/web networks* (dblp, wiki, youtube, stackoverflow, livejournal,
  orkut, twitter, friendster): power-law degree distributions, moderate to
  large max core numbers;
- *road networks* (ctr, usa): near-planar, max core 2–3;
- *brain*: very dense, max core ~1200.

We cannot ship billion-edge datasets, so :func:`dataset_suite` generates a
synthetic analog per dataset that preserves the density regime (degeneracy
class) at a size that runs in seconds.  Every generator is deterministic
given a seed.

All generators return edge lists of canonical ``(u, v)`` tuples with
``u < v``, no duplicates, no self-loops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .dynamic_graph import canonical_edge

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "grid_2d",
    "dense_cluster_graph",
    "ring_of_cliques",
    "small_world",
    "planted_clique",
    "DatasetSpec",
    "dataset_suite",
]


def _dedupe(edges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    for u, v in edges:
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


def erdos_renyi(n: int, m: int, seed: int = 0) -> list[tuple[int, int]]:
    """G(n, m): m distinct uniform random edges."""
    if m > n * (n - 1) // 2:
        raise ValueError("too many edges requested")
    rng = random.Random(seed)
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    while len(out) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


def barabasi_albert(n: int, k: int, seed: int = 0) -> list[tuple[int, int]]:
    """Preferential attachment: each new vertex attaches to ``k`` targets.

    Produces power-law degree distributions like the paper's social
    networks; degeneracy is ~k.
    """
    if n <= k:
        raise ValueError("need n > k")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    # Start from a k+1 clique so early vertices have degree.
    targets = list(range(k + 1))
    for u in range(k + 1):
        for v in range(u + 1, k + 1):
            edges.append((u, v))
    repeated: list[int] = []
    for u, v in edges:
        repeated.extend((u, v))
    for new in range(k + 1, n):
        chosen: set[int] = set()
        while len(chosen) < k:
            chosen.add(rng.choice(repeated))
        for t in chosen:
            edges.append(canonical_edge(new, t))
            repeated.extend((new, t))
    return _dedupe(edges)


def rmat(
    scale: int,
    edge_factor: int,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> list[tuple[int, int]]:
    """RMAT/Kronecker generator (skewed, community-structured, web-like)."""
    rng = random.Random(seed)
    n = 1 << scale
    m_target = edge_factor * n
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < m_target and attempts < 20 * m_target:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e not in seen:
            seen.add(e)
            edges.append(e)
    return edges


def grid_2d(rows: int, cols: int) -> list[tuple[int, int]]:
    """2-D grid lattice: road-network analog (max core exactly 2)."""
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def dense_cluster_graph(
    n_clusters: int, cluster_size: int, inter_edges: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Union of cliques plus random inter-cluster edges.

    Brain-network analog: extremely dense local structure, so the max core
    is ~cluster_size - 1 — large relative to n, like the paper's *brain*
    graph (max core 1200 on 784k vertices).
    """
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    n = n_clusters * cluster_size
    for ci in range(n_clusters):
        base = ci * cluster_size
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                edges.append((base + i, base + j))
    for _ in range(inter_edges):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.append(canonical_edge(u, v))
    return _dedupe(edges)


def ring_of_cliques(n_cliques: int, clique_size: int) -> list[tuple[int, int]]:
    """Cliques joined in a ring by single edges — known coreness structure.

    Every clique vertex has coreness ``clique_size - 1``, which makes this
    family convenient for exactness tests.
    """
    edges: list[tuple[int, int]] = []
    for ci in range(n_cliques):
        base = ci * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((ci + 1) % n_cliques) * clique_size
        if n_cliques > 1 and (n_cliques > 2 or ci == 0):
            edges.append(canonical_edge(base, nxt))
    return _dedupe(edges)


def small_world(n: int, k: int, rewire: float, seed: int = 0) -> list[tuple[int, int]]:
    """Watts–Strogatz ring lattice with rewiring (wiki-style analog)."""
    if k % 2 or k >= n:
        raise ValueError("k must be even and < n")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for j in range(1, k // 2 + 1):
            edges.add(canonical_edge(u, (u + j) % n))
    out: set[tuple[int, int]] = set()
    for e in sorted(edges):
        if rng.random() < rewire:
            u = e[0]
            for _ in range(10):
                w = rng.randrange(n)
                cand = canonical_edge(u, w)
                if w != u and cand not in out and cand not in edges:
                    e = cand
                    break
        out.add(e)
    return sorted(out)


def planted_clique(
    n: int, m_background: int, clique_size: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Sparse background graph plus one planted clique on vertices 0..k-1."""
    edges = set(erdos_renyi(n, m_background, seed=seed))
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.add((i, j))
    return sorted(edges)


@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic analog of one paper dataset."""

    name: str
    paper_name: str
    regime: str
    edges: list[tuple[int, int]] = field(repr=False)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        vs: set[int] = set()
        for u, v in self.edges:
            vs.add(u)
            vs.add(v)
        return len(vs)


def dataset_suite(scale: float = 1.0, seed: int = 42) -> list[DatasetSpec]:
    """Synthetic analog of the paper's Table-3 dataset suite.

    ``scale`` multiplies the base sizes (default sizes run each dynamic
    experiment in seconds).  Regimes match the originals: power-law social
    graphs, dense brain-like graph, near-planar road networks, temporal-ish
    small worlds.
    """

    def s(x: int) -> int:
        return max(4, int(x * scale))

    suite = [
        DatasetSpec(
            "dblp-analog", "dblp", "social/collab",
            barabasi_albert(s(800), 4, seed=seed),
        ),
        DatasetSpec(
            "brain-analog", "brain", "dense biological",
            dense_cluster_graph(max(2, s(8)), 24, s(300), seed=seed + 1),
        ),
        DatasetSpec(
            "wiki-analog", "wiki", "temporal small-world",
            small_world(s(900), 6, 0.2, seed=seed + 2),
        ),
        DatasetSpec(
            "youtube-analog", "youtube", "social",
            barabasi_albert(s(1000), 3, seed=seed + 3),
        ),
        DatasetSpec(
            "stackoverflow-analog", "stackoverflow", "temporal social",
            rmat(max(6, (s(512)).bit_length()), 8, seed=seed + 4),
        ),
        DatasetSpec(
            "livejournal-analog", "livejournal", "social",
            barabasi_albert(s(1200), 6, seed=seed + 5),
        ),
        DatasetSpec(
            "orkut-analog", "orkut", "dense social",
            barabasi_albert(s(700), 12, seed=seed + 6),
        ),
        DatasetSpec(
            "ctr-analog", "ctr", "road (max core 2)",
            grid_2d(s(36), s(36)),
        ),
        DatasetSpec(
            "usa-analog", "usa", "road (max core 2)",
            grid_2d(s(45), s(45)),
        ),
        DatasetSpec(
            "twitter-analog", "twitter", "heavy-tail social",
            rmat(max(7, (s(1024)).bit_length()), 12, seed=seed + 7),
        ),
        DatasetSpec(
            "friendster-analog", "friendster", "massive social",
            barabasi_albert(s(1500), 8, seed=seed + 8),
        ),
    ]
    return suite
