"""Adversarial update workloads from the paper's lower-bound discussions.

Section 3 motivates approximation with worst cases for exact maintenance:

- :func:`cycle_toggle`: "consider a cycle with one edge removed...
  removing and adding the edge into this cycle, repeatedly in
  succession, causes the coreness of all vertices to change by one with
  each update" — Θ(n) changed outputs per single update.
- :func:`cascade_chain`: the Figure-4 construction where one deletion
  triggers a cascade of one-level moves in the sequential LDS, repeated
  by toggling the same edge.
- :func:`clique_pulse`: grow a clique edge by edge and tear it down,
  pushing vertices through many levels (large coreness swings).
- :func:`star_pulse`: pulse a hub's incident edges — stresses vertices
  with high degree but low coreness.

Each generator returns ``(initial_edges, batches)``: build the graph
from ``initial_edges``, then apply the batches in order.  These are
*adaptive*-adversary-style scripts (they depend on structure, not
randomness), matching the adversary model of Theorems 3.1–3.6.
"""

from __future__ import annotations

from .dynamic_graph import canonical_edge
from .streams import Batch

__all__ = [
    "cycle_toggle",
    "cascade_chain",
    "clique_pulse",
    "star_pulse",
]


def cycle_toggle(
    n: int, toggles: int
) -> tuple[list[tuple[int, int]], list[Batch]]:
    """An n-cycle whose closing edge is toggled ``toggles`` times.

    Every toggle flips the exact coreness of *all* n vertices between 1
    and 2 — the paper's canonical argument that exact maintenance cannot
    be output-sensitive.
    """
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    cycle = [canonical_edge(i, (i + 1) % n) for i in range(n)]
    closing = cycle[-1]
    batches: list[Batch] = []
    for _ in range(toggles):
        batches.append(Batch(deletions=[closing]))
        batches.append(Batch(insertions=[closing]))
    return cycle, batches


def cascade_chain(
    length: int, toggles: int
) -> tuple[list[tuple[int, int]], list[Batch]]:
    """The Figure-4 cascade: a chain of triangles sharing vertices.

    Deleting the head edge starves the first triangle, whose demotion
    starves the next, and so on — each toggle re-runs the full cascade.
    """
    if length < 1:
        raise ValueError("need length >= 1")
    edges: list[tuple[int, int]] = []
    # triangle i uses vertices (2i, 2i+1, 2i+2); consecutive triangles
    # share a vertex, forming the dependency chain.
    for i in range(length):
        a, b, c = 2 * i, 2 * i + 1, 2 * i + 2
        edges.extend(
            canonical_edge(x, y) for x, y in ((a, b), (b, c), (a, c))
        )
    edges = list(dict.fromkeys(edges))
    head = canonical_edge(0, 1)
    batches: list[Batch] = []
    for _ in range(toggles):
        batches.append(Batch(deletions=[head]))
        batches.append(Batch(insertions=[head]))
    return edges, batches


def clique_pulse(
    k: int, pulses: int
) -> tuple[list[tuple[int, int]], list[Batch]]:
    """Grow a k-clique one batch at a time, then tear it down; repeat.

    Coreness of the clique members sweeps 1..k-1 and back — maximal
    vertical movement through the level structure.
    """
    if k < 3:
        raise ValueError("need k >= 3")
    all_edges = [
        canonical_edge(i, j) for i in range(k) for j in range(i + 1, k)
    ]
    spanning = all_edges[: k - 1]
    rest = all_edges[k - 1 :]
    batches: list[Batch] = []
    for _ in range(pulses):
        batches.append(Batch(insertions=list(rest)))
        batches.append(Batch(deletions=list(rest)))
    return spanning, batches


def star_pulse(
    leaves: int, pulses: int
) -> tuple[list[tuple[int, int]], list[Batch]]:
    """Pulse all edges of a star with the given number of leaves.

    The hub has huge degree but coreness 1 — stresses the gap between
    degree-driven and coreness-driven data structures.
    """
    if leaves < 1:
        raise ValueError("need leaves >= 1")
    spokes = [canonical_edge(0, i) for i in range(1, leaves + 1)]
    batches: list[Batch] = []
    for _ in range(pulses):
        batches.append(Batch(deletions=list(spokes)))
        batches.append(Batch(insertions=list(spokes)))
    return spokes, batches
