"""Graph substrate: dynamic graphs, generators, update streams, IO."""

from .dynamic_graph import DynamicGraph, canonical_edge
from .generators import (
    DatasetSpec,
    barabasi_albert,
    dataset_suite,
    dense_cluster_graph,
    erdos_renyi,
    grid_2d,
    planted_clique,
    ring_of_cliques,
    rmat,
    small_world,
)
from .io import read_edge_list, write_edge_list
from .adversarial import (
    cascade_chain,
    clique_pulse,
    cycle_toggle,
    star_pulse,
)
from .streams import (
    Batch,
    EdgeUpdate,
    deletion_batches,
    insertion_batches,
    mixed_batch,
    preprocess_batch,
    sliding_window_batches,
)

__all__ = [
    "DynamicGraph",
    "canonical_edge",
    "DatasetSpec",
    "barabasi_albert",
    "dataset_suite",
    "dense_cluster_graph",
    "erdos_renyi",
    "grid_2d",
    "planted_clique",
    "ring_of_cliques",
    "rmat",
    "small_world",
    "read_edge_list",
    "write_edge_list",
    "Batch",
    "EdgeUpdate",
    "deletion_batches",
    "insertion_batches",
    "mixed_batch",
    "preprocess_batch",
    "sliding_window_batches",
    "cascade_chain",
    "clique_pulse",
    "cycle_toggle",
    "star_pulse",
]
