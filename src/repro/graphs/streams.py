"""Update-stream generation: the paper's Ins / Del / Mix experiments.

Section 6 ("Ins/Del/Mix Experiments") defines three batched-update
protocols:

- **Ins**: starting from an empty graph, all edges are inserted in batches
  of size ``|B|`` (in a random permutation order, or temporal order for
  temporal graphs).
- **Del**: starting from the full graph, all edges are deleted in batches
  of size ``|B|``.
- **Mix**: starting from the graph minus a random set ``I`` of ``|B|/2``
  edges, one batch containing the insertions ``I`` plus ``|B|/2`` random
  deletions ``D`` (disjoint from ``I``) is applied.

This module also provides batch *preprocessing* (Section 8): deduplicating
updates per edge (latest timestamp wins) and filtering to valid updates
(insert only non-existent edges, delete only existing ones), plus the
write-ahead :class:`UpdateJournal` the serving layer uses for
transactional batch application and crash recovery.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .dynamic_graph import DynamicGraph, canonical_edge

__all__ = [
    "EdgeUpdate",
    "Batch",
    "JournalRecord",
    "JournalTruncation",
    "UpdateJournal",
    "insertion_batches",
    "deletion_batches",
    "mixed_batch",
    "sliding_window_batches",
    "preprocess_batch",
    "validate_vertex_ids",
]


@dataclass(frozen=True)
class EdgeUpdate:
    """A single timestamped edge update.

    Vertex ids are non-negative by construction — a negative id is a
    corrupted update, not a graph mutation, and is rejected here so it
    cannot travel any further down the pipeline.
    """

    u: int
    v: int
    is_insert: bool
    timestamp: int = 0

    def __post_init__(self) -> None:
        if self.u < 0 or self.v < 0:
            raise ValueError(f"negative vertex id in update {self!r}")

    @property
    def edge(self) -> tuple[int, int]:
        return canonical_edge(self.u, self.v)


@dataclass
class Batch:
    """A batch of *unique, valid* edge updates (paper Section 8)."""

    insertions: list[tuple[int, int]] = field(default_factory=list)
    deletions: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Batch(ins={len(self.insertions)}, del={len(self.deletions)})"


def _chunks(seq: Sequence[tuple[int, int]], size: int) -> list[list[tuple[int, int]]]:
    return [list(seq[i : i + size]) for i in range(0, len(seq), size)]


def insertion_batches(
    edges: Sequence[tuple[int, int]],
    batch_size: int,
    seed: int = 0,
    temporal: bool = False,
) -> list[Batch]:
    """Ins protocol: all edges inserted in batches of ``batch_size``.

    ``temporal=True`` keeps the given edge order (the paper does this for
    wiki/stackoverflow); otherwise a seeded random permutation is used.
    """
    order = list(edges)
    if not temporal:
        random.Random(seed).shuffle(order)
    return [Batch(insertions=chunk) for chunk in _chunks(order, batch_size)]


def deletion_batches(
    edges: Sequence[tuple[int, int]],
    batch_size: int,
    seed: int = 0,
    temporal: bool = False,
) -> list[Batch]:
    """Del protocol: all edges deleted in batches of ``batch_size``."""
    order = list(edges)
    if not temporal:
        random.Random(seed + 1).shuffle(order)
    return [Batch(deletions=chunk) for chunk in _chunks(order, batch_size)]


def mixed_batch(
    edges: Sequence[tuple[int, int]],
    batch_size: int,
    seed: int = 0,
) -> tuple[list[tuple[int, int]], Batch]:
    """Mix protocol: returns ``(initial_edges, batch)``.

    ``initial_edges`` is the graph minus a random held-out set ``I`` of
    ``batch_size // 2`` edges; the batch inserts ``I`` and deletes a
    disjoint random set ``D`` of ``batch_size // 2`` existing edges.
    """
    rng = random.Random(seed + 2)
    half = min(batch_size // 2, len(edges) // 2)
    order = list(edges)
    rng.shuffle(order)
    held_out = order[:half]          # to be inserted by the batch
    initial = order[half:]           # present initially
    deletions = initial[:half]       # to be deleted by the batch
    return initial, Batch(insertions=held_out, deletions=deletions)


def sliding_window_batches(
    edges: Sequence[tuple[int, int]],
    window: int,
    batch_size: int,
) -> list[Batch]:
    """Temporal sliding-window protocol.

    Models the paper's temporal graphs (wiki, stackoverflow): edges
    arrive in their given (temporal) order and expire once more than
    ``window`` newer edges have arrived.  Each batch inserts the next
    ``batch_size`` edges and deletes the edges that fall out of the
    window — a realistic mixed workload whose live graph size stays
    roughly constant at ``window``.
    """
    if window < 1 or batch_size < 1:
        raise ValueError("window and batch_size must be >= 1")
    batches: list[Batch] = []
    live: list[tuple[int, int]] = []
    for i in range(0, len(edges), batch_size):
        arriving = list(edges[i : i + batch_size])
        live.extend(arriving)
        expiring: list[tuple[int, int]] = []
        while len(live) > window:
            expiring.append(live.pop(0))
        # An edge that arrives and expires within the same batch would be
        # an insert+delete of the same edge; drop both halves.
        arrive_set = set(arriving)
        cancelled = [e for e in expiring if e in arrive_set]
        if cancelled:
            cancel = set(cancelled)
            arriving = [e for e in arriving if e not in cancel]
            expiring = [e for e in expiring if e not in cancel]
        batches.append(Batch(insertions=arriving, deletions=expiring))
    return batches


def preprocess_batch(
    graph: DynamicGraph,
    updates: Iterable[EdgeUpdate],
) -> Batch:
    """Deduplicate and validate a raw update sequence against ``graph``.

    Per Section 8: sort by (edge, timestamp), keep the latest update per
    edge, then keep only insertions of non-existent edges and deletions of
    existing edges.  Self-loops (invalid in the paper's simple-graph
    setting) are dropped outright.  Insertions and deletions within the
    returned batch are therefore disjoint and individually valid.

    Updates sharing both edge and timestamp are ordered by their position
    in ``updates``, so "latest" deterministically means the one submitted
    last — without the arrival index, equal-timestamp insert/delete pairs
    would tie-break on whatever order ``sorted`` received them in.
    """
    latest: dict[tuple[int, int], EdgeUpdate] = {}
    indexed = sorted(
        enumerate(updates), key=lambda ix: (ix[1].edge, ix[1].timestamp, ix[0])
    )
    for _, upd in indexed:
        if upd.u != upd.v:
            latest[upd.edge] = upd
    batch = Batch()
    for edge, upd in latest.items():
        if upd.is_insert and not graph.has_edge(*edge):
            batch.insertions.append(edge)
        elif not upd.is_insert and graph.has_edge(*edge):
            batch.deletions.append(edge)
    return batch


def validate_vertex_ids(batch: Batch) -> None:
    """Reject negative vertex ids, naming the offending update.

    :class:`EdgeUpdate` already rejects negative ids at construction, so
    streams built from updates are clean; this guards :class:`Batch`
    objects assembled directly from tuples (the ``apply_batch`` path),
    keeping the two entry points consistent.
    """
    for u, v in batch.insertions:
        if u < 0 or v < 0:
            raise ValueError(f"negative vertex id in insertion ({u},{v})")
    for u, v in batch.deletions:
        if u < 0 or v < 0:
            raise ValueError(f"negative vertex id in deletion ({u},{v})")


# ----------------------------------------------------------------------
# Write-ahead update journal (transactional serving, crash recovery)
# ----------------------------------------------------------------------


_JSON_DECODER = json.JSONDecoder()


@dataclass(frozen=True)
class JournalTruncation:
    """Where a corrupt journal was cut and what the prefix preserved.

    Attached to a journal loaded with ``UpdateJournal.load(path,
    recover=True)``; ``line``/``column`` point at the first byte of the
    record that failed to parse (1-based, the convention ``json`` error
    messages use), ``detail`` is the underlying parse error.
    """

    records: int
    committed: int
    line: int
    column: int
    detail: str


@dataclass
class JournalRecord:
    """One journaled batch: the update set plus its transaction status.

    ``status`` follows write-ahead-log semantics: a batch is journaled as
    ``"pending"`` *before* the engine sees it, then marked
    ``"committed"`` once the engine and the graph mirror both accepted
    it, or ``"aborted"`` when every apply attempt failed and the service
    rolled back.  Replaying the committed prefix of a journal
    reconstructs the exact pre-crash batch sequence.
    """

    seq: int
    insertions: tuple[tuple[int, int], ...]
    deletions: tuple[tuple[int, int], ...]
    status: str = "pending"

    def batch(self) -> Batch:
        return Batch(
            insertions=[tuple(e) for e in self.insertions],
            deletions=[tuple(e) for e in self.deletions],
        )


class UpdateJournal:
    """An append-only write-ahead log of served batches.

    The serving layer journals every batch before applying it and
    settles the record afterwards (:meth:`commit` / :meth:`abort`); the
    committed prefix is therefore always a faithful, replayable history
    of the engine's state.  :meth:`to_json_dict` / :meth:`from_json_dict`
    round-trip the log through JSON so a crashed process can be rebuilt
    from disk (``CoreService.from_journal``).
    """

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []
        #: set when this journal was loaded with ``recover=True`` from a
        #: corrupt file: the cut point and what the prefix preserved.
        self.truncation: JournalTruncation | None = None

    def __len__(self) -> int:
        return len(self.records)

    def begin(self, batch: Batch) -> JournalRecord:
        """Append a ``pending`` record for ``batch`` (the write-ahead step)."""
        record = JournalRecord(
            seq=len(self.records) + 1,
            insertions=tuple(tuple(e) for e in batch.insertions),
            deletions=tuple(tuple(e) for e in batch.deletions),
        )
        self.records.append(record)
        return record

    def commit(self, record: JournalRecord) -> None:
        record.status = "committed"

    def abort(self, record: JournalRecord) -> None:
        record.status = "aborted"

    def committed_batches(self) -> list[Batch]:
        """The replayable history: committed batches in sequence order."""
        return [r.batch() for r in self.records if r.status == "committed"]

    # -- serialization -------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "format": 1,
            "records": [
                {
                    "seq": r.seq,
                    "insertions": [list(e) for e in r.insertions],
                    "deletions": [list(e) for e in r.deletions],
                    "status": r.status,
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "UpdateJournal":
        if data.get("format") != 1:
            raise ValueError("unsupported journal format")
        journal = cls()
        for raw in data["records"]:
            if raw["status"] not in ("pending", "committed", "aborted"):
                raise ValueError(f"unknown journal status {raw['status']!r}")
            journal.records.append(
                JournalRecord(
                    seq=int(raw["seq"]),
                    insertions=tuple(
                        (int(u), int(v)) for u, v in raw["insertions"]
                    ),
                    deletions=tuple(
                        (int(u), int(v)) for u, v in raw["deletions"]
                    ),
                    status=raw["status"],
                )
            )
        return journal

    def dump(self, path: str) -> None:
        """Write the journal as JSON (one crash-recovery restore point)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str, recover: bool = False) -> "UpdateJournal":
        """Load a dumped journal, tolerating a corrupt/truncated tail.

        A crash mid-:meth:`dump` leaves a file that parses only up to
        some cut point.  The strict default raises ``ValueError`` naming
        the path, the cut point (line:column), and how many intact
        records a recovery would keep — never a traceback through
        ``json``.  ``recover=True`` instead returns a journal holding
        the intact record prefix, with :attr:`truncation` describing
        what was cut.
        """
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        try:
            journal = cls.from_json_dict(json.loads(text))
        except ValueError as exc:
            prefix, truncation = cls._recover_prefix(text, str(exc))
            if not recover:
                raise ValueError(
                    f"journal {path} is corrupt at line {truncation.line} "
                    f"column {truncation.column} ({truncation.detail}); "
                    f"{truncation.records} intact records "
                    f"({truncation.committed} committed) are recoverable "
                    f"with recover=True (CLI: repro journal --recover)"
                ) from None
            journal = prefix
            journal.truncation = truncation
        return journal

    @classmethod
    def _recover_prefix(
        cls, text: str, detail: str
    ) -> "tuple[UpdateJournal, JournalTruncation]":
        """Scan the intact record prefix out of corrupt journal text.

        Finds the ``"records"`` array and decodes one record object at a
        time (``raw_decode``), stopping — and recording the cut point —
        at the first record that fails to parse or to validate.
        """
        journal = cls()
        match = re.search(r'"records"\s*:\s*\[', text)
        pos = match.end() if match else len(text)
        if match:
            while True:
                while pos < len(text) and text[pos] in " \t\r\n,":
                    pos += 1
                if pos >= len(text) or text[pos] == "]":
                    break
                try:
                    raw, end = _JSON_DECODER.raw_decode(text, pos)
                    record = JournalRecord(
                        seq=int(raw["seq"]),
                        insertions=tuple(
                            (int(u), int(v)) for u, v in raw["insertions"]
                        ),
                        deletions=tuple(
                            (int(u), int(v)) for u, v in raw["deletions"]
                        ),
                        status=raw["status"],
                    )
                    if record.status not in ("pending", "committed", "aborted"):
                        break
                except (ValueError, KeyError, TypeError):
                    break
                journal.records.append(record)
                pos = end
        line = text.count("\n", 0, pos) + 1
        column = pos - text.rfind("\n", 0, pos)
        truncation = JournalTruncation(
            records=len(journal.records),
            committed=sum(
                1 for r in journal.records if r.status == "committed"
            ),
            line=line,
            column=column,
            detail=detail,
        )
        return journal, truncation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        committed = sum(1 for r in self.records if r.status == "committed")
        return f"UpdateJournal({committed}/{len(self.records)} committed)"
