"""Edge-list IO in the SNAP-style whitespace format the paper's datasets use.

Readers apply the same cleaning the paper describes (Section 6,
"Datasets"): duplicate edges, self-loops, and comment lines are dropped,
and the graph is symmetrized (treated as undirected).
"""

from __future__ import annotations

import os
from typing import Iterable

from .dynamic_graph import canonical_edge

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(path: str | os.PathLike[str]) -> list[tuple[int, int]]:
    """Read a whitespace-separated edge list, cleaned per the paper.

    Lines starting with ``#`` or ``%`` are comments.  Returns canonical
    deduplicated edges in first-appearance order.  Malformed or negative
    lines raise ``ValueError`` naming the file and line number.
    """
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: malformed edge line {line!r} "
                    "(expected two whitespace-separated vertex ids)"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from None
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            if u == v:
                continue
            e = canonical_edge(u, v)
            if e not in seen:
                seen.add(e)
                edges.append(e)
    return edges


def write_edge_list(
    path: str | os.PathLike[str], edges: Iterable[tuple[int, int]]
) -> None:
    """Write edges one per line as ``u v``."""
    with open(path, "w", encoding="utf-8") as fh:
        for u, v in edges:
            fh.write(f"{u} {v}\n")
