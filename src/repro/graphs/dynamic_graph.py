"""Dynamic undirected graph.

A simple adjacency-set representation of an undirected, unweighted simple
graph (the paper's setting, Section 2).  Vertices are integers.  Supports
the edge/vertex insertions and deletions that drive every dynamic
algorithm in the repository.

Edges are canonicalized as ``(min(u, v), max(u, v))`` tuples throughout
the codebase.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["DynamicGraph", "canonical_edge"]


def canonical_edge(u: int, v: int) -> tuple[int, int]:
    """Canonical (sorted) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class DynamicGraph:
    """Undirected simple graph under edge/vertex updates.

    Self-loops and duplicate edges are rejected with ``ValueError`` —
    the paper assumes batches are preprocessed to be *valid* (Section 8),
    and :mod:`repro.graphs.streams` performs that preprocessing.
    """

    __slots__ = ("_adj", "_m")

    def __init__(self, edges: Iterable[tuple[int, int]] = ()) -> None:
        self._adj: dict[int, set[int]] = {}
        self._m = 0
        for u, v in edges:
            self.insert_edge(u, v)

    # -- vertices -------------------------------------------------------

    def add_vertex(self, v: int) -> None:
        """Insert an isolated vertex (no-op if present)."""
        self._adj.setdefault(v, set())

    def remove_vertex(self, v: int) -> list[tuple[int, int]]:
        """Delete ``v`` and all incident edges; returns the removed edges."""
        if v not in self._adj:
            raise KeyError(f"vertex {v} not in graph")
        removed = [canonical_edge(v, w) for w in self._adj[v]]
        for w in list(self._adj[v]):
            self.delete_edge(v, w)
        del self._adj[v]
        return removed

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    # -- edges ------------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop ({u},{v}) rejected")
        if self.has_edge(u, v):
            raise ValueError(f"duplicate edge ({u},{v}) rejected")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._m += 1

    def delete_edge(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise ValueError(f"edge ({u},{v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    # -- queries ------------------------------------------------------------

    def neighbors(self, v: int) -> set[int]:
        return self._adj.get(v, set())

    def degree(self, v: int) -> int:
        return len(self._adj.get(v, ()))

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._m

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        """All edges in canonical form, each reported once."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def copy(self) -> "DynamicGraph":
        g = DynamicGraph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._m = self._m
        return g

    def max_degree(self) -> int:
        return max((len(n) for n in self._adj.values()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"
