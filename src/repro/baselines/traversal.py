"""Exact dynamic core maintenance by subcore traversal.

The shared engine behind the *Zhang* and *Hua* baselines.  Implements the
classic exact single-edge-update algorithm (the SUBCORE/TRAVERSAL family
of Sariyüce et al., which both Zhang & Yu [93] and Hua et al. [48] build
on):

- **Insertion** of (u, v): only vertices in the *subcore* of the root
  (the endpoint with smaller core value ``K``) can be promoted, each by
  exactly 1.  The subcore is found by BFS over core-``K`` vertices; a
  candidate survives iff it keeps more than ``K`` qualified neighbors
  under iterative pruning, in which case its core becomes ``K + 1``.
- **Deletion** of (u, v): only core-``K`` vertices (``K`` the smaller
  endpoint core) can be demoted, each by exactly 1; demotions cascade
  through core-``K`` neighbors that lose their support.

These updates are *exact* but have no sublinear guarantee — the subcore
can be the whole graph (the paper's cycle example, Section 3), which is
precisely the behaviour the PLDS avoids.

Work metering counts vertices/edges touched.  Depth metering is
parameterized: ``sequential`` charges depth == work (Zhang); ``rounds``
charges one depth unit per BFS layer / pruning wave with parallel work
inside each wave (Hua's limited intra-update parallelism).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Literal

from ..graphs.dynamic_graph import DynamicGraph
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil

__all__ = ["TraversalCoreMaintenance"]


class TraversalCoreMaintenance:
    """Exact dynamic coreness under single-edge updates.

    Parameters
    ----------
    mode:
        ``"sequential"`` meters depth equal to work (a one-thread
        algorithm); ``"rounds"`` meters each BFS frontier / pruning wave
        as one parallel step.
    """

    def __init__(
        self,
        tracker: WorkDepthTracker | None = None,
        mode: Literal["sequential", "rounds"] = "sequential",
    ) -> None:
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        self.mode = mode
        self.graph = DynamicGraph()
        self.core: dict[int, int] = {}

    # -- metering helpers ------------------------------------------------

    def _charge(self, work: int, waves: int = 1) -> None:
        work = max(1, work)
        if self.mode == "sequential":
            self.tracker.add(work=work, depth=work)
        else:
            self.tracker.add(
                work=work, depth=max(1, waves) * (log2_ceil(work) + 1)
            )

    # -- bulk initialization ----------------------------------------------

    def initialize(self, edges: Iterable[tuple[int, int]]) -> None:
        """Build the graph and exact cores from scratch (indexing phase)."""
        from ..static_kcore.exact import exact_coreness

        edges = list(edges)
        for u, v in edges:
            self.graph.insert_edge(u, v)
        self.core = exact_coreness(edges)
        self._charge(work=len(edges) + self.graph.num_vertices)

    # -- queries -----------------------------------------------------------

    def coreness(self, v: int) -> int:
        return self.core.get(v, 0)

    def corenesses(self) -> dict[int, int]:
        return dict(self.core)

    # -- single-edge updates -------------------------------------------

    def insert_edge(self, u: int, v: int) -> set[int]:
        """Insert an edge, update cores; returns the touched vertex set."""
        self.graph.insert_edge(u, v)
        self.core.setdefault(u, 0)
        self.core.setdefault(v, 0)
        ku, kv = self.core[u], self.core[v]
        root = u if ku <= kv else v
        K = min(ku, kv)

        # Subcore BFS from the root over core-K vertices.
        candidates: set[int] = {root}
        frontier = [root]
        touched = 1
        waves = 0
        while frontier:
            waves += 1
            nxt: list[int] = []
            for x in frontier:
                for w in self.graph.neighbors(x):
                    touched += 1
                    if self.core.get(w, 0) == K and w not in candidates:
                        candidates.add(w)
                        nxt.append(w)
            frontier = nxt

        # Qualified-neighbor counts for the K+1 threshold.
        cd: dict[int, int] = {}
        for w in candidates:
            count = 0
            for x in self.graph.neighbors(w):
                kx = self.core.get(x, 0)
                if kx > K or (kx == K and x in candidates):
                    count += 1
            touched += self.graph.degree(w)
            cd[w] = count

        # Iterative pruning: remove candidates that cannot reach K+1.
        removed: set[int] = set()
        queue = deque(w for w in candidates if cd[w] <= K)
        prune_waves = 0
        while queue:
            prune_waves += 1
            for _ in range(len(queue)):
                w = queue.popleft()
                if w in removed:
                    continue
                removed.add(w)
                for x in self.graph.neighbors(w):
                    touched += 1
                    if x in candidates and x not in removed:
                        cd[x] -= 1
                        if cd[x] <= K:
                            queue.append(x)
        for w in candidates - removed:
            self.core[w] = K + 1
        self._charge(work=touched, waves=waves + prune_waves)
        return candidates | {u, v}

    def delete_edge(self, u: int, v: int) -> set[int]:
        """Delete an edge, update cores; returns the touched vertex set."""
        ku, kv = self.core.get(u, 0), self.core.get(v, 0)
        self.graph.delete_edge(u, v)
        K = min(ku, kv)
        if K == 0:
            return {u, v}
        touched = 2
        waves = 0
        visited: set[int] = {u, v}
        demoted: set[int] = set()
        queue = deque(w for w in (u, v) if self.core.get(w, 0) == K)
        while queue:
            waves += 1
            for _ in range(len(queue)):
                w = queue.popleft()
                visited.add(w)
                if w in demoted or self.core.get(w, 0) != K:
                    continue
                support = 0
                for x in self.graph.neighbors(w):
                    touched += 1
                    if self.core.get(x, 0) >= K:
                        support += 1
                if support < K:
                    demoted.add(w)
                    self.core[w] = K - 1
                    for x in self.graph.neighbors(w):
                        touched += 1
                        if self.core.get(x, 0) == K and x not in demoted:
                            queue.append(x)
        self._charge(work=touched, waves=waves)
        return visited
