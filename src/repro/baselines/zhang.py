"""*Zhang*: sequential exact dynamic k-core baseline (Zhang & Yu [93]).

A behavioral reimplementation: the original order-based algorithm's code
is not redistributable, so we use the exact subcore-traversal maintenance
(:class:`~repro.baselines.traversal.TraversalCoreMaintenance`) that the
order-based family refines.  Like the original it is

- exact (always reports true coreness values),
- sequential (depth == work),
- fast when updates stay local, but unboundedly slow when a single update
  perturbs a large subcore — the failure mode the paper's Section 3
  highlights with the cycle example.

It also mirrors Zhang's *indexing* phase: :meth:`initialize` builds the
structure from the initial graph (the cost the paper notes lets Zhang
finish Mix experiments that time out for Ins/Del).
"""

from __future__ import annotations

from typing import Iterable

from ..graphs.streams import Batch
from ..parallel.engine import WorkDepthTracker
from .traversal import TraversalCoreMaintenance

__all__ = ["ZhangExactDynamic"]


class ZhangExactDynamic:
    """Sequential exact dynamic coreness (batch = loop over updates)."""

    def __init__(self, tracker: WorkDepthTracker | None = None) -> None:
        self._engine = TraversalCoreMaintenance(tracker=tracker, mode="sequential")

    @property
    def tracker(self) -> WorkDepthTracker:
        return self._engine.tracker

    def initialize(self, edges: Iterable[tuple[int, int]]) -> None:
        self._engine.initialize(edges)

    def update(self, batch: Batch) -> None:
        """Apply a batch by processing its updates one at a time."""
        for u, v in batch.insertions:
            self._engine.insert_edge(u, v)
        for u, v in batch.deletions:
            self._engine.delete_edge(u, v)

    def coreness(self, v: int) -> int:
        return self._engine.coreness(v)

    def corenesses(self) -> dict[int, int]:
        return self._engine.corenesses()

    def space_bytes(self) -> int:
        g = self._engine.graph
        return 16 * g.num_edges + 16 * g.num_vertices
