"""*Sun*: sequential approximate dynamic k-core baseline (Sun et al. [83]).

A behavioral reimplementation of the round-indexing algorithm the paper
benchmarks against (the original's code is a separate research artifact).
The algorithm maintains, for every threshold ``τ_j = (1+ε)^j``, a *round
index* ``r_j(v)``: the round in which ``v`` would be eliminated by the
iterated process "repeatedly remove vertices with fewer than ``τ_j``
surviving neighbors", with rounds capped at ``R = O(log n / log(1+λ))``.
A vertex that survives all ``R`` rounds at threshold ``τ_j`` provably has
coreness ``Ω(τ_j)``; the coreness estimate is the largest surviving
threshold.

Round indices satisfy the local fixpoint

    r(v) = min(R, min{ρ >= 1 : #{w in N(v) : r(w) >= ρ} < τ}),

which is repaired by a work-list after each update (insertions only
increase round indices, deletions only decrease them, so the chaotic
iteration converges).  Maintenance is sequential — the paper's Section 3
notes the elimination chains are inherently sequential, which is exactly
why its batch throughput loses to the PLDS.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..graphs.dynamic_graph import DynamicGraph
from ..graphs.streams import Batch
from ..parallel.engine import WorkDepthTracker

__all__ = ["SunApproxDynamic"]


class SunApproxDynamic:
    """Sequential approximate dynamic coreness via round indexing.

    Parameters
    ----------
    n_hint:
        Expected vertex-count scale; sets the number of thresholds and the
        round cap.
    eps:
        Threshold granularity: thresholds are powers of ``(1+eps)``.
    lam:
        Round-cap parameter: ``R = ceil(log n / log(1+lam)) + 1``.
    alpha:
        Multiplier on the round cap (the original's ``α`` knob trades
        speed for accuracy; values below the theory-safe setting shrink
        ``R`` and can violate the proofs, mirroring Sun et al.'s
        ``α = 1.1`` heuristic).
    """

    def __init__(
        self,
        n_hint: int,
        eps: float = 2.0,
        lam: float = 2.0,
        alpha: float = 2.0,
        tracker: WorkDepthTracker | None = None,
    ) -> None:
        if eps <= 0 or lam <= 0 or alpha <= 0:
            raise ValueError("eps, lam, alpha must be > 0")
        n_hint = max(n_hint, 4)
        self.eps = eps
        self.lam = lam
        self.alpha = alpha
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        self.graph = DynamicGraph()
        #: number of thresholds: τ_j = (1+eps)^j for j in [0, J).
        self.num_thresholds = math.ceil(math.log(n_hint) / math.log(1.0 + eps)) + 1
        self.thresholds = [(1.0 + eps) ** j for j in range(self.num_thresholds)]
        #: round cap R.
        self.round_cap = (
            math.ceil(alpha * math.log(n_hint) / math.log(1.0 + lam)) + 1
        )
        #: per-threshold round indices; vertices absent default to r = 1.
        self._rounds: list[dict[int, int]] = [
            {} for _ in range(self.num_thresholds)
        ]

    # -- round-index recurrence -----------------------------------------

    def _round_of(self, j: int, v: int) -> int:
        return self._rounds[j].get(v, 1)

    def _recompute(self, j: int, v: int) -> int:
        """Evaluate the fixpoint operator for vertex ``v`` at threshold j."""
        tau = self.thresholds[j]
        nbrs = self.graph.neighbors(v)
        self.tracker.add(
            work=len(nbrs) + self.round_cap // 4 + 1,
            depth=len(nbrs) + self.round_cap // 4 + 1,
        )
        if len(nbrs) < tau:
            return 1
        # c(ρ) = #neighbors with r >= ρ, via a counting pass: histogram the
        # neighbor round indices, suffix-sum, then find the smallest ρ with
        # c(ρ) < τ.
        hist = [0] * (self.round_cap + 2)
        rj = self._rounds[j]
        for w in nbrs:
            hist[min(rj.get(w, 1), self.round_cap)] += 1
        suffix = [0] * (self.round_cap + 2)
        for rho in range(self.round_cap, 0, -1):
            suffix[rho] = suffix[rho + 1] + hist[rho]
        for rho in range(1, self.round_cap + 1):
            if suffix[rho] < tau:
                return rho
        return self.round_cap

    def _repair(self, j: int, seeds: Iterable[int]) -> None:
        """Chaotic-iteration repair of threshold ``j`` round indices."""
        queue = list(dict.fromkeys(seeds))
        in_queue = set(queue)
        while queue:
            v = queue.pop()
            in_queue.discard(v)
            new_r = self._recompute(j, v)
            old_r = self._round_of(j, v)
            if new_r == old_r:
                continue
            if new_r == 1:
                self._rounds[j].pop(v, None)
            else:
                self._rounds[j][v] = new_r
            for w in self.graph.neighbors(v):
                if w not in in_queue:
                    in_queue.add(w)
                    queue.append(w)
            self.tracker.add(work=self.graph.degree(v), depth=self.graph.degree(v))

    # -- public API ------------------------------------------------------

    def initialize(self, edges: Iterable[tuple[int, int]]) -> None:
        """Build from an initial edge set (full per-threshold simulation)."""
        for u, v in edges:
            self.graph.insert_edge(u, v)
        for j in range(self.num_thresholds):
            self._simulate_threshold(j)

    def _simulate_threshold(self, j: int) -> None:
        """Direct simulation of the elimination rounds at threshold j."""
        tau = self.thresholds[j]
        alive = {v for v in self.graph.vertices() if self.graph.degree(v) >= tau}
        rounds: dict[int, int] = {}
        rho = 1
        frontier_support = {
            v: sum(1 for w in self.graph.neighbors(v) if w in alive)
            for v in alive
        }
        self.tracker.add(
            work=self.graph.num_edges + 1, depth=self.graph.num_edges + 1
        )
        while rho < self.round_cap:
            eliminated = [v for v in alive if frontier_support[v] < tau]
            if not eliminated:
                break
            rho += 1
            for v in eliminated:
                alive.discard(v)
                rounds[v] = rho
            for v in eliminated:
                for w in self.graph.neighbors(v):
                    if w in alive:
                        frontier_support[w] -= 1
            self.tracker.add(work=len(eliminated) + 1, depth=len(eliminated) + 1)
        for v in alive:
            rounds[v] = self.round_cap
        # Vertices below the degree threshold keep default r = 1.
        self._rounds[j] = {v: r for v, r in rounds.items() if r > 1}

    def update(self, batch: Batch) -> None:
        """Apply a batch, updates processed one at a time (sequential)."""
        for u, v in batch.insertions:
            self.graph.insert_edge(u, v)
            for j in range(self.num_thresholds):
                self._repair(j, (u, v))
        for u, v in batch.deletions:
            self.graph.delete_edge(u, v)
            for j in range(self.num_thresholds):
                self._repair(j, (u, v))

    def coreness_estimate(self, v: int) -> float:
        """Largest threshold the vertex survives; 0 for isolated vertices."""
        if self.graph.degree(v) == 0:
            return 0.0
        best = 1.0
        for j in range(self.num_thresholds - 1, -1, -1):
            if self._round_of(j, v) >= self.round_cap:
                best = self.thresholds[j]
                break
        return best

    def coreness_estimates(self) -> dict[int, float]:
        return {v: self.coreness_estimate(v) for v in self.graph.vertices()}

    def space_bytes(self) -> int:
        total = 16 * self.graph.num_edges
        for rj in self._rounds:
            total += 16 * len(rj)
        return total
