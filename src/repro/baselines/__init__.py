"""Reimplementations of the dynamic k-core baselines the paper compares to.

- :class:`SunApproxDynamic` — sequential approximate (Sun et al. [83]);
- :class:`HuaExactBatchDynamic` — parallel exact batch (Hua et al. [48]);
- :class:`ZhangExactDynamic` — sequential exact (Zhang & Yu [93]).

All three are *behavioral* reimplementations built from the published
algorithm descriptions (original code is proprietary or a separate
research artifact); see each module's docstring and DESIGN.md for what is
preserved.
"""

from .hua import HuaExactBatchDynamic
from .sun import SunApproxDynamic
from .traversal import TraversalCoreMaintenance
from .zhang import ZhangExactDynamic

__all__ = [
    "HuaExactBatchDynamic",
    "SunApproxDynamic",
    "TraversalCoreMaintenance",
    "ZhangExactDynamic",
]
