"""*Hua*: parallel exact batch-dynamic k-core baseline (Hua et al. [48]).

A behavioral reimplementation of the state-of-the-art parallel exact
algorithm the paper compares against.  Hua et al. process a batch by
building a *joint edge set* and traversing the affected subcores with
DFS/BFS; traversals over overlapping regions serialize, and a traversal
is itself a sequential dependency chain — in the worst case Ω(n) depth
(paper Section 4), which is why their measured self-relative speedup
saturates around 3.6x (paper Section 6.4).

Our depth model captures exactly that contention: each update's exact
subcore traversal (work ``w_i``, touched vertex set ``T_i``) is scheduled
on a critical-path chain — its start time is the largest finish time of
any earlier traversal sharing a touched vertex, its finish time start +
``w_i``.  Batch depth is the longest chain.  Disjoint subcores run in
parallel; overlapping subcores (the common case on social networks,
where traversals share hubs) serialize, reproducing the saturation.

Coreness values are exact — identical to Zhang's — only the cost model
differs.
"""

from __future__ import annotations

from typing import Iterable

from ..graphs.streams import Batch
from ..parallel.engine import WorkDepthTracker
from .traversal import TraversalCoreMaintenance

__all__ = ["HuaExactBatchDynamic"]


class HuaExactBatchDynamic:
    """Parallel exact batch-dynamic coreness with contention-aware depth."""

    def __init__(self, tracker: WorkDepthTracker | None = None) -> None:
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        # The engine meters into a private tracker; update() folds its work
        # into the public tracker with the critical-path depth.
        self._engine = TraversalCoreMaintenance(
            tracker=WorkDepthTracker(), mode="sequential"
        )

    def initialize(self, edges: Iterable[tuple[int, int]]) -> None:
        before = self._engine.tracker.work
        self._engine.initialize(edges)
        work = self._engine.tracker.work - before
        # Indexing from scratch parallelizes well (bucketed peeling).
        self.tracker.add(work=work, depth=max(1, work // 64))

    def update(self, batch: Batch) -> None:
        """Apply a batch; overlapping traversals serialize on the chain."""
        engine = self._engine
        chain: dict[int, int] = {}
        longest = 0
        total_work = 0
        ops = [(True, e) for e in batch.insertions] + [
            (False, e) for e in batch.deletions
        ]
        for is_insert, (u, v) in ops:
            before = engine.tracker.work
            if is_insert:
                touched = engine.insert_edge(u, v)
            else:
                touched = engine.delete_edge(u, v)
            work = engine.tracker.work - before
            total_work += work
            start = max((chain.get(x, 0) for x in touched), default=0)
            finish = start + work
            for x in touched:
                chain[x] = finish
            longest = max(longest, finish)
        self.tracker.add(work=max(1, total_work), depth=max(1, longest))

    def coreness(self, v: int) -> int:
        return self._engine.coreness(v)

    def corenesses(self) -> dict[int, int]:
        return self._engine.corenesses()

    def space_bytes(self) -> int:
        g = self._engine.graph
        return 16 * g.num_edges + 24 * g.num_vertices
