"""Deterministic fault injection for the serving stack.

A production serving layer is only trustworthy if every phase of a batch
can crash and the system still converges to the right answer.  This
module is the substrate that makes such crashes *reproducible*: named
**faultpoints** are threaded through the engine, the PLDS rebalancing
cascades, and the :class:`~repro.service.CoreService` apply path, and a
:class:`FaultPlan` arms any of them to raise :class:`InjectedFault` on
an exact (Nth) traversal, or — via :class:`StallPoint` windows — to
*stall*: charge extra metered depth to the site's tracker instead of
crashing, which is how slow shards are injected for backpressure tests.
Tests, the property suite, and the ``repro chaos`` / ``repro soak``
CLIs all drive recovery through the same five sites:

==================  ====================================================
site                fires
==================  ====================================================
``plds.rise``       once per level iteration of RebalanceInsertions
                    (Algorithm 2's upward cascade)
``plds.desaturate``  once per level iteration of RebalanceDeletions
                    (Algorithm 3's downward cascade)
``engine.parfor``   once per simulated ``parfor`` / ``flat_parfor`` call
``service.apply``   once per :meth:`CoreService.apply_batch` attempt
``shard.apply``     once per per-shard structural apply step of the
                    sharded coordinator (:mod:`repro.shard`) — fires
                    *after* the shard mutated, so recovery really rolls
                    back and retries only that shard
==================  ====================================================

Zero overhead when disabled
---------------------------
No plan installed means :data:`ACTIVE` is ``None`` and every
instrumented site reduces to one module-global load plus a branch —
*per phase*, never per vertex or per edge — so the hot paths guarded by
the perf-regression harness are unaffected.  The
:mod:`repro.parallel.engine` layer stays import-clean (it never imports
this module): :func:`install` pushes a hook into the engine instead.

Example
-------
>>> from repro.faults import FaultPlan, FaultPoint, InjectedFault, active
>>> from repro.core.plds import PLDS
>>> from repro.graphs.streams import Batch
>>> plds = PLDS(n_hint=16)
>>> try:
...     with active(FaultPlan([FaultPoint("plds.rise", 1)])):
...         plds.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
... except InjectedFault as exc:
...     print(exc)
injected fault at plds.rise (hit 1)
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .obs import metrics as _metrics
from .obs import recorder as _recorder
from .parallel import engine as _engine

__all__ = [
    "FAULT_SITES",
    "InjectedFault",
    "FaultPoint",
    "StallPoint",
    "FaultPlan",
    "ACTIVE",
    "install",
    "clear",
    "active",
    "recording_plan",
    "random_plan",
]

#: Every named faultpoint wired into the stack, in dependency order.
FAULT_SITES: tuple[str, ...] = (
    "engine.parfor",
    "plds.rise",
    "plds.desaturate",
    "service.apply",
    "shard.apply",
)


class InjectedFault(RuntimeError):
    """Raised by an armed faultpoint — a *transient*, retryable crash.

    Retry policies treat this (and only this, by default) as transient:
    the plan's hit counter has advanced past the armed hit, so a retried
    attempt passes the same site cleanly.
    """


@dataclass(frozen=True)
class FaultPoint:
    """Arm one site to crash on its ``hit_number``-th traversal (1-based)."""

    site: str
    hit_number: int

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {FAULT_SITES}"
            )
        if self.hit_number < 1:
            raise ValueError("hit_number is 1-based and must be >= 1")


@dataclass
class StallPoint:
    """Arm one site to *stall* (add metered depth) instead of crashing.

    Crashes exercise rollback; stalls exercise **backpressure**.  A stall
    is active for every traversal whose 1-based hit number falls in
    ``[first_hit, last_hit]`` (``last_hit=None`` leaves it open until
    :meth:`FaultPlan.end_stall` closes it).  Instrumented sites query
    :meth:`FaultPlan.delay_for` after :meth:`FaultPlan.hit` and charge
    the returned ``depth`` to their work-depth tracker — so a stalled
    shard shows up exactly where a genuinely slow shard would: in the
    metered span/telemetry depth and in the coordinator's shard-lag
    signal, which is what the admission controller watches.

    ``every`` strides the stall within its window: only traversals with
    ``(hit - first_hit) % every == 0`` are slowed.  ``shard.apply`` is
    traversed once per *active shard* per scatter, so ``every = #shards``
    stalls roughly one shard per batch — an asymmetric slow shard that
    makes the coordinator's lag signal spike, where stalling every
    traversal would slow all shards uniformly and produce no lag at all.
    """

    site: str
    depth: int
    first_hit: int = 1
    last_hit: int | None = None
    every: int = 1
    hits: int = 0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from {FAULT_SITES}"
            )
        if self.depth < 1:
            raise ValueError("stall depth must be >= 1")
        if self.first_hit < 1:
            raise ValueError("first_hit is 1-based and must be >= 1")
        if self.last_hit is not None and self.last_hit < self.first_hit:
            raise ValueError("last_hit must be >= first_hit")
        if self.every < 1:
            raise ValueError("every must be >= 1")


class FaultPlan:
    """A set of armed :class:`FaultPoint`\\ s plus per-site hit counters.

    A plan with no points is a pure *recorder*: it counts how often each
    site fires over a workload (the census :func:`random_plan` uses to
    aim faults at traversals that actually happen) without ever raising.

    Counters persist across retries, which is what makes injected
    faults transient: a point armed at hit ``n`` fires exactly once —
    the retry traverses the site at hit ``n + 1`` and proceeds.
    """

    def __init__(
        self,
        points: Iterable[FaultPoint] = (),
        stalls: Iterable[StallPoint] = (),
    ) -> None:
        self.points: tuple[FaultPoint, ...] = tuple(points)
        self._armed = {(p.site, p.hit_number) for p in self.points}
        self.stalls: list[StallPoint] = list(stalls)
        self.counts: dict[str, int] = dict.fromkeys(FAULT_SITES, 0)
        self.fired: list[FaultPoint] = []

    def hit(self, site: str) -> None:
        """Record one traversal of ``site``; raise if a point is armed there."""
        count = self.counts[site] + 1
        self.counts[site] = count
        if (site, count) in self._armed:
            self.fired.append(FaultPoint(site, count))
            mreg = _metrics.ACTIVE
            if mreg is not None:
                mreg.inc("faults.fired", site=site)
            rec = _recorder.ACTIVE
            if rec is not None:
                rec.trip("fault", site=site, hit=count)
            raise InjectedFault(f"injected fault at {site} (hit {count})")

    def arm(self, point: FaultPoint) -> FaultPoint:
        """Add one more crash point to a live plan (soak-style arming).

        The soak harness arms faults *while the plan is installed*, aimed
        just past the site's current hit count, so a long-running run can
        keep injecting fresh transient crashes without reinstalling.
        """
        self.points = self.points + (point,)
        self._armed.add((point.site, point.hit_number))
        return point

    # -- stalls (slow-shard / slow-apply injection) --------------------

    def stall(
        self,
        site: str,
        depth: int,
        first_hit: int | None = None,
        last_hit: int | None = None,
        every: int = 1,
    ) -> StallPoint:
        """Arm a stall at ``site``; defaults to starting at the *next* hit."""
        if first_hit is None:
            first_hit = self.counts[site] + 1
        point = StallPoint(
            site, depth, first_hit=first_hit, last_hit=last_hit, every=every
        )
        self.stalls.append(point)
        return point

    def end_stall(self, point: StallPoint) -> None:
        """Close an open stall window at the site's current hit count."""
        if point.last_hit is None:
            point.last_hit = max(self.counts[point.site], point.first_hit)

    def delay_for(self, site: str) -> int:
        """Total stall depth to charge for the traversal just recorded.

        Call once per traversal, right after :meth:`hit`; the answer is
        based on the hit counter that :meth:`hit` advanced, so crashes
        and stalls armed at the same traversal stay consistent.
        """
        if not self.stalls:
            return 0
        count = self.counts[site]
        total = 0
        for point in self.stalls:
            if point.site != site or count < point.first_hit:
                continue
            if point.last_hit is not None and count > point.last_hit:
                continue
            if (count - point.first_hit) % point.every:
                continue
            point.hits += 1
            total += point.depth
        if total:
            mreg = _metrics.ACTIVE
            if mreg is not None:
                mreg.inc("faults.stalled", site=site)
            rec = _recorder.ACTIVE
            if rec is not None:
                rec.note("fault.stall", site=site, depth=total)
        return total

    @property
    def stalled_hits(self) -> int:
        """Traversals that were slowed by any armed stall window."""
        return sum(point.hits for point in self.stalls)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(points={list(self.points)!r}, counts={self.counts!r})"


#: The installed plan, consulted by every instrumented site; ``None``
#: (the default) compiles each site down to a load-and-branch no-op.
ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the active plan and hook the engine layer into it."""
    global ACTIVE
    ACTIVE = plan
    _engine.set_fault_hook(plan.hit)


def clear() -> None:
    """Deactivate fault injection; all sites become no-ops again."""
    global ACTIVE
    ACTIVE = None
    _engine.set_fault_hook(None)


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope ``plan`` to a ``with`` block, restoring the previous plan."""
    previous = ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            clear()
        else:
            install(previous)


def recording_plan() -> FaultPlan:
    """A plan that counts site traversals but never raises (a census)."""
    return FaultPlan()


def random_plan(
    seed: int,
    counts: Mapping[str, int],
    sites: Sequence[str] = FAULT_SITES,
) -> FaultPlan:
    """A seeded single-fault plan aimed at a traversal that will happen.

    ``counts`` is a census from a fault-free run of the same workload
    (:func:`recording_plan`); the plan arms one uniformly random site —
    among ``sites`` with a non-zero census — at a uniformly random hit
    within its observed range, so the fault is guaranteed to fire.
    """
    live = [s for s in sites if counts.get(s, 0) > 0]
    if not live:
        raise ValueError("census has no live sites; nothing to inject into")
    rng = random.Random(seed)
    site = rng.choice(live)
    return FaultPlan([FaultPoint(site, rng.randint(1, counts[site]))])
