"""Section-8 framework and its applications (Sections 9–11).

Convenience constructors wire each application to a
:class:`FrameworkDriver` that owns the PLDS:

>>> from repro.framework import create_matching_driver
>>> driver, matching = create_matching_driver(n_hint=1000)
>>> from repro.graphs.streams import Batch
>>> _ = driver.update(Batch(insertions=[(0, 1), (1, 2)]))
>>> sorted(matching.matching())
[(0, 1)]
"""

from __future__ import annotations

from .clique_tables import CliqueCounterTables
from .cliques import CliqueCounter
from .coloring import ExplicitColoring, ImplicitColoring
from .framework import BatchDynamicApplication, FrameworkDriver
from .matching import MaximalMatching
from .static_matching import static_maximal_matching

__all__ = [
    "BatchDynamicApplication",
    "FrameworkDriver",
    "MaximalMatching",
    "CliqueCounter",
    "CliqueCounterTables",
    "create_clique_tables_driver",
    "ExplicitColoring",
    "ImplicitColoring",
    "static_maximal_matching",
    "create_matching_driver",
    "create_clique_driver",
    "create_explicit_coloring_driver",
    "create_implicit_coloring_driver",
]


class _Deferred:
    """Placeholder app so the driver can be built before the app exists."""

    def batch_flips(self, *a): ...
    def batch_delete(self, *a): ...
    def batch_insert(self, *a): ...


def _make_driver(n_hint: int, **kwargs) -> FrameworkDriver:
    return FrameworkDriver(app=_Deferred(), n_hint=n_hint, **kwargs)


def create_matching_driver(
    n_hint: int, seed: int = 0, **kwargs
) -> tuple[FrameworkDriver, MaximalMatching]:
    """Driver + batch-dynamic maximal matching (Theorem 3.4)."""
    driver = _make_driver(n_hint, **kwargs)
    app = MaximalMatching(driver.plds, driver.tracker, seed=seed)
    driver.app = app
    return driver, app


def create_clique_driver(
    n_hint: int, k: int = 3, track_local: bool = False, **kwargs
) -> tuple[FrameworkDriver, CliqueCounter]:
    """Driver + batch-dynamic k-clique counter (Theorem 3.6)."""
    driver = _make_driver(n_hint, **kwargs)
    app = CliqueCounter(driver.plds, driver.tracker, k=k, track_local=track_local)
    driver.app = app
    return driver, app


def create_clique_tables_driver(
    n_hint: int, k: int = 3, **kwargs
) -> tuple[FrameworkDriver, CliqueCounterTables]:
    """Driver + the table-hierarchy k-clique counter (Algorithms 12-13)."""
    driver = _make_driver(n_hint, **kwargs)
    app = CliqueCounterTables(driver.plds, driver.tracker, k=k)
    driver.app = app
    return driver, app


def create_explicit_coloring_driver(
    n_hint: int, seed: int = 0, **kwargs
) -> tuple[FrameworkDriver, ExplicitColoring]:
    """Driver + explicit O(α log n)-coloring (Theorem 3.7)."""
    driver = _make_driver(n_hint, **kwargs)
    app = ExplicitColoring(driver.plds, driver.tracker, seed=seed)
    driver.app = app
    return driver, app


def create_implicit_coloring_driver(
    n_hint: int, **kwargs
) -> tuple[FrameworkDriver, ImplicitColoring]:
    """Driver + implicit coloring (Theorem 3.5 semantics)."""
    driver = _make_driver(n_hint, **kwargs)
    app = ImplicitColoring(driver.plds, driver.tracker)
    driver.app = app
    return driver, app
