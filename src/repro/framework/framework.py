"""Framework for batch-dynamic algorithms on bounded-arboricity graphs.

Implements the paper's Section 8 (Algorithm 7, ``GraphProblemUpdate``):
every application (maximal matching, k-clique counting, vertex coloring)
plugs three methods into a shared driver that first updates the PLDS, then
extracts the orientation changes, and finally hands the application

1. ``batch_flips(flips, ins, dels)`` — orientation flips of *surviving*
   edges (directed edges giving the pre-flip orientation);
2. ``batch_delete(oriented_deletions)`` — deleted edges, directed per the
   *pre-batch* orientation;
3. ``batch_insert(oriented_insertions)`` — inserted edges, directed per
   the *post-batch* orientation.

The driver also performs the batch preprocessing the paper assumes
(Section 8): raw updates are deduplicated and validated against the
current graph before anything runs.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..core.plds import PLDS, DirectedEdge, UpdateResult
from ..graphs.streams import Batch, EdgeUpdate, preprocess_batch
from ..obs import tracing as _tracing
from ..parallel.engine import WorkDepthTracker

__all__ = ["BatchDynamicApplication", "FrameworkDriver"]


class BatchDynamicApplication(Protocol):
    """The three problem-specific methods of Algorithm 7."""

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None: ...

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None: ...

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None: ...


class FrameworkDriver:
    """Algorithm 7: PLDS update -> orientation -> app callbacks.

    The driver owns the PLDS (constructed with orientation tracking) and a
    registered application.  ``update`` applies a preprocessed
    :class:`~repro.graphs.streams.Batch`; ``update_raw`` accepts arbitrary
    (possibly duplicate/invalid) :class:`EdgeUpdate` streams and
    preprocesses them first.
    """

    def __init__(
        self,
        app: BatchDynamicApplication,
        n_hint: int,
        delta: float = 0.4,
        lam: float = 3.0,
        group_shrink: int = 1,
        tracker: WorkDepthTracker | None = None,
    ) -> None:
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        self.plds = PLDS(
            n_hint=n_hint,
            delta=delta,
            lam=lam,
            group_shrink=group_shrink,
            tracker=self.tracker,
            track_orientation=True,
        )
        self.app = app

    def update(self, batch: Batch) -> UpdateResult:
        """Apply one batch of unique, valid updates (Algorithm 7)."""
        result = self.plds.update(batch)  # Lines 1-2: PLDS + orientation.
        # Optional hook: apps that track per-level state (e.g. the explicit
        # coloring's per-level palettes) need the set of moved vertices.
        batch_moved = getattr(self.app, "batch_moved", None)
        if batch_moved is not None:
            batch_moved(result.moved_vertices)
        tracer = _tracing.ACTIVE
        if tracer is None:
            # Line 4: BatchFlips, then Line 5: BatchDelete, Line 6: BatchInsert.
            self.app.batch_flips(
                result.flipped,
                result.oriented_insertions,
                result.oriented_deletions,
            )
            self.app.batch_delete(result.oriented_deletions)
            self.app.batch_insert(result.oriented_insertions)
            return result
        with tracer.span(
            "framework.flips", self.tracker, flips=len(result.flipped)
        ):
            self.app.batch_flips(
                result.flipped,
                result.oriented_insertions,
                result.oriented_deletions,
            )
        with tracer.span(
            "framework.delete",
            self.tracker,
            edges=len(result.oriented_deletions),
        ):
            self.app.batch_delete(result.oriented_deletions)
        with tracer.span(
            "framework.insert",
            self.tracker,
            edges=len(result.oriented_insertions),
        ):
            self.app.batch_insert(result.oriented_insertions)
        return result

    def update_raw(self, updates: Iterable[EdgeUpdate]) -> UpdateResult:
        """Preprocess raw updates (dedupe + validate) and apply them."""

        class _View:
            def __init__(self, plds: PLDS) -> None:
                self._plds = plds

            def has_edge(self, u: int, v: int) -> bool:
                return self._plds.has_edge(u, v)

        batch = preprocess_batch(_View(self.plds), updates)  # type: ignore[arg-type]
        return self.update(batch)
