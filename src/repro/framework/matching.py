"""Batch-dynamic maximal matching (paper Section 9, Algorithms 8–10).

Maintains a maximal matching under batched edge updates on top of the
PLDS's low out-degree orientation, via the Section-8 framework:

- **BatchFlips** (Algorithm 8): keep the unmatched-in-neighbor tables
  ``I_v`` consistent when edge orientations flip.
- **BatchInsert** (Algorithm 9): inserted edges between two unmatched
  endpoints form a candidate subgraph; a static parallel maximal matching
  on it decides who matches.
- **BatchDelete** (Algorithm 10): vertices unmatched by deleted matched
  edges first try their out-neighbors (a static matching on the induced
  subgraph), then probe geometrically growing samples of their unmatched
  in-neighbors (``c = 1, 2, 4, …``) until everyone is matched or provably
  unmatchable — the doubling scheme behind the
  ``O(|B|(α + log² n))`` amortized work bound (Theorem 3.4).

Work/depth are metered on the shared tracker.  ``I_v`` entries are
validated lazily (an entry is dropped when observed stale), which keeps
single mutations O(1) while preserving the invariant the proofs need:
every unmatched in-neighbor of ``v`` is present in ``I_v``.
"""

from __future__ import annotations

from ..core.plds import PLDS, DirectedEdge
from ..graphs.dynamic_graph import canonical_edge
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil
from .static_matching import static_maximal_matching

__all__ = ["MaximalMatching"]


class MaximalMatching:
    """Maximal matching application for the Section-8 framework.

    Construct, then register with a
    :class:`~repro.framework.framework.FrameworkDriver` (see
    ``create_matching_driver`` in :mod:`repro.framework`).
    """

    def __init__(self, plds: PLDS, tracker: WorkDepthTracker, seed: int = 0) -> None:
        self.plds = plds
        self.tracker = tracker
        self.seed = seed
        self._round = 0
        #: partner of each matched vertex.
        self.mate: dict[int, int] = {}
        #: I_v — unmatched in-neighbors of v (may contain stale entries,
        #: validated lazily against ``mate`` and the orientation).
        self._in_unmatched: dict[int, set[int]] = {}

    # -- queries ---------------------------------------------------------

    def is_matched(self, v: int) -> bool:
        return v in self.mate

    def matching(self) -> set[tuple[int, int]]:
        """The current matching as canonical edges."""
        return {canonical_edge(v, w) for v, w in self.mate.items() if v < w}

    # -- internal helpers -------------------------------------------------

    def _iv(self, v: int) -> set[int]:
        return self._in_unmatched.setdefault(v, set())

    def _set_matched(self, u: int, v: int) -> None:
        self.mate[u] = v
        self.mate[v] = u

    def _notify_matched(self, vs: list[int]) -> None:
        """Newly matched vertices leave the I-tables of their out-neighbors."""
        with self.tracker.parallel() as par:
            for v in vs:
                with par.branch():
                    outs = self.plds.out_neighbors(v)
                    self.tracker.add(work=max(1, len(outs)), depth=5)
                    for w in outs:
                        self._iv(w).discard(v)

    def _unmatch(self, u: int, v: int) -> None:
        if self.mate.get(u) == v:
            del self.mate[u]
            del self.mate[v]

    def _seed(self) -> int:
        self._round += 1
        return self.seed * 1_000_003 + self._round

    # -- Algorithm 8: BatchFlips -----------------------------------------

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None:
        self.tracker.add(work=max(1, len(flips)), depth=5)
        for u, v in flips:  # was u -> v, now v -> u
            if u not in self.mate:
                self._iv(v).discard(u)
            if v not in self.mate:
                self._iv(u).add(v)

    # -- Algorithm 10: BatchDelete ----------------------------------------

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None:
        if not oriented_deletions:
            return
        tracker = self.tracker
        tracker.add(work=max(1, len(oriented_deletions)), depth=5)

        # Deleted edges leave the I-tables; deleted matched edges unmatch.
        newly_unmatched: set[int] = set()
        for u, v in oriented_deletions:  # oriented u -> v pre-batch
            self._iv(v).discard(u)
            if self.mate.get(u) == v:
                self._unmatch(u, v)
                newly_unmatched.add(u)
                newly_unmatched.add(v)

        if not newly_unmatched:
            return

        # Lines 1-11: try out-neighbors first (induced subgraph of U and
        # the unmatched out-neighbors of U).
        candidate_vs = set(newly_unmatched)
        for u in sorted(newly_unmatched):
            outs = self.plds.out_neighbors(u)
            tracker.add(work=max(1, len(outs)), depth=5)
            for w in outs:
                if w not in self.mate:
                    candidate_vs.add(w)
        induced: list[tuple[int, int]] = []
        for x in sorted(candidate_vs):
            outs = self.plds.out_neighbors(x)
            tracker.add(work=max(1, len(outs)), depth=5)
            for w in outs:
                if w in candidate_vs:
                    induced.append(canonical_edge(x, w))
        new_matches = static_maximal_matching(
            tracker, induced, seed=self._seed(), forbidden=self.mate.keys()
        )
        matched_now: list[int] = []
        for a, b in new_matches:
            self._set_matched(a, b)
            matched_now.extend((a, b))
        self._notify_matched(matched_now)
        remaining = {v for v in newly_unmatched if v not in self.mate}

        # Lines 12-24: doubling probe of unmatched in-neighbors.
        c = 1
        while remaining:
            probe_edges: list[tuple[int, int]] = []
            dead: list[int] = []
            for u in sorted(remaining):
                iv = self._iv(u)
                picked: list[int] = []
                stale: list[int] = []
                for w in iv:
                    if w in self.mate:
                        stale.append(w)  # lazy validation
                        continue
                    picked.append(w)
                    if len(picked) >= c:
                        break
                for w in stale:
                    iv.discard(w)
                tracker.add(work=max(1, len(picked) + len(stale)), depth=5)
                if not picked and not iv:
                    dead.append(u)  # Line 16-17: no unmatched in-neighbors
                for w in picked:
                    probe_edges.append(canonical_edge(u, w))
            for u in dead:
                remaining.discard(u)
            if not probe_edges:
                break
            new_matches = static_maximal_matching(
                tracker,
                probe_edges,
                seed=self._seed(),
                forbidden=self.mate.keys(),
            )
            matched_now = []
            for a, b in new_matches:
                self._set_matched(a, b)
                matched_now.extend((a, b))
            self._notify_matched(matched_now)
            remaining = {v for v in remaining if v not in self.mate}
            c *= 2
            tracker.add(work=1, depth=log2_ceil(max(2, c)))

        # Lines 25-28: survivors announce themselves to out-neighbors.
        for v in sorted(newly_unmatched):
            if v in self.mate:
                continue
            outs = self.plds.out_neighbors(v)
            tracker.add(work=max(1, len(outs)), depth=5)
            for w in outs:
                self._iv(w).add(v)

    # -- Algorithm 9: BatchInsert ----------------------------------------

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None:
        if not oriented_insertions:
            return
        tracker = self.tracker
        tracker.add(work=max(1, len(oriented_insertions)), depth=5)

        # Lines 1-4: candidate edges between two unmatched endpoints.
        candidates = [
            canonical_edge(u, v)
            for u, v in oriented_insertions
            if u not in self.mate and v not in self.mate
        ]
        # Line 5: static matching on the candidate subgraph.
        new_matches = static_maximal_matching(
            tracker, candidates, seed=self._seed(), forbidden=self.mate.keys()
        )
        matched_now: list[int] = []
        for a, b in new_matches:
            self._set_matched(a, b)
            matched_now.extend((a, b))

        # New in-neighbor registrations for inserted edges.
        for u, v in oriented_insertions:  # oriented u -> v post-batch
            if u not in self.mate:
                self._iv(v).add(u)
        # Lines 6-8: matched vertices leave out-neighbors' tables.
        self._notify_matched(matched_now)

    # -- verification ------------------------------------------------------

    def violations(self) -> list[str]:
        """Maximality/consistency violations (tests): empty == healthy."""
        problems: list[str] = []
        for u, v in self.plds.edges():
            if u not in self.mate and v not in self.mate:
                problems.append(f"edge ({u},{v}) has both endpoints unmatched")
        for v, w in self.mate.items():
            if self.mate.get(w) != v:
                problems.append(f"asymmetric mate: {v}->{w}")
            if not self.plds.has_edge(v, w):
                problems.append(f"matched edge ({v},{w}) not in graph")
        return problems

    def space_bytes(self) -> int:
        total = 16 * len(self.mate)
        for s in self._in_unmatched.values():
            total += 8 + 8 * len(s)
        return total
