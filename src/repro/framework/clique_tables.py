"""Table-hierarchy k-clique counting (the paper's Algorithms 12–13).

The paper's full clique-counting scheme maintains tables ``I_2 … I_{k-1}``
over vertex subsets so that *no enumeration beyond the updated edge's
neighborhood* is ever needed at query time, at O(m α^{k-2}) space.  This
module implements that design through an equivalent *source-chain*
formulation which makes the maintenance algebra explicit:

For ``j ∈ [2, k-1]``, table ``T_j[S]`` (S a j-subset) counts the directed
**source chains** of length ``k - j`` over the current acyclic
orientation: sequences ``(v_1, …, v_{k-j})`` where each ``v_i`` has edges
directed to *all* later chain vertices and all of ``S``.  Two facts drive
everything:

1. Every k-clique has a unique topological order under the orientation
   (Observation 10.1 applied repeatedly), so

       #k-cliques  =  Σ over edges {a,b} of T_2[{a,b}]

   — each clique is counted exactly once, at its 2-suffix.

2. The tables satisfy ``T_j[S] = Σ_{v → S} T_{j+1}[S ∪ {v}]`` with
   ``T_k[·] = 1``, so an edge update's effect telescopes level by level:
   inserting ``u → x`` creates base deltas ``ΔT_{k-1}[{x} ∪ T] = +1`` for
   each ``T ⊆ N_out(u) \\ {x}``, then each level's delta is (i) the new
   summand ``(u, S ∋ x)`` and (ii) the propagated deltas of the level
   above, attributed through the unique *source* of each changed subset
   (at most one vertex of a subset can point to all others).

Work per edge update is O(α^{k-2}·k²) — the paper's bound — and the
tables store only subsets with at least one chain.

This counter and :class:`~repro.framework.cliques.CliqueCounter` (the
enumeration + wedge-table variant) maintain identical counts; the tables
variant trades the paper's larger space for never re-enumerating
completion subsets of apex vertices.
"""

from __future__ import annotations

from itertools import combinations

from ..core.plds import PLDS, DirectedEdge
from ..graphs.dynamic_graph import canonical_edge
from ..parallel.engine import WorkDepthTracker

__all__ = ["CliqueCounterTables"]


class CliqueCounterTables:
    """Exact k-clique counter via the table hierarchy (Section 10)."""

    def __init__(self, plds: PLDS, tracker: WorkDepthTracker, k: int = 3) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.plds = plds
        self.tracker = tracker
        self.k = k
        self.count = 0
        #: mirror adjacency / out-sets (kept in lockstep with the PLDS).
        self._adj: dict[int, set[int]] = {}
        self._out: dict[int, set[int]] = {}
        #: T_j tables for j in [2, k-1]: sorted-tuple subset -> chain count.
        self._tables: dict[int, dict[tuple[int, ...], int]] = {
            j: {} for j in range(2, k)
        }
        self._pending_flips: list[DirectedEdge] = []

    # -- mirror ----------------------------------------------------------

    def _add_mirror(self, u: int, v: int) -> None:
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self._out.setdefault(u, set()).add(v)
        self._out.setdefault(v, set())

    def _remove_mirror(self, u: int, v: int) -> None:
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._out[u].discard(v)

    def _has_edge(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, ())

    def _source_of(self, subset: tuple[int, ...]) -> int | None:
        """The unique vertex of ``subset`` pointing to all others, if any."""
        for v in subset:
            out_v = self._out.get(v, ())
            if all(w in out_v for w in subset if w is not v):
                return v
        return None

    # -- the level-by-level delta computation ------------------------------

    def _apply_edge(self, u: int, x: int, sign: int) -> int:
        """Table/count deltas for edge ``u -> x`` (mirror already updated).

        ``sign=+1``: the edge was just added to the mirror; ``sign=-1``:
        just removed.  Returns the change in the k-clique count.
        """
        k = self.k
        if k == 2:
            return sign
        out_u = sorted(self._out.get(u, set()) - {x})
        work = 1

        # Base level k-1: chains of length 1 (a single source vertex u).
        base: dict[tuple[int, ...], int] = {}
        for T in combinations(out_u, k - 2):
            S = tuple(sorted((x,) + T))
            base[S] = base.get(S, 0) + sign
            work += 1
        level_deltas: dict[int, dict[tuple[int, ...], int]] = {k - 1: base}

        # Walk down to level 2.
        for j in range(k - 2, 1, -1):
            upper_store = self._tables[j + 1]
            upper_delta = level_deltas[j + 1]
            dj: dict[tuple[int, ...], int] = {}
            # (i) the new/removed summand: pair (u, S) with x in S.
            for T in combinations(out_u, j - 1):
                S = tuple(sorted((x,) + T))
                key = tuple(sorted(S + (u,)))
                val = upper_store.get(key, 0)
                if sign > 0:
                    val += upper_delta.get(key, 0)  # new value
                if val:
                    dj[S] = dj.get(S, 0) + sign * val
                work += 1
            # (ii) propagation of the level-(j+1) deltas through the
            # unique source of each changed subset.
            for Sp, d in upper_delta.items():
                work += len(Sp) * len(Sp)
                if d == 0:
                    continue
                src = self._source_of(Sp)
                if src is None:
                    continue
                if src == u and x in Sp:
                    continue  # the (u, S ∋ x) pair is handled by (i)
                S = tuple(w for w in Sp if w != src)
                dj[S] = dj.get(S, 0) + d
            level_deltas[j] = dj

        # Count delta from the level-2 deltas plus the {u,x} suffix term.
        ux = canonical_edge(u, x)
        delta_c = 0
        for S, d in level_deltas[2].items():
            if d and S != ux and self._has_edge(*S):
                delta_c += d
        delta_c += sign * self._tables[2].get(ux, 0)

        # Apply all deltas to the stores (zero entries are pruned).
        for j, dj in level_deltas.items():
            store = self._tables[j]
            for S, d in dj.items():
                nv = store.get(S, 0) + d
                if nv:
                    store[S] = nv
                else:
                    store.pop(S, None)
                work += 1
        self.tracker.add(work=work, depth=5 * max(1, k - 2))
        return delta_c

    def _insert_directed(self, u: int, x: int) -> None:
        self._add_mirror(u, x)
        self.count += self._apply_edge(u, x, +1)

    def _delete_directed(self, u: int, x: int) -> None:
        self._remove_mirror(u, x)
        self.count += self._apply_edge(u, x, -1)

    # -- framework callbacks ----------------------------------------------

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None:
        """Algorithm 11: flips replay as delete(old) + insert(new)."""
        self._pending_flips = list(flips)

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None:
        for u, v in oriented_deletions:  # pre-batch orientation u -> v
            self._delete_directed(u, v)
        for u, v in self._pending_flips:  # old direction u -> v
            self._delete_directed(u, v)

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None:
        for u, v in self._pending_flips:  # new direction v -> u
            self._insert_directed(v, u)
        self._pending_flips = []
        for u, v in oriented_insertions:  # post-batch orientation u -> v
            self._insert_directed(u, v)

    # -- verification ------------------------------------------------------

    def recount(self) -> int:
        """Brute-force recount via source enumeration (test oracle)."""
        total = 0
        for v in self._out:
            for subset in combinations(sorted(self._out[v]), self.k - 1):
                ok = True
                for i, a in enumerate(subset):
                    adj_a = self._adj.get(a, ())
                    for b in subset[i + 1 :]:
                        if b not in adj_a:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    total += 1
        return total

    def rebuild_tables_reference(self) -> dict[int, dict[tuple[int, ...], int]]:
        """Recompute all tables from scratch (test oracle; exponential-ish).

        Walks chains top-down: T_{k-1} by direct enumeration, then
        ``T_j[S] = Σ_{v -> S} T_{j+1}[S ∪ {v}]`` over candidate sources
        drawn from the common in-pointers of S.
        """
        k = self.k
        tables: dict[int, dict[tuple[int, ...], int]] = {
            j: {} for j in range(2, k)
        }
        if k == 2:
            return tables
        # T_{k-1}: every (k-1)-subset of every out-neighborhood.
        for v in self._out:
            for subset in combinations(sorted(self._out[v]), k - 1):
                tables[k - 1][subset] = tables[k - 1].get(subset, 0) + 1
        for j in range(k - 2, 1, -1):
            for Sp, cnt in tables[j + 1].items():
                src = self._source_of(Sp)
                if src is None:
                    continue
                S = tuple(w for w in Sp if w != src)
                tables[j][S] = tables[j].get(S, 0) + cnt
        return tables

    def space_bytes(self) -> int:
        total = 0
        for s in self._out.values():
            total += 8 + 8 * len(s)
        for j, store in self._tables.items():
            total += sum(8 * (j + 1) for _ in store)
        return total
