"""Batch-dynamic vertex coloring (paper Section 11).

Two algorithms, both driven by the PLDS through the Section-8 framework:

- :class:`ExplicitColoring` — the explicit ``O(α log n)``-coloring
  (Theorem 3.7, oblivious adversary).  Each PLDS *level* owns a disjoint
  palette of size ``2·cap(ℓ) + 1`` where ``cap(ℓ)`` is the level's
  Invariant-1 degree bound.  A vertex only ever conflicts with same-level
  neighbors (different levels use disjoint palettes), of which it has at
  most ``cap(ℓ)`` — so a free color always exists and is chosen uniformly
  at random.  Vertices recolor when they change level or when an inserted
  same-level edge collides.  Total palette size telescopes to
  ``O(α log n)`` because level caps grow geometrically across groups.

- :class:`ImplicitColoring` — the implicit coloring of Theorem 3.5
  (adaptive adversary).  No colors are stored against updates; a query
  resolves colors on demand from the acyclic low out-degree orientation
  via the greatest-fixpoint rule ``c(v) = mex{c(w) : w ∈ N_out(v)}``,
  memoized per epoch (the cache is dropped whenever the orientation
  changes).  Any two adjacent vertices share an oriented edge, so their
  colors differ; out-degrees are O(α), so at most ``max-out-degree + 1 =
  O(α)`` colors are ever used — within the paper's ``O(2^α)`` budget
  (this substitution is documented in DESIGN.md).
"""

from __future__ import annotations

import random

from ..core.plds import PLDS, DirectedEdge
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil

__all__ = ["ExplicitColoring", "ImplicitColoring"]


class ExplicitColoring:
    """Explicit ``O(α log n)`` coloring (Section 11.1)."""

    def __init__(self, plds: PLDS, tracker: WorkDepthTracker, seed: int = 0) -> None:
        self.plds = plds
        self.tracker = tracker
        self._rng = random.Random(seed)
        #: color of each vertex as (level, palette index).
        self._color: dict[int, tuple[int, int]] = {}

    # -- palette arithmetic -------------------------------------------------

    def palette_size(self, level: int) -> int:
        """Level ``ℓ`` owns ``2·cap(ℓ) + 1`` colors."""
        return 2 * int(self.plds.inv1_bound(level)) + 1

    def color(self, v: int) -> tuple[int, int]:
        """Current color as a (level, index) pair; assigns if missing."""
        c = self._color.get(v)
        lv = self.plds.level(v)
        if c is None or c[0] != lv:
            c = self._recolor(v)
        return c

    def color_id(self, v: int) -> int:
        """Flattened global color id (for palette-size measurements)."""
        level, idx = self.color(v)
        offset = sum(self.palette_size(lvl) for lvl in range(level))
        return offset + idx

    def _same_level_neighbor_colors(self, v: int) -> set[int]:
        lv = self.plds.level(v)
        used: set[int] = set()
        nbrs = self.plds.neighbors(v)
        self.tracker.add(work=max(1, len(nbrs)), depth=5)
        for w in nbrs:
            if self.plds.level(w) != lv:
                continue
            cw = self._color.get(w)
            if cw is not None and cw[0] == lv:
                used.add(cw[1])
        return used

    def _recolor(self, v: int) -> tuple[int, int]:
        """Pick a uniformly random free color from v's level palette."""
        lv = self.plds.level(v)
        size = self.palette_size(lv)
        used = self._same_level_neighbor_colors(v)
        free = [i for i in range(size) if i not in used]
        self.tracker.add(work=max(1, size), depth=log2_ceil(size) + 1)
        if not free:  # cannot happen while Invariant 1 holds
            raise AssertionError(
                f"no free color at level {lv}: palette {size}, used {len(used)}"
            )
        c = (lv, self._rng.choice(free))
        self._color[v] = c
        return c

    # -- framework callbacks ----------------------------------------------

    def batch_moved(self, moved: set[int]) -> None:
        """Vertices that changed level repaint from their new level palette.

        Recoloring picks a color free among *current* same-level neighbor
        colors; processing moved vertices in a canonical order therefore
        leaves no same-level collision among them (each later vertex sees
        the earlier ones' fresh colors), matching the parallel algorithm's
        serialization (cf. Lemma 5.9).
        """
        with self.tracker.parallel() as par:
            for v in sorted(moved):
                with par.branch():
                    self._recolor(v)

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None:
        """Colors depend on levels, not orientation: nothing to do."""

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None:
        """Deletions never create conflicts; moved vertices already fixed."""

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None:
        """Assign colors to new vertices, then resolve collisions on
        inserted same-level edges (one endpoint recolors, Section 11.1)."""
        with self.tracker.parallel() as par:
            for u, v in oriented_insertions:
                with par.branch():
                    for x in (u, v):
                        c = self._color.get(x)
                        if c is None or c[0] != self.plds.level(x):
                            self._recolor(x)
        for u, v in sorted(oriented_insertions):
            if self.color(u) == self.color(v):
                self._recolor(min(u, v))

    # -- verification ------------------------------------------------------

    def violations(self) -> list[str]:
        problems: list[str] = []
        for u, v in self.plds.edges():
            if self.color(u) == self.color(v):
                problems.append(f"edge ({u},{v}) endpoints share color")
        return problems

    def colors_used(self) -> int:
        return len({self.color_id(v) for v in self.plds.vertices()})

    def space_bytes(self) -> int:
        return 24 * len(self._color)


class ImplicitColoring:
    """Implicit orientation-based coloring (Section 11.2 semantics)."""

    def __init__(self, plds: PLDS, tracker: WorkDepthTracker) -> None:
        self.plds = plds
        self.tracker = tracker
        self._cache: dict[int, int] = {}
        self._epoch = 0

    # -- framework callbacks: any change invalidates the memo ---------------

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None:
        if flips or oriented_insertions or oriented_deletions:
            self._cache.clear()
            self._epoch += 1
            self.tracker.add(work=1, depth=1)

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None:
        if oriented_deletions:
            self._cache.clear()
            self._epoch += 1

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None:
        if oriented_insertions:
            self._cache.clear()
            self._epoch += 1

    # -- queries ---------------------------------------------------------

    def query(self, vertices: list[int]) -> dict[int, int]:
        """Colors for the queried vertices, valid on any induced subgraph.

        Colors are a pure function of the current orientation (greatest
        fixpoint of the mex recurrence down the acyclic orientation), so
        repeated and overlapping queries are mutually consistent.
        """
        return {v: self._resolve(v) for v in vertices}

    def _resolve(self, v: int) -> int:
        cached = self._cache.get(v)
        if cached is not None:
            return cached
        # Iterative DFS down out-edges (the orientation is acyclic).
        stack = [v]
        while stack:
            x = stack[-1]
            if x in self._cache:
                stack.pop()
                continue
            outs = self.plds.out_neighbors(x)
            self.tracker.add(work=max(1, len(outs)), depth=5)
            missing = [w for w in outs if w not in self._cache]
            if missing:
                stack.extend(missing)
                continue
            used = {self._cache[w] for w in outs}
            c = 0
            while c in used:
                c += 1
            self._cache[x] = c
            stack.pop()
        return self._cache[v]

    def violations(self, vertices: list[int] | None = None) -> list[str]:
        vs = list(self.plds.vertices()) if vertices is None else vertices
        colors = self.query(vs)
        vset = set(vs)
        problems = []
        for u, v in self.plds.edges():
            if u in vset and v in vset and colors[u] == colors[v]:
                problems.append(f"edge ({u},{v}) endpoints share color")
        return problems

    def space_bytes(self) -> int:
        return 16 * len(self._cache)
