"""Batch-dynamic k-clique counting (paper Section 10).

Maintains the exact number of k-cliques under batched updates using the
PLDS's O(α) out-degree orientation (Theorem 3.6).

The counting rests on the paper's Observation 10.1: in an acyclic
orientation every clique has a unique *source* whose edges all point into
the rest of the clique.  To count the cliques containing an updated edge
{u, v} (oriented u -> v) we split by source:

- ``source == u``: the remaining k-2 clique vertices are a subset of
  ``N_out(u)`` containing v — O(α^{k-2}) candidate subsets;
- ``source == v``: impossible (v would need an edge directed into u);
- ``source == s ∉ {u, v}``: then ``s -> u`` and ``s -> v``, i.e. s is a
  *wedge apex* of the pair {u, v}.  We maintain the wedge table
  ``W[{x, y}] = {s : x, y ∈ N_out(s)}`` (the k=3 instance of the paper's
  ``I_2`` table) so apexes are found without in-neighbor scans; the
  remaining k-3 vertices are a subset of ``N_out(s)``.

Batch processing telescopes: deletions are counted against the graph
state just before each edge is removed (first deleted edge of a clique
subtracts it), insertions against the state just after each edge is added
(last inserted edge of a clique adds it) — each affected clique is
counted exactly once, mirroring the role of the paper's update order R.

Compared to the paper's full table hierarchy (``I_2 … I_{k-1}``) this
variant stores only the 2-subset table, keeping space at O(mα) instead of
O(mα^{k-2}) while doing the same O(α^{k-2}) enumeration work per update —
an allowed trade the paper itself notes (space vs. recomputation).
"""

from __future__ import annotations

from itertools import combinations

from ..core.plds import PLDS, DirectedEdge
from ..graphs.dynamic_graph import canonical_edge
from ..parallel.engine import WorkDepthTracker

__all__ = ["CliqueCounter"]


class CliqueCounter:
    """Exact k-clique counter for the Section-8 framework.

    Parameters
    ----------
    k:
        Clique size to count (k >= 2; k=3 counts triangles).
    track_local:
        Also maintain per-vertex participation counts (how many
        k-cliques each vertex belongs to) — enables local clustering
        coefficients for k=3 at the same asymptotic update cost (each
        counted clique updates its k members' counters).
    """

    def __init__(
        self,
        plds: PLDS,
        tracker: WorkDepthTracker,
        k: int = 3,
        track_local: bool = False,
    ) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.plds = plds
        self.tracker = tracker
        self.k = k
        self.track_local = track_local
        self.count = 0
        #: per-vertex k-clique participation counts (when track_local).
        self.local_counts: dict[int, int] = {}
        #: mirror adjacency (undirected) and out-neighbor sets, kept in
        #: lockstep with the PLDS orientation via the framework callbacks.
        self._adj: dict[int, set[int]] = {}
        self._out: dict[int, set[int]] = {}
        #: wedge table W[{x,y}] = set of apexes s with x,y in N_out(s).
        self._wedges: dict[tuple[int, int], set[int]] = {}
        #: flips reported by the framework, deferred so they can be
        #: processed as delete+insert pairs (Algorithm 11).
        self._pending_flips: list[DirectedEdge] = []

    # -- mirror maintenance -------------------------------------------------

    def _add_directed(self, u: int, v: int) -> None:
        """Insert edge oriented u -> v into the mirror and wedge table."""
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        out_u = self._out.setdefault(u, set())
        self._out.setdefault(v, set())
        self.tracker.add(work=max(1, len(out_u)), depth=5)
        for w in out_u:
            self._wedges.setdefault(canonical_edge(v, w), set()).add(u)
        out_u.add(v)

    def _remove_directed(self, u: int, v: int) -> None:
        """Remove edge oriented u -> v from the mirror and wedge table."""
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        out_u = self._out[u]
        out_u.discard(v)
        self.tracker.add(work=max(1, len(out_u)), depth=5)
        for w in out_u:
            key = canonical_edge(v, w)
            group = self._wedges.get(key)
            if group is not None:
                group.discard(u)
                if not group:
                    del self._wedges[key]

    # -- counting -------------------------------------------------------

    def _is_clique_with(self, fixed: tuple[int, ...], subset: tuple[int, ...]) -> bool:
        """All pairs within ``fixed + subset`` adjacent (fixed pairs assumed)."""
        self.tracker.add(work=self.k * self.k, depth=1)
        for i, a in enumerate(subset):
            adj_a = self._adj.get(a, ())
            for b in subset[i + 1 :]:
                if b not in adj_a:
                    return False
            for f in fixed:
                if f not in adj_a:
                    return False
        return True

    def _adjust_local(self, members: tuple[int, ...], sign: int) -> None:
        for x in members:
            new = self.local_counts.get(x, 0) + sign
            if new:
                self.local_counts[x] = new
            else:
                self.local_counts.pop(x, None)

    def _cliques_containing(self, u: int, v: int, sign: int = 0) -> int:
        """Number of k-cliques containing edge {u, v} in the mirror state.

        Requires the mirror to contain the edge; ``u -> v`` must be its
        mirror orientation.  When local tracking is on and ``sign`` is
        nonzero, each found clique adjusts its members' participation
        counts by ``sign``.
        """
        k = self.k
        local = self.track_local and sign != 0
        if k == 2:
            if local:
                self._adjust_local((u, v), sign)
            return 1
        total = 0
        # Case source == u: choose k-2 more from N_out(u) \ {v}.
        pool = sorted(self._out.get(u, ()) - {v})
        self.tracker.add(work=max(1, len(pool)), depth=5)
        for subset in combinations(pool, k - 2):
            if self._is_clique_with((v,), subset):
                total += 1
                if local:
                    self._adjust_local((u, v) + subset, sign)
        # Case source == s (wedge apex): choose k-3 more from N_out(s).
        for s in sorted(self._wedges.get(canonical_edge(u, v), ())):
            pool_s = sorted(self._out.get(s, ()) - {u, v})
            self.tracker.add(work=max(1, len(pool_s)), depth=5)
            for subset in combinations(pool_s, k - 3):
                if self._is_clique_with((u, v), subset):
                    total += 1
                    if local:
                        self._adjust_local((s, u, v) + subset, sign)
        return total

    # -- framework callbacks ----------------------------------------------

    def batch_flips(
        self,
        flips: list[DirectedEdge],
        oriented_insertions: list[DirectedEdge],
        oriented_deletions: list[DirectedEdge],
    ) -> None:
        """Algorithm 11: defer flips, to be replayed as delete + insert.

        Replaying the old direction as a deletion and the new direction as
        an insertion keeps every intermediate mirror state a subgraph of a
        single acyclic orientation (pre-batch during deletions, post-batch
        during insertions), which the unique-source counting argument
        (Observation 10.1) requires.  The subtracted and re-added clique
        counts telescope, leaving the total unchanged by flips alone.
        """
        self._pending_flips = list(flips)

    def batch_delete(self, oriented_deletions: list[DirectedEdge]) -> None:
        """Count each destroyed clique at its first deleted edge.

        Every intermediate state here is a subgraph of the *pre-batch*
        acyclic orientation: real deletions carry their pre-batch
        direction, and flipped edges are removed under their old direction.
        """
        for u, v in oriented_deletions:  # pre-batch orientation u -> v
            self.count -= self._cliques_containing(u, v, sign=-1)
            self._remove_directed(u, v)
        for u, v in self._pending_flips:  # old direction u -> v
            self.count -= self._cliques_containing(u, v, sign=-1)
            self._remove_directed(u, v)

    def batch_insert(self, oriented_insertions: list[DirectedEdge]) -> None:
        """Count each created clique at its last inserted edge.

        Every edge added here carries its *post-batch* direction, and the
        surviving non-flipped edges are identically oriented pre and post,
        so every intermediate state is a subgraph of the post-batch
        acyclic orientation.
        """
        for u, v in self._pending_flips:  # new direction v -> u
            self._add_directed(v, u)
            self.count += self._cliques_containing(v, u, sign=1)
        self._pending_flips = []
        for u, v in oriented_insertions:  # post-batch orientation u -> v
            self._add_directed(u, v)
            self.count += self._cliques_containing(u, v, sign=1)

    # -- local counts ------------------------------------------------------

    def local_count(self, v: int) -> int:
        """Number of k-cliques vertex ``v`` participates in."""
        if not self.track_local:
            raise RuntimeError("construct with track_local=True")
        return self.local_counts.get(v, 0)

    def clustering_coefficient(self, v: int) -> float:
        """Local clustering coefficient (k=3 only): triangles(v) / C(deg,2)."""
        if self.k != 3:
            raise RuntimeError("clustering coefficients require k=3")
        if not self.track_local:
            raise RuntimeError("construct with track_local=True")
        deg = len(self._adj.get(v, ()))
        if deg < 2:
            return 0.0
        return 2.0 * self.local_counts.get(v, 0) / (deg * (deg - 1))

    # -- verification ------------------------------------------------------

    def local_recount(self) -> dict[int, int]:
        """Brute-force per-vertex recount from the mirror (test oracle)."""
        counts: dict[int, int] = {}
        for v in self._out:
            for subset in combinations(sorted(self._out[v]), self.k - 1):
                if self._is_clique_with((), subset):
                    for x in (v,) + subset:
                        counts[x] = counts.get(x, 0) + 1
        return counts

    def recount(self) -> int:
        """Brute-force recount from the mirror (test oracle)."""
        total = 0
        for v in self._out:
            for subset in combinations(sorted(self._out[v]), self.k - 1):
                if self._is_clique_with((), subset):
                    total += 1
        return total

    def space_bytes(self) -> int:
        total = 0
        for s in self._out.values():
            total += 8 + 8 * len(s)
        for g in self._wedges.values():
            total += 24 + 8 * len(g)
        return total
