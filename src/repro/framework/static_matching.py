"""Static parallel maximal matching substrate (Blelloch et al. [16]).

The paper's matching application calls a static, parallel, work-efficient
maximal matching as a subroutine (Algorithms 9–10).  We implement the
random-priority (Luby-style) algorithm: every round, each surviving edge
checks whether its random priority is the minimum among all edges sharing
an endpoint; local minima enter the matching simultaneously, matched
vertices leave.  Expected O(m) work over O(log² m) rounds w.h.p.,
which is the bound shown by Blelloch et al. / Fischer–Noever.

Determinism: priorities come from a seeded hash, so results are
reproducible while retaining the random-priority structure.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..graphs.dynamic_graph import canonical_edge
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil

__all__ = ["static_maximal_matching"]


def static_maximal_matching(
    tracker: WorkDepthTracker,
    edges: Sequence[tuple[int, int]],
    seed: int = 0,
    forbidden: Iterable[int] = (),
) -> set[tuple[int, int]]:
    """Maximal matching of the given edge set, as canonical edge pairs.

    ``forbidden`` vertices are excluded entirely (used by the dynamic
    algorithm to keep already-matched vertices out of the subproblem).
    Metered: O(m) expected work, O(log² m) depth w.h.p.
    """
    rng = random.Random(seed)
    forbidden = set(forbidden)
    alive = [
        canonical_edge(u, v)
        for u, v in edges
        if u != v and u not in forbidden and v not in forbidden
    ]
    alive = list(dict.fromkeys(alive))
    priority = {e: rng.random() for e in alive}
    matching: set[tuple[int, int]] = set()
    matched: set[int] = set()

    while alive:
        tracker.add(
            work=max(1, len(alive)), depth=log2_ceil(len(alive)) + 1
        )
        # min priority among edges at each vertex
        best: dict[int, float] = {}
        for e in alive:
            p = priority[e]
            for x in e:
                if p < best.get(x, float("inf")):
                    best[x] = p
        # local-minimum edges join the matching simultaneously
        for e in alive:
            p = priority[e]
            if best[e[0]] == p and best[e[1]] == p:
                matching.add(e)
                matched.add(e[0])
                matched.add(e[1])
        alive = [
            e for e in alive if e[0] not in matched and e[1] not in matched
        ]
    return matching
