"""Experiment harness: adapters and protocol runners for Section 6.

Wraps every dynamic k-core algorithm in the repository behind one adapter
interface so the Ins/Del/Mix protocols (Section 6, "Ins/Del/Mix
Experiments") can drive them interchangeably and report comparable
numbers: simulated cost (work/depth from the metering substrate),
wall-clock time, error statistics against exact peeling, and space.

Algorithms
----------
=========== ============================================= ===========
key         implementation                                 kind
=========== ============================================= ===========
plds        :class:`repro.core.plds.PLDS`                  parallel approx
pldsopt     PLDS with ``group_shrink=50`` (Section 6.1)    parallel approx
pldsflat    :class:`repro.core.plds_flat.PLDSFlat`         parallel approx
pldsflatopt PLDSFlat with ``group_shrink=50``              parallel approx
lds         :class:`repro.core.lds.LDS`                    sequential approx
sun         :class:`repro.baselines.sun.SunApproxDynamic`  sequential approx
hua         :class:`repro.baselines.hua.HuaExactBatchDynamic` parallel exact
zhang       :class:`repro.baselines.zhang.ZhangExactDynamic`  sequential exact
exactkcore  static rerun of ParallelExactKCore per batch   parallel exact
approxkcore static rerun of Algorithm 6 per batch          parallel approx
plds-sharded :class:`repro.shard.Coordinator` scatter-gather parallel approx
=========== ============================================= ===========

The two static keys model the paper's Fig.-11 static comparison: the
"dynamic" update simply reruns the static algorithm from scratch on the
accumulated graph.

Dispatch lives in :mod:`repro.registry` — the table above documents the
capability metadata registered there (and is pinned against it by
``tests/test_registry.py``).  This module re-exports the adapter types
and :func:`~repro.registry.make_adapter` for backward compatibility and
adds the protocol runner :func:`run_protocol`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

from ..graphs.streams import (
    deletion_batches,
    insertion_batches,
    mixed_batch,
)
from ..obs import tracing as _tracing
from ..parallel.engine import Cost
from ..registry import (
    DynamicKCoreAdapter,
    StaticRerunAdapter,
    algorithm_keys,
    make_adapter,
)
from ..static_kcore.exact import exact_coreness
from .metrics import ErrorStats, error_stats

__all__ = [
    "DynamicKCoreAdapter",
    "StaticRerunAdapter",
    "make_adapter",
    "ALGORITHM_KEYS",
    "ALL_KEYS",
    "SEQUENTIAL_KEYS",
    "BatchMeasurement",
    "ExperimentResult",
    "run_protocol",
]

Protocol = Literal["ins", "del", "mix"]

#: the genuinely dynamic algorithms (from the registry metadata).
ALGORITHM_KEYS = algorithm_keys(dynamic=True)

#: including the static-rerun pseudo-algorithms (Fig. 11 comparisons).
ALL_KEYS = algorithm_keys()

#: algorithms whose simulated running time should be read at p=1
SEQUENTIAL_KEYS = frozenset(algorithm_keys(parallel=False))


@dataclass
class BatchMeasurement:
    """Cost of processing one batch."""

    batch_size: int
    work: int
    depth: int
    wall_seconds: float


@dataclass
class ExperimentResult:
    """Outcome of one (algorithm, dataset, protocol) experiment."""

    algorithm: str
    protocol: str
    batch_size: int
    batches: list[BatchMeasurement] = field(default_factory=list)
    errors: ErrorStats | None = None
    space_bytes: int = 0

    @property
    def avg_work(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.work for b in self.batches) / len(self.batches)

    @property
    def avg_depth(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.depth for b in self.batches) / len(self.batches)

    @property
    def avg_wall(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.wall_seconds for b in self.batches) / len(self.batches)

    @property
    def total_cost(self) -> Cost:
        return Cost(
            sum(b.work for b in self.batches),
            sum(b.depth for b in self.batches),
        )


def run_protocol(
    adapter_factory: Callable[[], DynamicKCoreAdapter],
    edges: Sequence[tuple[int, int]],
    protocol: Protocol,
    batch_size: int,
    seed: int = 0,
    measure_error_against: Sequence[tuple[int, int]] | None = None,
    max_batches: int | None = None,
) -> ExperimentResult:
    """Run one Ins/Del/Mix experiment (Section 6 protocol definitions).

    - ``ins``: start empty, insert all edges in batches;
    - ``del``: start full, delete all edges in batches;
    - ``mix``: start at graph-minus-I, apply one mixed batch.

    Error statistics are computed at the end against exact peeling of the
    final graph (or of ``measure_error_against`` if given).
    """
    adapter = adapter_factory()
    final_edges: list[tuple[int, int]]

    if protocol == "ins":
        batches = insertion_batches(edges, batch_size, seed=seed)
        final_edges = list(edges)
    elif protocol == "del":
        adapter.initialize(edges)
        batches = deletion_batches(edges, batch_size, seed=seed)
        final_edges = []
    elif protocol == "mix":
        initial, batch = mixed_batch(edges, batch_size, seed=seed)
        adapter.initialize(initial)
        batches = [batch]
        removed = set(batch.deletions)
        final_edges = [e for e in initial if e not in removed] + list(
            batch.insertions
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    if max_batches is not None:
        consumed = batches[:max_batches]
        if protocol == "ins":
            final_edges = [e for b in consumed for e in b.insertions]
        elif protocol == "del":
            deleted = {e for b in consumed for e in b.deletions}
            final_edges = [e for e in edges if e not in deleted]
        batches = consumed

    result = ExperimentResult(
        algorithm=adapter.key, protocol=protocol, batch_size=batch_size
    )
    # For the del protocol the final graph is empty, so errors are
    # measured at the halfway point while the graph is still populated
    # (the paper averages errors over the deletion batches).
    halfway = max(1, len(batches) // 2)
    halfway_estimates: dict[int, float] | None = None
    tracer = _tracing.ACTIVE
    for i, batch in enumerate(batches):
        before = adapter.cost
        t0 = time.perf_counter()
        if tracer is None:
            adapter.update(batch)
        else:
            with tracer.span(
                "harness.batch", adapter.tracker, index=i, size=len(batch)
            ):
                adapter.update(batch)
        wall = time.perf_counter() - t0
        delta_cost = Cost(
            adapter.cost.work - before.work, adapter.cost.depth - before.depth
        )
        result.batches.append(
            BatchMeasurement(
                batch_size=len(batch),
                work=delta_cost.work,
                depth=delta_cost.depth,
                wall_seconds=wall,
            )
        )
        if protocol == "del" and i + 1 == halfway:
            halfway_estimates = adapter.estimates()

    if measure_error_against is not None:
        result.errors = error_stats(
            adapter.estimates(), exact_coreness(list(measure_error_against))
        )
    elif protocol == "del":
        if halfway_estimates is not None:
            deleted = {e for b in batches[:halfway] for e in b.deletions}
            remaining = [e for e in edges if e not in deleted]
            result.errors = error_stats(
                halfway_estimates, exact_coreness(remaining)
            )
    else:
        result.errors = error_stats(adapter.estimates(), exact_coreness(final_edges))
    result.space_bytes = adapter.space_bytes()
    return result
