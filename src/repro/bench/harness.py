"""Experiment harness: adapters and protocol runners for Section 6.

Wraps every dynamic k-core algorithm in the repository behind one adapter
interface so the Ins/Del/Mix protocols (Section 6, "Ins/Del/Mix
Experiments") can drive them interchangeably and report comparable
numbers: simulated cost (work/depth from the metering substrate),
wall-clock time, error statistics against exact peeling, and space.

Algorithms
----------
=========== ============================================= ===========
key         implementation                                 kind
=========== ============================================= ===========
plds        :class:`repro.core.plds.PLDS`                  parallel approx
pldsopt     PLDS with ``group_shrink=50`` (Section 6.1)    parallel approx
lds         :class:`repro.core.lds.LDS`                    sequential approx
sun         :class:`repro.baselines.sun.SunApproxDynamic`  sequential approx
hua         :class:`repro.baselines.hua.HuaExactBatchDynamic` parallel exact
zhang       :class:`repro.baselines.zhang.ZhangExactDynamic`  sequential exact
exactkcore  static rerun of ParallelExactKCore per batch   parallel exact
approxkcore static rerun of Algorithm 6 per batch          parallel approx
=========== ============================================= ===========

The two static keys model the paper's Fig.-11 static comparison: the
"dynamic" update simply reruns the static algorithm from scratch on the
accumulated graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

from ..baselines.hua import HuaExactBatchDynamic
from ..baselines.sun import SunApproxDynamic
from ..baselines.zhang import ZhangExactDynamic
from ..core.lds import LDS
from ..core.plds import PLDS
from ..graphs.streams import (
    Batch,
    deletion_batches,
    insertion_batches,
    mixed_batch,
)
from ..parallel.engine import Cost, WorkDepthTracker
from ..static_kcore.exact import exact_coreness
from .metrics import ErrorStats, error_stats

__all__ = [
    "DynamicKCoreAdapter",
    "StaticRerunAdapter",
    "make_adapter",
    "ALGORITHM_KEYS",
    "ALL_KEYS",
    "BatchMeasurement",
    "ExperimentResult",
    "run_protocol",
]

Protocol = Literal["ins", "del", "mix"]

ALGORITHM_KEYS = ("plds", "pldsopt", "lds", "sun", "hua", "zhang")

#: including the static-rerun pseudo-algorithms (Fig. 11 comparisons).
ALL_KEYS = ALGORITHM_KEYS + ("exactkcore", "approxkcore")

#: algorithms whose simulated running time should be read at p=1
SEQUENTIAL_KEYS = frozenset({"lds", "sun", "zhang"})


class StaticRerunAdapter:
    """A 'dynamic' algorithm that reruns a static one after every batch.

    Mirrors the paper's Fig.-11 protocol for ExactKCore/ApproxKCore: the
    static algorithm is rerun from scratch on the full accumulated graph
    after each batch, so per-batch cost is the full static cost.
    """

    def __init__(self, kind: str, tracker: WorkDepthTracker) -> None:
        from ..graphs.dynamic_graph import DynamicGraph

        self.kind = kind
        self.tracker = tracker
        self._graph = DynamicGraph()
        self._estimates: dict[int, float] = {}

    def initialize(self, edges) -> None:
        for u, v in edges:
            self._graph.insert_edge(u, v)
        self._recompute()

    def update(self, batch: Batch) -> None:
        for u, v in batch.insertions:
            self._graph.insert_edge(u, v)
        for u, v in batch.deletions:
            self._graph.delete_edge(u, v)
        self._recompute()

    def _recompute(self) -> None:
        from ..static_kcore.approx import approx_coreness_static
        from ..static_kcore.exact import ParallelExactKCore

        edges = list(self._graph.edges())
        if self.kind == "exactkcore":
            result = ParallelExactKCore(self.tracker).run(edges)
            self._estimates = {v: float(k) for v, k in result.coreness.items()}
        else:
            result = approx_coreness_static(edges, tracker=self.tracker)
            self._estimates = dict(result.estimates)

    def coreness_estimates(self) -> dict[int, float]:
        return dict(self._estimates)

    def space_bytes(self) -> int:
        return 16 * self._graph.num_edges + 8 * self._graph.num_vertices


class DynamicKCoreAdapter:
    """Uniform facade over the dynamic k-core implementations."""

    def __init__(self, key: str, impl, is_exact: bool) -> None:
        self.key = key
        self.impl = impl
        self.is_exact = is_exact

    # -- lifecycle -------------------------------------------------------

    def initialize(self, edges: Sequence[tuple[int, int]]) -> None:
        if isinstance(self.impl, (PLDS, LDS)):
            if edges:
                self.impl.update(Batch(insertions=list(edges)))
        else:
            self.impl.initialize(edges)

    def update(self, batch: Batch) -> None:
        self.impl.update(batch)

    # -- results ------------------------------------------------------------

    def estimates(self) -> dict[int, float]:
        if isinstance(self.impl, (PLDS, LDS, SunApproxDynamic, StaticRerunAdapter)):
            return self.impl.coreness_estimates()
        return {v: float(k) for v, k in self.impl.corenesses().items()}

    @property
    def cost(self) -> Cost:
        return self.impl.tracker.cost

    def space_bytes(self) -> int:
        return self.impl.space_bytes()


def make_adapter(
    key: str,
    n_hint: int,
    delta: float = 0.4,
    lam: float = 3.0,
    sun_eps: float = 2.0,
    sun_lam: float = 2.0,
    sun_alpha: float = 2.0,
    upper_coeff: float | None = None,
    group_shrink_opt: int = 50,
) -> DynamicKCoreAdapter:
    """Build the adapter for one algorithm key with paper-default params."""
    if key == "plds":
        return DynamicKCoreAdapter(
            key, PLDS(n_hint, delta=delta, lam=lam, upper_coeff=upper_coeff), False
        )
    if key == "pldsopt":
        return DynamicKCoreAdapter(
            key,
            PLDS(
                n_hint,
                delta=delta,
                lam=lam,
                group_shrink=group_shrink_opt,
                upper_coeff=upper_coeff,
            ),
            False,
        )
    if key == "lds":
        return DynamicKCoreAdapter(
            key, LDS(n_hint, delta=delta, lam=lam, upper_coeff=upper_coeff), False
        )
    if key == "sun":
        return DynamicKCoreAdapter(
            key,
            SunApproxDynamic(n_hint, eps=sun_eps, lam=sun_lam, alpha=sun_alpha),
            False,
        )
    if key == "hua":
        return DynamicKCoreAdapter(key, HuaExactBatchDynamic(), True)
    if key == "zhang":
        return DynamicKCoreAdapter(key, ZhangExactDynamic(), True)
    if key in ("exactkcore", "approxkcore"):
        return DynamicKCoreAdapter(
            key,
            StaticRerunAdapter(key, WorkDepthTracker()),
            key == "exactkcore",
        )
    raise ValueError(f"unknown algorithm key {key!r}; choose from {ALL_KEYS}")


@dataclass
class BatchMeasurement:
    """Cost of processing one batch."""

    batch_size: int
    work: int
    depth: int
    wall_seconds: float


@dataclass
class ExperimentResult:
    """Outcome of one (algorithm, dataset, protocol) experiment."""

    algorithm: str
    protocol: str
    batch_size: int
    batches: list[BatchMeasurement] = field(default_factory=list)
    errors: ErrorStats | None = None
    space_bytes: int = 0

    @property
    def avg_work(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.work for b in self.batches) / len(self.batches)

    @property
    def avg_depth(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.depth for b in self.batches) / len(self.batches)

    @property
    def avg_wall(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.wall_seconds for b in self.batches) / len(self.batches)

    @property
    def total_cost(self) -> Cost:
        return Cost(
            sum(b.work for b in self.batches),
            sum(b.depth for b in self.batches),
        )


def run_protocol(
    adapter_factory: Callable[[], DynamicKCoreAdapter],
    edges: Sequence[tuple[int, int]],
    protocol: Protocol,
    batch_size: int,
    seed: int = 0,
    measure_error_against: Sequence[tuple[int, int]] | None = None,
    max_batches: int | None = None,
) -> ExperimentResult:
    """Run one Ins/Del/Mix experiment (Section 6 protocol definitions).

    - ``ins``: start empty, insert all edges in batches;
    - ``del``: start full, delete all edges in batches;
    - ``mix``: start at graph-minus-I, apply one mixed batch.

    Error statistics are computed at the end against exact peeling of the
    final graph (or of ``measure_error_against`` if given).
    """
    adapter = adapter_factory()
    final_edges: list[tuple[int, int]]

    if protocol == "ins":
        batches = insertion_batches(edges, batch_size, seed=seed)
        final_edges = list(edges)
    elif protocol == "del":
        adapter.initialize(edges)
        batches = deletion_batches(edges, batch_size, seed=seed)
        final_edges = []
    elif protocol == "mix":
        initial, batch = mixed_batch(edges, batch_size, seed=seed)
        adapter.initialize(initial)
        batches = [batch]
        removed = set(batch.deletions)
        final_edges = [e for e in initial if e not in removed] + list(
            batch.insertions
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    if max_batches is not None:
        consumed = batches[:max_batches]
        if protocol == "ins":
            final_edges = [e for b in consumed for e in b.insertions]
        elif protocol == "del":
            deleted = {e for b in consumed for e in b.deletions}
            final_edges = [e for e in edges if e not in deleted]
        batches = consumed

    result = ExperimentResult(
        algorithm=adapter.key, protocol=protocol, batch_size=batch_size
    )
    # For the del protocol the final graph is empty, so errors are
    # measured at the halfway point while the graph is still populated
    # (the paper averages errors over the deletion batches).
    halfway = max(1, len(batches) // 2)
    halfway_estimates: dict[int, float] | None = None
    for i, batch in enumerate(batches):
        before = adapter.cost
        t0 = time.perf_counter()
        adapter.update(batch)
        wall = time.perf_counter() - t0
        delta_cost = Cost(
            adapter.cost.work - before.work, adapter.cost.depth - before.depth
        )
        result.batches.append(
            BatchMeasurement(
                batch_size=len(batch),
                work=delta_cost.work,
                depth=delta_cost.depth,
                wall_seconds=wall,
            )
        )
        if protocol == "del" and i + 1 == halfway:
            halfway_estimates = adapter.estimates()

    if measure_error_against is not None:
        result.errors = error_stats(
            adapter.estimates(), exact_coreness(list(measure_error_against))
        )
    elif protocol == "del":
        if halfway_estimates is not None:
            deleted = {e for b in batches[:halfway] for e in b.deletions}
            remaining = [e for e in edges if e not in deleted]
            result.errors = error_stats(
                halfway_estimates, exact_coreness(remaining)
            )
    else:
        result.errors = error_stats(adapter.estimates(), exact_coreness(final_edges))
    result.space_bytes = adapter.space_bytes()
    return result
