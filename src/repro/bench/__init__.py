"""Benchmark/experiment support: adapters, protocol runners, error metrics."""

from .harness import (
    ALGORITHM_KEYS,
    ALL_KEYS,
    StaticRerunAdapter,
    SEQUENTIAL_KEYS,
    BatchMeasurement,
    DynamicKCoreAdapter,
    ExperimentResult,
    make_adapter,
    run_protocol,
)
from .metrics import ErrorStats, error_percentiles, error_stats
from .perfsuite import (
    BenchReport,
    Comparison,
    ComparisonResult,
    PerfEntry,
    compare_bench,
    load_bench,
    run_suite,
    write_bench,
)

__all__ = [
    "BenchReport",
    "Comparison",
    "ComparisonResult",
    "PerfEntry",
    "compare_bench",
    "load_bench",
    "run_suite",
    "write_bench",
    "ALGORITHM_KEYS",
    "ALL_KEYS",
    "StaticRerunAdapter",
    "SEQUENTIAL_KEYS",
    "BatchMeasurement",
    "DynamicKCoreAdapter",
    "ExperimentResult",
    "make_adapter",
    "run_protocol",
    "ErrorStats",
    "error_stats",
    "error_percentiles",
]
