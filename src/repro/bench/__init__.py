"""Benchmark/experiment support: adapters, protocol runners, error metrics."""

from .harness import (
    ALGORITHM_KEYS,
    ALL_KEYS,
    StaticRerunAdapter,
    SEQUENTIAL_KEYS,
    BatchMeasurement,
    DynamicKCoreAdapter,
    ExperimentResult,
    make_adapter,
    run_protocol,
)
from .metrics import ErrorStats, error_percentiles, error_stats

__all__ = [
    "ALGORITHM_KEYS",
    "ALL_KEYS",
    "StaticRerunAdapter",
    "SEQUENTIAL_KEYS",
    "BatchMeasurement",
    "DynamicKCoreAdapter",
    "ExperimentResult",
    "make_adapter",
    "run_protocol",
    "ErrorStats",
    "error_stats",
    "error_percentiles",
]
