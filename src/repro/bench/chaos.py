"""Chaos harness: randomized fault injection against the serving layer.

The fault substrate (:mod:`repro.faults`) can crash the stack at any of
its named sites; the transactional serving layer (:mod:`repro.service`)
claims it recovers from every such crash with **bit-identical** final
coreness state.  This module turns that claim into a repeatable
experiment:

1. run the workload once with no faults → the *baseline* coreness map;
2. run it once more under a recording plan → the fault-site *census*
   (how many times each site is reached, i.e. which crashes are even
   possible on this workload);
3. for each trial, draw a seeded :func:`repro.faults.random_plan` (one
   armed fault at a uniformly random live site/hit), run the same
   workload under it, and compare the final ``coreness_map()`` against
   the baseline.

A trial passes only if the fault actually fired, the service rolled back
and retried, and the end state is exactly the baseline.  The report is
JSON-serializable for CI (the ``chaos-smoke`` job runs ``repro chaos``
on a small power-law workload with a fixed seed).

The workload interleaves insertion and deletion batches of a
Barabási–Albert graph — deletions are required to make the
``plds.desaturate`` site (RebalanceDeletions) reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .. import faults
from ..graphs.generators import barabasi_albert
from ..graphs.streams import Batch, deletion_batches, insertion_batches
from ..obs.metrics import MetricsRegistry, collecting
from ..obs.timeline import Timeline, sampling
from ..obs.tracing import Tracer, tracing
from ..service import AuditPolicy, CoreService, RetryPolicy

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "ReadProbe",
    "ReadProbePlan",
    "chaos_workload",
    "probe_consistent",
    "run_chaos",
]


@dataclass(frozen=True)
class ReadProbe:
    """One wait-free read taken *at a faultpoint* of a chaos run.

    ``estimates`` is the published epoch's (immutable) coreness mapping —
    held by reference, which is exactly what the copy-on-write publication
    protocol makes safe: a published epoch is never mutated again.
    """

    site: str
    epoch: int
    batches_applied: int
    staleness: int
    degraded: bool
    estimates: Mapping[int, float]


class ReadProbePlan(faults.FaultPlan):
    """A :class:`~repro.faults.FaultPlan` that reads at every faultpoint.

    Each traversal of any fault site first issues a wait-free read
    through the service's :meth:`~repro.service.CoreService.reader`
    handle — recording the served epoch, its staleness, and the full
    coreness mapping — and only then defers to the base plan (so an
    armed point still fires).  Because the sites sit *inside* the apply
    path (mid-cascade, mid-rollback, mid-rebuild), the recorded probes
    are reads interleaved at every crash point of the run; checking each
    against the matching batch-prefix reference map is the
    linearizability argument for the read path.
    """

    def __init__(self, points: Iterable[faults.FaultPoint] = ()) -> None:
        super().__init__(points)
        self.reader = None
        self.probes: list[ReadProbe] = []

    def bind(self, service) -> None:
        """Attach the service whose published epochs the probes read."""
        self.reader = service.reader()

    def hit(self, site: str) -> None:
        reader = self.reader
        if reader is not None:
            view = reader.view
            self.probes.append(
                ReadProbe(
                    site=site,
                    epoch=view.epoch,
                    batches_applied=view.batches_applied,
                    staleness=reader.staleness,
                    degraded=reader.degraded,
                    estimates=view.estimates,
                )
            )
        super().hit(site)


def probe_consistent(
    probe: ReadProbe, references: Sequence[Mapping[int, float]]
) -> bool:
    """Is one probed read prefix-consistent and within the staleness bound?

    ``references[k]`` must be the coreness map of a fault-free serial run
    after its first ``k`` batches.  A probe passes iff it served exactly
    the committed-prefix state it claims (``references[batches_applied]``)
    and trailed the write head by at most the one in-flight batch.
    """
    return (
        probe.staleness <= 1
        and probe.batches_applied < len(references)
        and dict(probe.estimates) == references[probe.batches_applied]
    )


@dataclass(frozen=True)
class ChaosTrial:
    """Outcome of one workload run under one randomized fault plan."""

    seed: int
    site: str
    hit_number: int
    fired: bool
    parity: bool
    rolled_back_batches: int
    total_attempts: int
    degraded: bool
    error: str | None = None
    #: :meth:`BatchTelemetry.to_dict` rows for the batches that rolled
    #: back or degraded during this trial — the recovery story, serialized
    #: through the one telemetry path.
    recovery_telemetry: tuple[dict, ...] = ()
    #: wait-free reads issued at faultpoints (``--trace`` runs only) and
    #: how many matched their committed-prefix reference within the
    #: one-batch staleness bound.
    reads_probed: int = 0
    reads_consistent: int = 0
    max_read_staleness: int = 0
    #: traversals slowed by an armed stall window (``stall_depth`` runs);
    #: parity must hold regardless — stalls add depth, never wrong state.
    stalled_hits: int = 0

    @property
    def ok(self) -> bool:
        """Did the fault fire *and* the service recover bit-identically?"""
        return (
            self.fired
            and self.parity
            and self.error is None
            and self.reads_consistent == self.reads_probed
        )

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "site": self.site,
            "hit_number": self.hit_number,
            "fired": self.fired,
            "parity": self.parity,
            "rolled_back_batches": self.rolled_back_batches,
            "total_attempts": self.total_attempts,
            "degraded": self.degraded,
            "error": self.error,
            "ok": self.ok,
            "recovery_telemetry": list(self.recovery_telemetry),
            "reads_probed": self.reads_probed,
            "reads_consistent": self.reads_consistent,
            "max_read_staleness": self.max_read_staleness,
            "stalled_hits": self.stalled_hits,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Full chaos-run record: workload, census, and per-trial outcomes."""

    algorithm: str
    vertices: int
    batch_size: int
    seed: int
    updates: int
    batches: int
    census: dict[str, int] = field(repr=False)
    trials: tuple[ChaosTrial, ...] = field(repr=False, default=())
    #: baseline run's span forest (``Span.to_dict`` trees) when the
    #: experiment ran with tracing on; empty otherwise.
    trace: tuple[dict, ...] = field(repr=False, default=())
    #: metrics-registry JSON dump covering the whole experiment (baseline
    #: plus every trial) when tracing was on; ``None`` otherwise.
    metrics: dict | None = field(repr=False, default=None)
    #: per-batch delta-encoded metric timeline over the whole experiment
    #: (:meth:`repro.obs.timeline.Timeline.to_json_dict`) when tracing
    #: was on; ``None`` otherwise.
    timeline: dict | None = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    def to_json_dict(self) -> dict:
        data = {
            "format": 1,
            "algorithm": self.algorithm,
            "vertices": self.vertices,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "updates": self.updates,
            "batches": self.batches,
            "census": dict(self.census),
            "trials": [t.to_json_dict() for t in self.trials],
            "ok": self.ok,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.timeline is not None:
            data["timeline"] = self.timeline
        return data


def chaos_workload(
    vertices: int,
    batch_size: int,
    seed: int,
    attach: int = 3,
    delete_fraction: float = 0.5,
) -> list[Batch]:
    """A mixed insert-then-delete stream over a power-law graph.

    All edges of a Barabási–Albert graph are inserted in batches, then a
    ``delete_fraction`` of them deleted in batches — enough Invariant-2
    pressure to make every fault site (including ``plds.desaturate``)
    reachable.
    """
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be in [0, 1]")
    edges = barabasi_albert(vertices, attach, seed=seed)
    doomed = edges[: int(len(edges) * delete_fraction)]
    return insertion_batches(edges, batch_size, seed=seed) + deletion_batches(
        doomed, batch_size, seed=seed
    )


def _serve(
    batches: Sequence[Batch],
    algorithm: str,
    n_hint: int,
    plan: faults.FaultPlan | None,
    on_commit=None,
) -> CoreService:
    service = CoreService(
        algorithm,
        n_hint=n_hint,
        retry=RetryPolicy(max_attempts=3),
        audit=AuditPolicy("on-recovery"),
    )
    if plan is None:
        for batch in batches:
            service.apply_batch(batch)
            if on_commit is not None:
                on_commit(service)
        return service
    bind = getattr(plan, "bind", None)
    if bind is not None:
        bind(service)
    with faults.active(plan):
        for batch in batches:
            service.apply_batch(batch)
    return service


def run_chaos(
    algorithm: str = "pldsopt",
    vertices: int = 150,
    batch_size: int = 50,
    trials: int = 8,
    seed: int = 0,
    delete_fraction: float = 0.5,
    trace: bool = False,
    stall_depth: int = 0,
) -> ChaosReport:
    """Run the chaos experiment; see the module docstring for the design.

    Raises ``ValueError`` if the workload leaves *no* fault site
    reachable (that would make every trial vacuous, not a pass).

    With ``trace`` on, the baseline run executes under a tracer (its span
    forest lands in :attr:`ChaosReport.trace`) and the whole experiment —
    baseline plus trials — under one metrics registry
    (:attr:`ChaosReport.metrics`), so faultpoint fires and service
    retries/rollbacks are visible in the report.  ``trace`` also arms the
    readers: the baseline run records the coreness map after every batch
    prefix, each trial's fault plan is upgraded to a
    :class:`ReadProbePlan` that issues a wait-free read at every
    faultpoint traversal, and every probed read is checked against its
    committed-prefix reference (see :func:`probe_consistent`) — the
    linearizability check the mvcc test suite pins.

    ``stall_depth > 0`` additionally arms a
    :class:`~repro.faults.StallPoint` on ``service.apply`` over the
    middle half of each trial (slow-apply injection): recovery and the
    parity/read-consistency gates must hold under combined crash + stall
    pressure, and the trial reports how many traversals were slowed.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    batches = chaos_workload(
        vertices, batch_size, seed, delete_fraction=delete_fraction
    )
    n_hint = vertices + 1

    registry = MetricsRegistry() if trace else None
    timeline = Timeline(registry) if trace else None
    trace_dicts: tuple[dict, ...] = ()
    references: list[dict] | None = None
    if trace:
        references = [{}]  # prefix 0: no batches applied yet
        record = lambda svc: references.append(dict(svc.coreness_map()))  # noqa: E731
        tracer = Tracer()
        with collecting(registry), tracing(tracer), sampling(timeline):
            baseline = _serve(
                batches, algorithm, n_hint, None, on_commit=record
            ).coreness_map()
        trace_dicts = tuple(s.to_dict() for s in tracer.roots)
    else:
        baseline = _serve(batches, algorithm, n_hint, None).coreness_map()

    census = faults.recording_plan()
    _serve(batches, algorithm, n_hint, census)
    if not any(census.counts.values()):
        raise ValueError("workload reaches no fault site; nothing to test")

    results: list[ChaosTrial] = []
    for i in range(trials):
        plan = faults.random_plan(seed + i, census.counts)
        if references is not None:
            plan = ReadProbePlan(plan.points)
        if stall_depth:
            apply_hits = census.counts["service.apply"]
            plan.stall(
                "service.apply",
                stall_depth,
                first_hit=max(1, apply_hits // 4),
                last_hit=max(1, (3 * apply_hits) // 4),
            )
        point = plan.points[0]
        error: str | None = None
        service: CoreService | None = None
        try:
            if registry is not None:
                # One registry + timeline across every trial: ticks are
                # per-service batch serials, so they restart at 1 per
                # trial — the deltas still compose into one experiment
                # history (all deterministic).
                with collecting(registry), sampling(timeline):
                    service = _serve(batches, algorithm, n_hint, plan)
            else:
                service = _serve(batches, algorithm, n_hint, plan)
        except Exception as exc:  # recovery failed: the finding we hunt
            error = f"{type(exc).__name__}: {exc}"
        probes = getattr(plan, "probes", ())
        results.append(
            ChaosTrial(
                seed=seed + i,
                site=point.site,
                hit_number=point.hit_number,
                fired=bool(plan.fired),
                parity=(
                    service is not None
                    and service.coreness_map() == baseline
                ),
                rolled_back_batches=(
                    sum(t.rolled_back for t in service.telemetry)
                    if service is not None
                    else 0
                ),
                total_attempts=(
                    sum(t.attempts for t in service.telemetry)
                    if service is not None
                    else 0
                ),
                degraded=service.degraded if service is not None else False,
                error=error,
                recovery_telemetry=tuple(
                    t.to_dict()
                    for t in (service.telemetry if service is not None else ())
                    if t.rolled_back or t.degraded
                ),
                reads_probed=len(probes),
                reads_consistent=sum(
                    1
                    for p in probes
                    if probe_consistent(p, references or [])
                ),
                max_read_staleness=max(
                    (p.staleness for p in probes), default=0
                ),
                stalled_hits=plan.stalled_hits,
            )
        )
    return ChaosReport(
        algorithm=algorithm,
        vertices=vertices,
        batch_size=batch_size,
        seed=seed,
        updates=sum(len(b) for b in batches),
        batches=len(batches),
        census=dict(census.counts),
        trials=tuple(results),
        trace=trace_dicts,
        metrics=registry.to_json_dict() if registry is not None else None,
        timeline=timeline.to_json_dict() if timeline is not None else None,
    )
