"""Chaos harness: randomized fault injection against the serving layer.

The fault substrate (:mod:`repro.faults`) can crash the stack at any of
its named sites; the transactional serving layer (:mod:`repro.service`)
claims it recovers from every such crash with **bit-identical** final
coreness state.  This module turns that claim into a repeatable
experiment:

1. run the workload once with no faults → the *baseline* coreness map;
2. run it once more under a recording plan → the fault-site *census*
   (how many times each site is reached, i.e. which crashes are even
   possible on this workload);
3. for each trial, draw a seeded :func:`repro.faults.random_plan` (one
   armed fault at a uniformly random live site/hit), run the same
   workload under it, and compare the final ``coreness_map()`` against
   the baseline.

A trial passes only if the fault actually fired, the service rolled back
and retried, and the end state is exactly the baseline.  The report is
JSON-serializable for CI (the ``chaos-smoke`` job runs ``repro chaos``
on a small power-law workload with a fixed seed).

The workload interleaves insertion and deletion batches of a
Barabási–Albert graph — deletions are required to make the
``plds.desaturate`` site (RebalanceDeletions) reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .. import faults
from ..graphs.generators import barabasi_albert
from ..graphs.streams import Batch, deletion_batches, insertion_batches
from ..obs.metrics import MetricsRegistry, collecting
from ..obs.tracing import Tracer, tracing
from ..service import AuditPolicy, CoreService, RetryPolicy

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "chaos_workload",
    "run_chaos",
]


@dataclass(frozen=True)
class ChaosTrial:
    """Outcome of one workload run under one randomized fault plan."""

    seed: int
    site: str
    hit_number: int
    fired: bool
    parity: bool
    rolled_back_batches: int
    total_attempts: int
    degraded: bool
    error: str | None = None
    #: :meth:`BatchTelemetry.to_dict` rows for the batches that rolled
    #: back or degraded during this trial — the recovery story, serialized
    #: through the one telemetry path.
    recovery_telemetry: tuple[dict, ...] = ()

    @property
    def ok(self) -> bool:
        """Did the fault fire *and* the service recover bit-identically?"""
        return self.fired and self.parity and self.error is None

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "site": self.site,
            "hit_number": self.hit_number,
            "fired": self.fired,
            "parity": self.parity,
            "rolled_back_batches": self.rolled_back_batches,
            "total_attempts": self.total_attempts,
            "degraded": self.degraded,
            "error": self.error,
            "ok": self.ok,
            "recovery_telemetry": list(self.recovery_telemetry),
        }


@dataclass(frozen=True)
class ChaosReport:
    """Full chaos-run record: workload, census, and per-trial outcomes."""

    algorithm: str
    vertices: int
    batch_size: int
    seed: int
    updates: int
    batches: int
    census: dict[str, int] = field(repr=False)
    trials: tuple[ChaosTrial, ...] = field(repr=False, default=())
    #: baseline run's span forest (``Span.to_dict`` trees) when the
    #: experiment ran with tracing on; empty otherwise.
    trace: tuple[dict, ...] = field(repr=False, default=())
    #: metrics-registry JSON dump covering the whole experiment (baseline
    #: plus every trial) when tracing was on; ``None`` otherwise.
    metrics: dict | None = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    def to_json_dict(self) -> dict:
        data = {
            "format": 1,
            "algorithm": self.algorithm,
            "vertices": self.vertices,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "updates": self.updates,
            "batches": self.batches,
            "census": dict(self.census),
            "trials": [t.to_json_dict() for t in self.trials],
            "ok": self.ok,
        }
        if self.trace:
            data["trace"] = list(self.trace)
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data


def chaos_workload(
    vertices: int,
    batch_size: int,
    seed: int,
    attach: int = 3,
    delete_fraction: float = 0.5,
) -> list[Batch]:
    """A mixed insert-then-delete stream over a power-law graph.

    All edges of a Barabási–Albert graph are inserted in batches, then a
    ``delete_fraction`` of them deleted in batches — enough Invariant-2
    pressure to make every fault site (including ``plds.desaturate``)
    reachable.
    """
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be in [0, 1]")
    edges = barabasi_albert(vertices, attach, seed=seed)
    doomed = edges[: int(len(edges) * delete_fraction)]
    return insertion_batches(edges, batch_size, seed=seed) + deletion_batches(
        doomed, batch_size, seed=seed
    )


def _serve(
    batches: Sequence[Batch],
    algorithm: str,
    n_hint: int,
    plan: faults.FaultPlan | None,
) -> CoreService:
    service = CoreService(
        algorithm,
        n_hint=n_hint,
        retry=RetryPolicy(max_attempts=3),
        audit=AuditPolicy("on-recovery"),
    )
    if plan is None:
        for batch in batches:
            service.apply_batch(batch)
        return service
    with faults.active(plan):
        for batch in batches:
            service.apply_batch(batch)
    return service


def run_chaos(
    algorithm: str = "pldsopt",
    vertices: int = 150,
    batch_size: int = 50,
    trials: int = 8,
    seed: int = 0,
    delete_fraction: float = 0.5,
    trace: bool = False,
) -> ChaosReport:
    """Run the chaos experiment; see the module docstring for the design.

    Raises ``ValueError`` if the workload leaves *no* fault site
    reachable (that would make every trial vacuous, not a pass).

    With ``trace`` on, the baseline run executes under a tracer (its span
    forest lands in :attr:`ChaosReport.trace`) and the whole experiment —
    baseline plus trials — under one metrics registry
    (:attr:`ChaosReport.metrics`), so faultpoint fires and service
    retries/rollbacks are visible in the report.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    batches = chaos_workload(
        vertices, batch_size, seed, delete_fraction=delete_fraction
    )
    n_hint = vertices + 1

    registry = MetricsRegistry() if trace else None
    trace_dicts: tuple[dict, ...] = ()
    if trace:
        tracer = Tracer()
        with collecting(registry), tracing(tracer):
            baseline = _serve(batches, algorithm, n_hint, None).coreness_map()
        trace_dicts = tuple(s.to_dict() for s in tracer.roots)
    else:
        baseline = _serve(batches, algorithm, n_hint, None).coreness_map()

    census = faults.recording_plan()
    _serve(batches, algorithm, n_hint, census)
    if not any(census.counts.values()):
        raise ValueError("workload reaches no fault site; nothing to test")

    results: list[ChaosTrial] = []
    for i in range(trials):
        plan = faults.random_plan(seed + i, census.counts)
        point = plan.points[0]
        error: str | None = None
        service: CoreService | None = None
        try:
            if registry is not None:
                with collecting(registry):
                    service = _serve(batches, algorithm, n_hint, plan)
            else:
                service = _serve(batches, algorithm, n_hint, plan)
        except Exception as exc:  # recovery failed: the finding we hunt
            error = f"{type(exc).__name__}: {exc}"
        results.append(
            ChaosTrial(
                seed=seed + i,
                site=point.site,
                hit_number=point.hit_number,
                fired=bool(plan.fired),
                parity=(
                    service is not None
                    and service.coreness_map() == baseline
                ),
                rolled_back_batches=(
                    sum(t.rolled_back for t in service.telemetry)
                    if service is not None
                    else 0
                ),
                total_attempts=(
                    sum(t.attempts for t in service.telemetry)
                    if service is not None
                    else 0
                ),
                degraded=service.degraded if service is not None else False,
                error=error,
                recovery_telemetry=tuple(
                    t.to_dict()
                    for t in (service.telemetry if service is not None else ())
                    if t.rolled_back or t.degraded
                ),
            )
        )
    return ChaosReport(
        algorithm=algorithm,
        vertices=vertices,
        batch_size=batch_size,
        seed=seed,
        updates=sum(len(b) for b in batches),
        batches=len(batches),
        census=dict(census.counts),
        trials=tuple(results),
        trace=trace_dicts,
        metrics=registry.to_json_dict() if registry is not None else None,
    )
