"""Perf-regression harness: ``repro bench``.

Times the canonical Ins/Del/Mix workloads (Section 6 protocols) on two
synthetic stream families — a power-law graph (the paper's social-network
regime) and a 2-D grid (the road-network regime) — for a configurable set
of algorithms, and records one JSON file per run at the repository root:

``BENCH_<label>.json``::

    {
      "format": 1,
      "label": "pr1",
      "scale": 1.0,
      "entries": [
        {"workload": "powerlaw-mix", "algo": "plds",
         "wall_s": 0.41, "work": 1234567, "depth": 890, "space": 65536},
        ...
      ]
    }

Successive files form the repository's perf trajectory; ``compare_bench``
flags wall-clock regressions beyond a configurable tolerance (work/depth
are deterministic under the metering substrate, so any growth there is
reported at the same tolerance but almost always means an intentional
algorithmic change).

Timing protocol
---------------
``wall_s`` is the end-to-end time to *construct the structure and apply
the whole update stream* (for Del/Mix that includes building the initial
graph), measured with a lean runner that skips the error-vs-exact-peeling
measurement of :func:`repro.bench.harness.run_protocol` — accuracy
checking is identical across implementations of the same algorithm and
would only dilute the signal a hot-path change produces.  ``work`` /
``depth`` are the metered totals over the same span and are deterministic;
``space`` is the structure's resident-byte estimate after the run.
"""

from __future__ import annotations

import cProfile
import gc
import json
import math
import pstats
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from ..graphs.generators import barabasi_albert, grid_2d
from ..graphs.streams import deletion_batches, insertion_batches, mixed_batch
from ..obs.tracing import Tracer, phase_totals, tracing
from ..parallel.engine import Cost
from ..parallel.scheduler import BrentScheduler
from ..registry import algorithm_spec, make_adapter

__all__ = [
    "PerfEntry",
    "BenchReport",
    "Comparison",
    "ComparisonResult",
    "DEFAULT_ALGOS",
    "WORKLOADS",
    "run_suite",
    "write_bench",
    "load_bench",
    "compare_bench",
]

#: algorithms benched by default — the level structures this repo optimizes.
DEFAULT_ALGOS = ("plds", "pldsopt", "pldsflat", "pldsflatopt", "lds")

#: workload keys: ``<stream-family>-<protocol>``.
WORKLOADS = (
    "powerlaw-ins",
    "powerlaw-del",
    "powerlaw-mix",
    "grid-ins",
    "grid-del",
    "grid-mix",
)

_BASE_POWERLAW_N = 3000
_BASE_GRID_SIDE = 55
_STREAM_SEED = 7

#: thread count for the simulated ``t_p`` column (the paper's machine).
T_P_THREADS = 60


@dataclass(frozen=True)
class PerfEntry:
    """One (workload, algorithm) measurement.

    ``phases`` is the optional per-phase attribution table
    (:func:`repro.obs.tracing.phase_totals`) recorded when the suite runs
    with tracing on (``repro bench --trace``), so a regression can name
    the offending phase.  It defaults to ``None`` — baseline files
    written before the field existed load unchanged, and the regression
    gate never compares it.

    ``t_p`` is the simulated parallel running time at the benchmark
    thread count (:data:`T_P_THREADS`, sequential algorithms at 1) via
    Brent's bound over the metered (work, depth).  For the sharded
    coordinator the metered depth is the scatter-gather critical path —
    per cascade round, the max over shards plus the ghost-exchange
    combining depth — so ``t_p`` is directly comparable between the
    sharded and single-structure rows.  Like ``phases`` it is optional:
    pre-existing baseline files load unchanged and the gate skips it.

    ``pool`` carries the pool backend's dispatch accounting
    (:meth:`repro.parallel.pool.PoolBackend.pool_stats`) when the cell
    ran with ``--backend pool`` — dispatch count and mean per-dispatch
    bytes copied through the resident image versus the full-image
    equivalent.  Optional like the others: simulated cells and old
    baseline files carry no ``pool`` field, and the regression gate
    never compares it.
    """

    workload: str
    algo: str
    wall_s: float
    work: int
    depth: int
    space: int
    phases: dict | None = None
    t_p: float | None = None
    pool: dict | None = None


@dataclass
class BenchReport:
    """One benchmark run — what a ``BENCH_<label>.json`` file holds."""

    label: str
    scale: float
    entries: list[PerfEntry] = field(default_factory=list)
    format: int = 1

    def entry(self, workload: str, algo: str) -> PerfEntry | None:
        for e in self.entries:
            if e.workload == workload and e.algo == algo:
                return e
        return None

    def to_json_dict(self) -> dict:
        entries = []
        for e in self.entries:
            d = asdict(e)
            for opt in ("phases", "t_p", "pool"):
                if d[opt] is None:
                    # Unset optional fields keep the original on-disk schema.
                    del d[opt]
            entries.append(d)
        return {
            "format": self.format,
            "label": self.label,
            "scale": self.scale,
            "entries": entries,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "BenchReport":
        if data.get("format") != 1:
            raise ValueError("unsupported bench file format")
        return cls(
            label=data["label"],
            scale=data["scale"],
            entries=[PerfEntry(**e) for e in data["entries"]],
        )


def _edges_for(family: str, scale: float) -> list[tuple[int, int]]:
    if family == "powerlaw":
        n = max(32, int(_BASE_POWERLAW_N * scale))
        return barabasi_albert(n, 4, seed=_STREAM_SEED)
    if family == "grid":
        side = max(5, int(_BASE_GRID_SIDE * math.sqrt(scale)))
        return grid_2d(side, side)
    raise ValueError(f"unknown stream family {family!r}")


#: hotspot rows per profiled cell (``repro bench --profile``).
PROFILE_TOP_N = 25


def _top_hotspots(prof: cProfile.Profile, top_n: int = PROFILE_TOP_N) -> list[dict]:
    """Top-``top_n`` functions by cumulative time, as JSON-ready rows."""
    stats = pstats.Stats(prof)
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],
        reverse=True,
    )[:top_n]
    return [
        {
            "function": f"{fn[0]}:{fn[1]}({fn[2]})",
            "ncalls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        }
        for fn, (_primcalls, ncalls, tottime, cumtime, _callers) in rows
    ]


def _run_workload(
    workload: str,
    algo: str,
    scale: float,
    trace: bool = False,
    shards: int = 4,
    backend: str = "simulated",
    workers: int = 2,
    profile: bool = False,
) -> tuple[float, int, int, int, dict | None, list[dict] | None, dict | None]:
    """Apply one workload end to end.

    Returns ``(wall_s, work, depth, space, phases, hotspots, pool)``;
    ``phases`` is the span-tree phase attribution when ``trace`` is on,
    ``hotspots`` the cProfile top-:data:`PROFILE_TOP_N` cumulative table
    when ``profile`` is on, ``pool`` the backend's dispatch/bytes-copied
    accounting when the tracker exposes ``pool_stats`` (else ``None``
    each).  Tracing and profiling both
    add bookkeeping inside the timed region, so their wall numbers
    should only be compared against baselines recorded the same way.
    ``shards`` parameterizes sharded keys; ``backend``/``workers``
    select the execution backend of the PLDS-family engines (see
    :func:`repro.registry.make_adapter`).
    """
    family, protocol = workload.rsplit("-", 1)
    edges = _edges_for(family, scale)
    n_hint = max((max(e) for e in edges), default=1) + 1
    batch = max(1, len(edges) // 5)
    if protocol == "ins":
        batches = insertion_batches(edges, batch, seed=_STREAM_SEED)
        initial: list[tuple[int, int]] = []
    elif protocol == "del":
        batches = deletion_batches(edges, batch, seed=_STREAM_SEED)
        initial = list(edges)
    elif protocol == "mix":
        initial, mix = mixed_batch(edges, max(2, len(edges) // 2), seed=_STREAM_SEED)
        batches = [mix]
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    adapter = make_adapter(
        algo, n_hint, shards=shards, backend=backend, workers=workers
    )
    # Same GC discipline as ``timeit``: collect leftovers from the
    # previous cell, then keep the cyclic collector out of the timed
    # region so one cell's garbage cannot distort another's wall time.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    phases: dict | None = None
    hotspots: list[dict] | None = None
    prof = cProfile.Profile() if profile else None
    try:
        if prof is not None:
            prof.enable()
        if trace:
            tracer = Tracer()
            with tracing(tracer):
                t0 = time.perf_counter()
                if initial:
                    adapter.initialize(initial)
                for b in batches:
                    adapter.update(b)
                wall = time.perf_counter() - t0
            phases = phase_totals(tracer.roots)
        else:
            t0 = time.perf_counter()
            if initial:
                adapter.initialize(initial)
            for b in batches:
                adapter.update(b)
            wall = time.perf_counter() - t0
    finally:
        if prof is not None:
            prof.disable()
        if gc_was_enabled:
            gc.enable()
        # Snapshot dispatch accounting before close() tears the images
        # down, then release the worker processes.
        stats_fn = getattr(adapter.tracker, "pool_stats", None)
        pool_info = stats_fn() if stats_fn is not None else None
        closer = getattr(adapter.tracker, "close", None)
        if closer is not None:
            closer()
    if prof is not None:
        hotspots = _top_hotspots(prof)
    cost = adapter.cost
    return (
        wall,
        cost.work,
        cost.depth,
        adapter.space_bytes(),
        phases,
        hotspots,
        pool_info,
    )


def run_suite(
    scale: float = 1.0,
    algos: Sequence[str] = DEFAULT_ALGOS,
    workloads: Sequence[str] = WORKLOADS,
    repeats: int = 1,
    progress: Callable[[str], None] | None = None,
    trace: bool = False,
    shards: int = 4,
    backend: str = "simulated",
    workers: int = 2,
    profile_sink: dict[str, list[dict]] | None = None,
) -> list[PerfEntry]:
    """Run every (workload, algo) pair; wall time is the best of ``repeats``.

    "Best of" (rather than mean) is the standard noise-rejection choice
    for regression gating: the minimum is the least-interfered-with run.
    Repeats are *interleaved* across a workload's algorithms (rep 1 of
    every algo, then rep 2, ...) rather than run back-to-back per cell:
    under drifting background load, back-to-back repeats keep one
    algorithm's whole sample inside one load window and best-of-N
    comparisons between algorithms become a lottery over cell ordering;
    interleaving spans every algorithm's samples over the same windows,
    so the floors stay comparable.  Work/depth/space are identical
    across repeats (the substrate is deterministic), so they are taken
    from the last run.  With ``trace``
    on, each entry additionally carries its per-phase attribution table.
    ``shards`` parameterizes sharded algorithm keys only;
    ``backend``/``workers`` select the PLDS-family execution backend.
    Passing a dict as ``profile_sink`` turns on cProfile per cell and
    fills the dict with ``"<workload>/<algo>"`` → top cumulative
    hotspots (profiling distorts wall time — don't gate profiled runs
    against unprofiled baselines).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for algo in algos:
        algorithm_spec(algo)  # fail fast, naming the valid registry keys
    sched = BrentScheduler()
    entries: list[PerfEntry] = []
    for workload in workloads:
        best: dict[str, float] = {a: math.inf for a in algos}
        cells: dict[str, tuple] = {}
        for _ in range(repeats):
            for algo in algos:
                wall, work, depth, space, phases, hotspots, pool_info = (
                    _run_workload(
                        workload,
                        algo,
                        scale,
                        trace=trace,
                        shards=shards,
                        backend=backend,
                        workers=workers,
                        profile=profile_sink is not None,
                    )
                )
                best[algo] = min(best[algo], wall)
                cells[algo] = (work, depth, space, phases, hotspots, pool_info)
        for algo in algos:
            work, depth, space, phases, hotspots, pool_info = cells[algo]
            if profile_sink is not None and hotspots is not None:
                profile_sink[f"{workload}/{algo}"] = hotspots
            p = T_P_THREADS if algorithm_spec(algo).parallel else 1
            t_p = sched.time(Cost(work=work, depth=depth), p)
            entries.append(
                PerfEntry(
                    workload=workload,
                    algo=algo,
                    wall_s=round(best[algo], 6),
                    work=work,
                    depth=depth,
                    space=space,
                    phases=phases,
                    t_p=round(t_p, 3),
                    pool=pool_info,
                )
            )
            if progress is not None:
                progress(
                    f"{workload:13s} {algo:8s} wall={best[algo]:8.3f}s "
                    f"work={work:>12d} depth={depth:>8d}"
                )
    return entries


def write_bench(path: str, report: BenchReport) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_json_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> BenchReport:
    with open(path, encoding="utf-8") as fh:
        return BenchReport.from_json_dict(json.load(fh))


#: Absolute wall-clock slack for the regression gate: a wall "regression"
#: must exceed the baseline by this many seconds *in addition to* the
#: relative tolerance, so sub-millisecond cells at tiny ``--scale`` do
#: not fail the gate on timer noise.
WALL_SLACK_S = 0.01


@dataclass(frozen=True)
class Comparison:
    """Current-vs-baseline outcome for one (workload, algo, metric)."""

    workload: str
    algo: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline <= 0:
            return math.inf if self.current > 0 else 1.0
        return self.current / self.baseline


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_bench`."""

    regressions: list[Comparison] = field(default_factory=list)
    improvements: list[Comparison] = field(default_factory=list)
    missing: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_bench(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = 0.25,
) -> ComparisonResult:
    """Compare ``current`` against ``baseline``.

    A metric *regresses* when ``current > baseline * (1 + tolerance)``;
    it *improves* when ``current < baseline / (1 + tolerance)``.  The
    tolerance guards wall-clock noise; it applies to work/depth/space
    too, though those are deterministic and normally move only when an
    algorithmic change is intentional.  Entries present in the baseline
    but absent from the current run are reported in ``missing`` (a
    silently dropped workload must not read as a pass).

    Wall time additionally gets an absolute slack of ``WALL_SLACK_S``:
    below a few milliseconds the relative tolerance is pure timer noise
    (a 0.4 ms cell "regressing" by 40% is meaningless), so a wall
    regression must also exceed the slack in absolute terms.  The
    deterministic metrics get no slack — any drift there is real.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    result = ComparisonResult()
    for base in baseline.entries:
        cur = current.entry(base.workload, base.algo)
        if cur is None:
            result.missing.append((base.workload, base.algo))
            continue
        for metric in ("wall_s", "work", "depth", "space"):
            b = float(getattr(base, metric))
            c = float(getattr(cur, metric))
            cmp = Comparison(base.workload, base.algo, metric, b, c)
            if c > b * (1.0 + tolerance):
                if metric != "wall_s" or c - b > WALL_SLACK_S:
                    result.regressions.append(cmp)
            elif c < b / (1.0 + tolerance):
                result.improvements.append(cmp)
    return result
