"""Error and resource metrics (paper Section 6.2 / 6.8).

The paper reports per-vertex core-estimate error ratios

    error(v) = max(k̂(v) / k(v),  k(v) / k̂(v)),

skipping vertices whose exact coreness is 0 (the algorithms guarantee an
estimate of 0 there), aggregated as the average and maximum over vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["ErrorStats", "error_stats", "error_percentiles"]


@dataclass(frozen=True)
class ErrorStats:
    """Average / maximum per-vertex core estimate error ratio."""

    average: float
    maximum: float
    vertices_measured: int

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"avg={self.average:.3f} max={self.maximum:.3f} "
            f"(n={self.vertices_measured})"
        )


def error_stats(
    estimates: Mapping[int, float],
    exact: Mapping[int, int],
) -> ErrorStats:
    """Per-vertex error ratios of ``estimates`` against ``exact`` cores.

    Vertices with exact coreness 0 are skipped (paper Section 6.2); a
    missing or zero estimate for a non-zero core counts as an infinite
    ratio, surfacing bugs rather than hiding them.
    """
    total = 0.0
    worst = 1.0
    count = 0
    for v, k in exact.items():
        if k == 0:
            continue
        est = float(estimates.get(v, 0.0))
        if est <= 0.0:
            ratio = float("inf")
        else:
            ratio = max(est / k, k / est)
        total += ratio
        worst = max(worst, ratio)
        count += 1
    if count == 0:
        return ErrorStats(average=1.0, maximum=1.0, vertices_measured=0)
    return ErrorStats(average=total / count, maximum=worst, vertices_measured=count)


def error_percentiles(
    estimates: Mapping[int, float],
    exact: Mapping[int, int],
    percentiles: tuple[float, ...] = (50.0, 90.0, 99.0, 100.0),
) -> dict[float, float]:
    """Percentiles of the per-vertex error-ratio distribution.

    Same skipping convention as :func:`error_stats`.  Gives a finer
    picture than avg/max when the ratio distribution is heavy-tailed
    (common on the road-network analogs, whose cores are tiny).
    """
    ratios: list[float] = []
    for v, k in exact.items():
        if k == 0:
            continue
        est = float(estimates.get(v, 0.0))
        ratios.append(max(est / k, k / est) if est > 0 else float("inf"))
    if not ratios:
        return {p: 1.0 for p in percentiles}
    ratios.sort()
    out: dict[float, float] = {}
    for p in percentiles:
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range")
        idx = min(len(ratios) - 1, int(round(p / 100.0 * (len(ratios) - 1))))
        out[p] = ratios[idx]
    return out
