"""repro - Parallel batch-dynamic k-core decomposition and friends.

A from-scratch Python reproduction of *"Parallel Batch-Dynamic Algorithms
for k-Core Decomposition and Related Graph Problems"* (Liu, Shi, Yu,
Dhulipala, Shun - SPAA 2022).

Subpackages
-----------
``repro.parallel``
    Work-depth model simulation: metered parallel primitives, hash tables,
    and a Brent-bound scheduler for simulated multicore running times.
``repro.graphs``
    Dynamic graphs, synthetic dataset analogs, Ins/Del/Mix update streams.
``repro.core``
    The paper's contribution: the PLDS (parallel level data structure)
    with ``(2+eps)``-approximate coreness and an O(alpha) out-degree
    orientation; the sequential LDS baseline.
``repro.static_kcore``
    Static exact peeling and the Algorithm-6 ``(2+eps)`` approximation.
``repro.baselines``
    Behavioral reimplementations of the Sun, Hua, and Zhang baselines.
``repro.framework``
    The Section-8 framework: batch-dynamic maximal matching, k-clique
    counting, and vertex colorings on top of the orientation.
``repro.registry``
    The algorithm/application registry: every dispatchable key with its
    adapter factory and capability metadata.
``repro.service``
    The batch-serving layer: :class:`~repro.service.CoreService`
    sessions applying update batches and answering coreness queries.
``repro.bench``
    Experiment harness reproducing the paper's evaluation protocols.

Quickstart
----------
>>> from repro import PLDS, Batch
>>> plds = PLDS(n_hint=1000)
>>> _ = plds.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
>>> plds.coreness_estimate(0)
1.0
"""

from .core.lds import LDS
from .core.plds import PLDS, UpdateResult
from .faults import FaultPlan, FaultPoint, InjectedFault
from .graphs.dynamic_graph import DynamicGraph
from .graphs.streams import Batch, EdgeUpdate, UpdateJournal
from .parallel.engine import Cost, WorkDepthTracker
from .registry import algorithm_keys, make_adapter
from .service import (
    AuditPolicy,
    BatchTelemetry,
    CoreService,
    RetryPolicy,
    ServiceSnapshot,
)
from .static_kcore.approx import approx_coreness_static
from .static_kcore.exact import exact_coreness

__version__ = "1.0.0"

__all__ = [
    "PLDS",
    "LDS",
    "UpdateResult",
    "DynamicGraph",
    "Batch",
    "EdgeUpdate",
    "Cost",
    "WorkDepthTracker",
    "CoreService",
    "BatchTelemetry",
    "ServiceSnapshot",
    "RetryPolicy",
    "AuditPolicy",
    "UpdateJournal",
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "algorithm_keys",
    "make_adapter",
    "approx_coreness_static",
    "exact_coreness",
    "__version__",
]
