"""Parallel bucketing structure (paper Section 7, citing [27]).

Maps vertices to integer buckets and supports extracting the lowest
non-empty bucket plus batched bucket updates — the engine behind both the
exact peeling algorithm of Dhulipala et al. [27] and the paper's
Algorithm 6.  Batch updates are metered as a semisort + hash updates:
O(batch) expected work, O(log n) depth w.h.p.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil

__all__ = ["ParallelBucketing"]


class ParallelBucketing:
    """Vertex -> bucket mapping with lowest-bucket extraction.

    Buckets are non-negative integers.  A lazy min-heap of bucket ids keeps
    ``pop_lowest`` cheap even when vertices move between buckets.
    """

    def __init__(
        self,
        tracker: WorkDepthTracker,
        assignments: Iterable[tuple[int, int]] = (),
    ) -> None:
        self._tracker = tracker
        self._bucket_of: dict[int, int] = {}
        self._buckets: dict[int, set[int]] = {}
        self._heap: list[int] = []
        self.update_batch(assignments)

    def __len__(self) -> int:
        return len(self._bucket_of)

    def bucket_of(self, v: int) -> int | None:
        return self._bucket_of.get(v)

    def update_batch(self, assignments: Iterable[tuple[int, int]]) -> None:
        """Move each ``(vertex, bucket)`` to its new bucket (batched)."""
        assignments = list(assignments)
        if not assignments:
            return
        self._tracker.add(
            work=len(assignments), depth=log2_ceil(len(assignments)) + 1
        )
        for v, b in assignments:
            if b < 0:
                raise ValueError("bucket ids must be non-negative")
            old = self._bucket_of.get(v)
            if old == b:
                continue
            if old is not None:
                self._buckets[old].discard(v)
            self._bucket_of[v] = b
            group = self._buckets.get(b)
            if group is None:
                self._buckets[b] = {v}
                heapq.heappush(self._heap, b)
            else:
                group.add(v)

    def remove_batch(self, vertices: Iterable[int]) -> None:
        vertices = list(vertices)
        if not vertices:
            return
        self._tracker.add(
            work=len(vertices), depth=log2_ceil(len(vertices)) + 1
        )
        for v in vertices:
            b = self._bucket_of.pop(v, None)
            if b is not None:
                self._buckets[b].discard(v)

    def pop_lowest(self) -> tuple[list[int], int] | None:
        """Extract all vertices of the lowest non-empty bucket.

        Returns ``(vertex_ids, bucket_id)`` or ``None`` if empty.
        O(|bucket|) work, O(log n) depth.
        """
        while self._heap:
            b = self._heap[0]
            group = self._buckets.get(b)
            if not group:
                heapq.heappop(self._heap)
                self._buckets.pop(b, None)
                continue
            vertices = sorted(group)
            group.clear()
            for v in vertices:
                del self._bucket_of[v]
            self._tracker.add(
                work=max(1, len(vertices)), depth=log2_ceil(len(vertices)) + 1
            )
            return vertices, b
        return None
