"""Static ``(2+ε)``-approximate k-core decomposition (paper Algorithm 6).

The paper's *ApproxKCore* (Theorem 3.8): a bucketing-based peeling where
peeling thresholds are powers of ``(1+ε)``.  Linear expected work and —
unlike exact peeling, whose round count ρ can be Θ(n) — polylogarithmic
depth: at most ``log_{1+δ} n`` rounds are spent at each of the
``O(log n)`` thresholds before the threshold is forcibly advanced.

Estimates are powers of ``(1+ε)``: a vertex peeled from bucket ``b``
receives estimate ``(1+ε)^b`` (Example 7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil, parallel_semisort
from .bucketing import ParallelBucketing

__all__ = ["approx_coreness_static", "ApproxKCoreResult"]


@dataclass
class ApproxKCoreResult:
    """Output of :func:`approx_coreness_static`."""

    estimates: dict[int, float]
    #: number of bucket-extraction rounds (the depth driver).
    rounds: int


def approx_coreness_static(
    edges: Iterable[tuple[int, int]],
    eps: float = 0.5,
    delta: float = 0.5,
    tracker: WorkDepthTracker | None = None,
    vertices: Iterable[int] = (),
) -> ApproxKCoreResult:
    """Run Algorithm 6 and return per-vertex coreness estimates.

    Parameters
    ----------
    eps:
        Peeling thresholds are powers of ``(1+eps)``; larger values mean
        fewer thresholds (less work/depth) but coarser estimates.
    delta:
        At most ``log_{1+delta} n`` peeling rounds are allowed per
        threshold before ``t`` is forcibly incremented (Line 6), which is
        what guarantees polylog depth.
    vertices:
        Optional extra isolated vertices (estimate 0).
    """
    if eps <= 0 or delta <= 0:
        raise ValueError("eps and delta must be > 0")
    tracker = tracker if tracker is not None else WorkDepthTracker()
    log1e = math.log(1.0 + eps)

    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    for v in vertices:
        adj.setdefault(v, set())
    n = len(adj)
    if n == 0:
        return ApproxKCoreResult(estimates={}, rounds=0)

    def bucket_index(c: int) -> int:
        if c <= 1:
            return 0
        return math.ceil(math.log(c) / log1e)

    # Line 1-2: C[v] = deg(v); initial buckets.
    induced = {v: len(nbrs) for v, nbrs in adj.items()}
    tracker.add(work=n, depth=log2_ceil(n) + 1)
    buckets = ParallelBucketing(
        tracker, ((v, bucket_index(c)) for v, c in induced.items())
    )

    max_rounds_per_t = max(1, math.ceil(math.log(max(n, 2)) / math.log(1.0 + delta)))
    estimates: dict[int, float] = {}
    t = 0
    rounds_at_t = 0
    rounds = 0

    # Line 4-15: the peeling loop.
    while True:
        popped = buckets.pop_lowest()
        if popped is None:
            break
        peeled, bkt = popped
        rounds += 1
        # Line 6-7: threshold bookkeeping.
        if bkt == t:
            rounds_at_t += 1
            if rounds_at_t > max_rounds_per_t:
                t += 1
                rounds_at_t = 0
        elif bkt != t:
            t = bkt
            rounds_at_t = 0
        for v in peeled:
            estimates[v] = 0.0 if len(adj[v]) == 0 else (1.0 + eps) ** bkt

        # Line 8: R — per-neighbor peel counts, via semisort.
        pairs = []

        def collect(v: int) -> None:
            nbrs = adj[v]
            tracker.add(
                work=max(1, len(nbrs)), depth=log2_ceil(len(nbrs) or 1) + 1
            )
            for w in nbrs:
                if w not in estimates:
                    pairs.append((w, 1))

        tracker.flat_parfor(peeled, collect)
        grouped = parallel_semisort(tracker, pairs)

        # Lines 10-15: recompute estimates/buckets of affected neighbors.
        moves = []
        floor = math.ceil((1.0 + eps) ** max(t - 1, 0))

        def rebucket(item: tuple[int, list[int]]) -> None:
            w, ones = item
            if w in estimates:
                return
            induced_deg = induced[w] - len(ones)
            induced[w] = max(induced_deg, floor)
            newbkt = max(bucket_index(induced[w]), t)
            moves.append((w, newbkt))
            tracker.add(work=1, depth=1)

        tracker.flat_parfor(grouped.items(), rebucket)
        buckets.update_batch(moves)

    return ApproxKCoreResult(estimates=estimates, rounds=rounds)
