"""k-core subgraph extraction and the coreness hierarchy.

The paper's introduction motivates coreness as a community-strength
signal: "the coreness values induce a natural hierarchical clustering".
This module turns coreness values (exact or PLDS estimates) into the
objects applications actually consume:

- :func:`k_core_subgraph` — the exact k-core (Definition 2.1);
- :func:`approx_k_core_candidates` — a superset of the k-core selected
  from PLDS estimates, with the containment guarantee of Lemma 5.13;
- :func:`core_hierarchy` — the nested decomposition: for every occupied
  core value, the connected components of the ≥k induced subgraph
  (each component of the (k+1)-level nests inside one k-level component).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.plds import PLDS
from .exact import exact_coreness

__all__ = [
    "k_core_subgraph",
    "approx_k_core_candidates",
    "core_hierarchy",
    "CoreComponent",
]


def k_core_subgraph(
    edges: Iterable[tuple[int, int]], k: int
) -> tuple[set[int], list[tuple[int, int]]]:
    """The exact k-core: vertices with coreness >= k and induced edges."""
    edges = list(edges)
    core = exact_coreness(edges)
    vs = {v for v, c in core.items() if c >= k}
    kept = [(u, v) for u, v in edges if u in vs and v in vs]
    return vs, kept


def approx_k_core_candidates(plds: PLDS, k: int) -> set[int]:
    """Vertices whose PLDS estimate admits coreness >= k.

    Guarantee (from Lemma 5.13): every vertex of the true k-core is
    included, because a vertex with coreness >= k has estimate
    >= k / factor.  The selection may also include vertices with true
    coreness as low as ``k / factor²`` — it is a superset filter to be
    refined by exact peeling when needed.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    factor = plds.approximation_factor()
    threshold = k / factor
    return {
        v
        for v in plds.vertices()
        if plds.coreness_estimate(v) >= threshold - 1e-12
    }


class CoreComponent:
    """One connected component of the ≥k induced subgraph."""

    __slots__ = ("k", "vertices", "children")

    def __init__(self, k: int, vertices: frozenset[int]) -> None:
        self.k = k
        self.vertices = vertices
        #: components of the (next occupied core value)'s subgraph nested
        #: inside this one.
        self.children: list["CoreComponent"] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"CoreComponent(k={self.k}, n={len(self.vertices)})"


def _components(vs: set[int], adj: Mapping[int, set[int]]) -> list[frozenset[int]]:
    seen: set[int] = set()
    out: list[frozenset[int]] = []
    for start in sorted(vs):
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        seen.add(start)
        while stack:
            x = stack.pop()
            for w in adj.get(x, ()):
                if w in vs and w not in seen:
                    seen.add(w)
                    comp.add(w)
                    stack.append(w)
        out.append(frozenset(comp))
    return out


def core_hierarchy(
    edges: Iterable[tuple[int, int]],
    coreness: Mapping[int, int] | None = None,
) -> list[CoreComponent]:
    """The hierarchical clustering induced by the coreness values.

    Returns the roots (components of the 1-core, i.e. of the graph); each
    component's ``children`` are the components of the next occupied core
    value nested inside it, recursively.  ``coreness`` defaults to exact
    peeling of ``edges``; pass PLDS estimates (rounded) for the
    approximate hierarchy.
    """
    edges = list(edges)
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    if coreness is None:
        coreness = exact_coreness(edges)
    if not coreness:
        return []
    levels = sorted({int(c) for c in coreness.values() if c >= 1})
    if not levels:
        return []

    prev: list[CoreComponent] = []
    roots: list[CoreComponent] = []
    for k in levels:
        vs = {v for v, c in coreness.items() if c >= k}
        comps = [CoreComponent(k, cset) for cset in _components(vs, adj)]
        if not prev:
            roots = comps
        else:
            for comp in comps:
                # nest inside the unique parent containing it
                for parent in prev:
                    if comp.vertices <= parent.vertices:
                        parent.children.append(comp)
                        break
        prev = comps
    return roots
