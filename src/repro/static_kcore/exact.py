"""Static exact k-core decomposition.

Two implementations:

- :func:`exact_coreness`: the classic sequential bucket-queue peeling of
  Matula–Beck (O(n + m)); the ground truth every error measurement in the
  repository is computed against.
- :class:`ParallelExactKCore`: the peeling algorithm of Dhulipala et
  al. [27] (the paper's *ExactKCore* baseline): repeatedly peel *all*
  vertices of minimum residual degree in parallel rounds.  Work is
  O(n + m) expected, but depth is O(ρ log n) where ρ is the number of
  peeling rounds — potentially Θ(n), which is exactly the gap the paper's
  Algorithm 6 closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil
from .bucketing import ParallelBucketing

__all__ = ["exact_coreness", "ParallelExactKCore", "ExactKCoreResult"]


def _build_adj(edges: Iterable[tuple[int, int]]) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return adj


def exact_coreness(
    edges: Iterable[tuple[int, int]],
    vertices: Iterable[int] = (),
) -> dict[int, int]:
    """Exact coreness of every vertex by O(n + m) bucket-queue peeling.

    ``vertices`` may list extra isolated vertices (coreness 0).
    """
    adj = _build_adj(edges)
    for v in vertices:
        adj.setdefault(v, set())
    if not adj:
        return {}
    deg = {v: len(nbrs) for v, nbrs in adj.items()}
    maxdeg = max(deg.values())
    buckets: list[set[int]] = [set() for _ in range(maxdeg + 1)]
    for v, d in deg.items():
        buckets[d].add(v)
    core: dict[int, int] = {}
    cur = 0
    kmax = 0
    for _ in range(len(adj)):
        while not buckets[cur]:
            cur += 1
        v = buckets[cur].pop()
        kmax = max(kmax, cur)
        core[v] = kmax
        for w in adj[v]:
            if w in core:
                continue
            buckets[deg[w]].discard(w)
            deg[w] -= 1
            buckets[deg[w]].add(w)
            cur = min(cur, deg[w])
    return core


@dataclass
class ExactKCoreResult:
    """Output of :class:`ParallelExactKCore`."""

    coreness: dict[int, int]
    #: number of peeling rounds ρ (the depth bottleneck of [27]).
    rounds: int


class ParallelExactKCore:
    """Parallel-rounds exact peeling (the paper's ExactKCore baseline).

    Each round peels *every* vertex whose residual degree is at most the
    current core value ``k``; rounds at the same ``k`` repeat until no
    vertex qualifies, then ``k`` advances.  Metered: O(n + m) work,
    O(ρ log n) depth.
    """

    def __init__(self, tracker: WorkDepthTracker | None = None) -> None:
        self.tracker = tracker if tracker is not None else WorkDepthTracker()

    def run(self, edges: Iterable[tuple[int, int]]) -> ExactKCoreResult:
        tracker = self.tracker
        adj = _build_adj(edges)
        deg = {v: len(nbrs) for v, nbrs in adj.items()}
        tracker.add(work=max(1, len(adj)), depth=log2_ceil(len(adj) or 1) + 1)

        buckets = ParallelBucketing(tracker, ((v, d) for v, d in deg.items()))
        core: dict[int, int] = {}
        k = 0
        rounds = 0
        while True:
            popped = buckets.pop_lowest()
            if popped is None:
                break
            frontier, bkt = popped
            k = max(k, bkt)
            rounds += 1
            # Peel the whole frontier in one parallel round: aggregate the
            # per-neighbor peel counts with a semisort, then rebucket.
            decrements: dict[int, int] = {}

            def peel(v: int, k: int = k) -> None:
                core[v] = k
                nbrs = adj[v]
                tracker.add(
                    work=max(1, len(nbrs)), depth=log2_ceil(len(nbrs) or 1) + 1
                )
                for w in nbrs:
                    if w not in core:
                        decrements[w] = decrements.get(w, 0) + 1

            tracker.flat_parfor(frontier, peel)
            moves = []
            for w, r in decrements.items():
                if w in core:
                    continue
                deg[w] -= r
                moves.append((w, max(deg[w], k)))
            buckets.update_batch(moves)
        return ExactKCoreResult(coreness=core, rounds=rounds)


def max_coreness(core: Mapping[int, int]) -> int:
    """Largest core value (the degeneracy)."""
    return max(core.values(), default=0)
