"""Static k-core decomposition: exact peeling and Algorithm 6 approximation."""

from .approx import ApproxKCoreResult, approx_coreness_static
from .bucketing import ParallelBucketing
from .subgraphs import (
    CoreComponent,
    approx_k_core_candidates,
    core_hierarchy,
    k_core_subgraph,
)
from .exact import (
    ExactKCoreResult,
    ParallelExactKCore,
    exact_coreness,
    max_coreness,
)

__all__ = [
    "ApproxKCoreResult",
    "approx_coreness_static",
    "ParallelBucketing",
    "ExactKCoreResult",
    "ParallelExactKCore",
    "exact_coreness",
    "CoreComponent",
    "approx_k_core_candidates",
    "core_hierarchy",
    "k_core_subgraph",
    "max_coreness",
]
