"""Unified algorithm registry: one key → adapter factory + capabilities.

Every dynamic k-core algorithm in the repository registers here exactly
once, as an :class:`AlgorithmSpec` pairing an adapter factory with
capability metadata (exact vs approximate, parallel vs sequential,
deletion support, metering, snapshot support).  The experiment harness
(:mod:`repro.bench.harness`), the perf suite
(:mod:`repro.bench.perfsuite`), the CLI (:mod:`repro.cli`), and the
serving layer (:mod:`repro.service`) all resolve algorithms through this
module — there is no other key→factory table in the package.

The Section-8 framework applications (maximal matching, k-clique
counting, vertex coloring) register through the same mechanism as
:class:`ApplicationSpec` entries, so :class:`repro.service.CoreService`
can host them next to the plain k-core engines.

Extension: third-party algorithms call :func:`register_algorithm` (and
applications :func:`register_application`) at import time; every
consumer — ``repro kcore``/``compare``/``bench``, ``CoreService`` — then
accepts the new key with no further wiring.

Example
-------
>>> from repro.registry import algorithm_keys, make_adapter, algorithm_spec
>>> algorithm_keys(dynamic=True)
('plds', 'pldsopt', 'pldsflat', 'pldsflatopt', 'lds', 'sun', 'hua', 'zhang', 'plds-sharded')
>>> make_adapter("plds", n_hint=100).key
'plds'
>>> sorted(k for k in algorithm_keys() if algorithm_spec(k).async_reads)
['lds', 'plds', 'plds-sharded', 'pldsflat', 'pldsflatopt', 'pldsopt']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from .baselines.hua import HuaExactBatchDynamic
from .baselines.sun import SunApproxDynamic
from .baselines.zhang import ZhangExactDynamic
from .core.lds import LDS
from .core.plds import PLDS
from .core.plds_flat import PLDSFlat
from .graphs.streams import Batch
from .obs import tracing as _tracing
from .parallel.engine import Cost, WorkDepthTracker
from .shard import Coordinator

__all__ = [
    "AlgorithmSpec",
    "ApplicationSpec",
    "DynamicKCoreAdapter",
    "StaticRerunAdapter",
    "algorithm_keys",
    "algorithm_spec",
    "application_keys",
    "application_spec",
    "WorkloadSpec",
    "make_adapter",
    "make_application",
    "make_workload",
    "rebuild_adapter",
    "register_algorithm",
    "register_application",
    "register_workload",
    "workload_keys",
    "workload_spec",
]


# ----------------------------------------------------------------------
# Adapters
# ----------------------------------------------------------------------


class StaticRerunAdapter:
    """A 'dynamic' algorithm that reruns a static one after every batch.

    Mirrors the paper's Fig.-11 protocol for ExactKCore/ApproxKCore: the
    static algorithm is rerun from scratch on the full accumulated graph
    after each batch, so per-batch cost is the full static cost.
    """

    def __init__(self, kind: str, tracker: WorkDepthTracker) -> None:
        from .graphs.dynamic_graph import DynamicGraph

        self.kind = kind
        self.tracker = tracker
        self._graph = DynamicGraph()
        self._estimates: dict[int, float] = {}

    def initialize(self, edges: Sequence[tuple[int, int]]) -> None:
        for u, v in edges:
            self._graph.insert_edge(u, v)
        self._recompute()

    def update(self, batch: Batch) -> None:
        for u, v in batch.insertions:
            self._graph.insert_edge(u, v)
        for u, v in batch.deletions:
            self._graph.delete_edge(u, v)
        self._recompute()

    def _recompute(self) -> None:
        from .static_kcore.approx import approx_coreness_static
        from .static_kcore.exact import ParallelExactKCore

        edges = list(self._graph.edges())
        if self.kind == "exactkcore":
            result = ParallelExactKCore(self.tracker).run(edges)
            self._estimates = {v: float(k) for v, k in result.coreness.items()}
        else:
            result = approx_coreness_static(edges, tracker=self.tracker)
            self._estimates = dict(result.estimates)

    def coreness_estimates(self) -> dict[int, float]:
        return dict(self._estimates)

    def space_bytes(self) -> int:
        return 16 * self._graph.num_edges + 8 * self._graph.num_vertices


class DynamicKCoreAdapter:
    """Uniform facade over the dynamic k-core implementations."""

    def __init__(self, key: str, impl: Any, is_exact: bool) -> None:
        self.key = key
        self.impl = impl
        self.is_exact = is_exact

    # -- lifecycle -------------------------------------------------------

    def initialize(self, edges: Sequence[tuple[int, int]]) -> None:
        if isinstance(self.impl, (PLDS, LDS)):
            if edges:
                self.impl.update(Batch(insertions=list(edges)))
        else:
            self.impl.initialize(edges)

    def update(self, batch: Batch) -> None:
        tracer = _tracing.ACTIVE
        if (
            tracer is None
            or isinstance(self.impl, PLDS)
            or getattr(self.impl, "SELF_TRACING", False)
        ):
            # The PLDS family and self-tracing engines (the sharded
            # coordinator) trace their own (finer-grained) update spans.
            self.impl.update(batch)
            return
        with tracer.span(
            "engine.update",
            self.tracker,
            key=self.key,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
        ):
            self.impl.update(batch)

    # -- results ------------------------------------------------------------

    def estimates(self) -> dict[int, float]:
        if isinstance(
            self.impl, (PLDS, LDS, SunApproxDynamic, StaticRerunAdapter, Coordinator)
        ):
            return self.impl.coreness_estimates()
        return {v: float(k) for v, k in self.impl.corenesses().items()}

    @property
    def tracker(self) -> WorkDepthTracker:
        """The engine's tracker (every registered impl carries one)."""
        return self.impl.tracker

    @property
    def cost(self) -> Cost:
        return self.impl.tracker.cost

    def space_bytes(self) -> int:
        return self.impl.space_bytes()


# ----------------------------------------------------------------------
# Algorithm registry
# ----------------------------------------------------------------------

#: An adapter factory: ``(n_hint, params) -> adapter`` where ``params``
#: is the normalized keyword mapping built by :func:`make_adapter`.
AdapterFactory = Callable[[int, Mapping[str, Any]], DynamicKCoreAdapter]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: factory plus capability metadata.

    Attributes
    ----------
    key:
        Registry key (what ``--algorithm`` accepts).
    summary:
        One-line human description.
    exact:
        ``True`` for exact coreness maintenance, ``False`` for the
        ``(2+ε)``-approximate structures.
    parallel:
        ``True`` when the metered depth is a genuine parallel critical
        path; sequential algorithms read simulated time at ``p = 1``.
    dynamic:
        ``False`` for the static-rerun pseudo-algorithms (Fig. 11),
        which recompute from scratch every batch.
    supports_deletions:
        Whether the Del/Mix protocols are meaningful for this key.
    metered:
        Whether the implementation charges a
        :class:`~repro.parallel.engine.WorkDepthTracker` (all built-ins
        do; external engines may not).
    snapshot:
        Whether the engine supports exact structural snapshot/restore
        (``to_snapshot``/``from_snapshot``); others are restored by
        replaying the edge set.
    sharded:
        Whether the engine is a partitioned multi-shard structure (the
        scatter-gather :class:`~repro.shard.Coordinator`).  The shard
        count itself is a construction parameter (``make_adapter``'s
        ``shards``); inspect ``adapter.impl.num_shards`` at runtime.
    async_reads:
        Whether the engine exposes the copy-on-write epoch surface
        (:class:`~repro.core.query.QueryView` — ``publish_epoch`` /
        ``read_view`` / ``last_moved``), letting
        :class:`~repro.service.CoreService` publish incremental read
        epochs at commit.  Engines without it still serve wait-free
        reads through the service, via a full estimate sweep per
        published epoch.
    """

    key: str
    summary: str
    factory: AdapterFactory
    exact: bool
    parallel: bool
    dynamic: bool = True
    supports_deletions: bool = True
    metered: bool = True
    snapshot: bool = False
    sharded: bool = False
    async_reads: bool = False


_ALGORITHMS: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the registry; duplicate keys are rejected."""
    if spec.key in _ALGORITHMS:
        raise ValueError(f"algorithm key {spec.key!r} already registered")
    _ALGORITHMS[spec.key] = spec
    return spec


def algorithm_spec(key: str) -> AlgorithmSpec:
    """Look up one algorithm, or raise ``ValueError`` naming valid keys."""
    try:
        return _ALGORITHMS[key]
    except KeyError:
        raise ValueError(
            f"unknown algorithm key {key!r}; choose from {algorithm_keys()}"
        ) from None


def algorithm_keys(
    *,
    dynamic: bool | None = None,
    parallel: bool | None = None,
    exact: bool | None = None,
) -> tuple[str, ...]:
    """Registered keys in registration order, optionally filtered."""
    return tuple(
        spec.key
        for spec in _ALGORITHMS.values()
        if (dynamic is None or spec.dynamic == dynamic)
        and (parallel is None or spec.parallel == parallel)
        and (exact is None or spec.exact == exact)
    )


def make_adapter(
    key: str,
    n_hint: int,
    delta: float = 0.4,
    lam: float = 3.0,
    sun_eps: float = 2.0,
    sun_lam: float = 2.0,
    sun_alpha: float = 2.0,
    upper_coeff: float | None = None,
    group_shrink_opt: int = 50,
    shards: int = 4,
    partition: str = "hash",
    backend: str = "simulated",
    workers: int = 2,
) -> DynamicKCoreAdapter:
    """Build the adapter for one algorithm key with paper-default params.

    ``shards``/``partition`` only affect sharded keys (``plds-sharded``);
    the single-structure engines ignore them.  ``backend`` selects the
    execution backend of the PLDS-family engines: ``"simulated"`` (the
    metered sequential simulation) or ``"pool"`` (a
    :class:`~repro.parallel.pool.PoolBackend` fanning pool-capable scans
    out to ``workers`` processes over a resident shared-memory image).
    The flat engines dispatch their consider and jump-rise scans;
    ``plds-sharded`` additionally dispatches each kernel's post-exchange
    desire evaluation through per-shard child backends.
    """
    if backend not in ("simulated", "pool"):
        raise ValueError("backend must be 'simulated' or 'pool'")
    params: dict[str, Any] = {
        "delta": delta,
        "lam": lam,
        "sun_eps": sun_eps,
        "sun_lam": sun_lam,
        "sun_alpha": sun_alpha,
        "upper_coeff": upper_coeff,
        "group_shrink_opt": group_shrink_opt,
        "shards": shards,
        "partition": partition,
        "backend": backend,
        "workers": workers,
    }
    return algorithm_spec(key).factory(n_hint, params)


def rebuild_adapter(
    key: str,
    n_hint: int,
    edges: Sequence[tuple[int, int]],
    **kwargs: Any,
) -> DynamicKCoreAdapter:
    """Rebuild-from-mirror: a fresh engine initialized with ``edges``.

    The recovery seam of the serving layer's degradation ladder: when an
    engine is quarantined (failed audit, unrecoverable fault), the
    service rebuilds a replacement of any registered ``key`` directly
    from its graph mirror.  Works for every registry key — including
    ``"exactkcore"``, the exact static recompute used as last resort.
    """
    adapter = make_adapter(key, n_hint, **kwargs)
    adapter.initialize(list(edges))
    return adapter


# -- built-in algorithm entries (the one table) ------------------------


def _make_tracker(p: Mapping[str, Any]) -> WorkDepthTracker:
    if p.get("backend", "simulated") == "pool":
        from .parallel.pool import PoolBackend

        return PoolBackend(workers=int(p.get("workers", 2)))
    return WorkDepthTracker()


def _plds_factory(
    key: str, group_shrink_from: str | None, flat: bool = False
) -> AdapterFactory:
    def build(n_hint: int, p: Mapping[str, Any]) -> DynamicKCoreAdapter:
        shrink = 1 if group_shrink_from is None else int(p[group_shrink_from])
        cls = PLDSFlat if flat else PLDS
        return DynamicKCoreAdapter(
            key,
            cls(
                n_hint,
                delta=p["delta"],
                lam=p["lam"],
                group_shrink=shrink,
                upper_coeff=p["upper_coeff"],
                tracker=_make_tracker(p),
            ),
            False,
        )

    return build


def _lds_factory(n_hint: int, p: Mapping[str, Any]) -> DynamicKCoreAdapter:
    return DynamicKCoreAdapter(
        "lds",
        LDS(n_hint, delta=p["delta"], lam=p["lam"], upper_coeff=p["upper_coeff"]),
        False,
    )


def _sun_factory(n_hint: int, p: Mapping[str, Any]) -> DynamicKCoreAdapter:
    return DynamicKCoreAdapter(
        "sun",
        SunApproxDynamic(
            n_hint, eps=p["sun_eps"], lam=p["sun_lam"], alpha=p["sun_alpha"]
        ),
        False,
    )


def _sharded_factory(n_hint: int, p: Mapping[str, Any]) -> DynamicKCoreAdapter:
    return DynamicKCoreAdapter(
        "plds-sharded",
        Coordinator(
            n_hint,
            delta=p["delta"],
            lam=p["lam"],
            upper_coeff=p["upper_coeff"],
            shards=int(p["shards"]),
            partition=p["partition"],
            backend=p.get("backend", "simulated"),
            workers=int(p.get("workers", 2)),
        ),
        False,
    )


def _static_factory(kind: str) -> AdapterFactory:
    def build(n_hint: int, p: Mapping[str, Any]) -> DynamicKCoreAdapter:
        return DynamicKCoreAdapter(
            kind, StaticRerunAdapter(kind, WorkDepthTracker()), kind == "exactkcore"
        )

    return build


register_algorithm(AlgorithmSpec(
    key="plds",
    summary="PLDS, the paper's parallel level data structure (Section 5)",
    factory=_plds_factory("plds", None),
    exact=False, parallel=True, snapshot=True, async_reads=True,
))
register_algorithm(AlgorithmSpec(
    key="pldsopt",
    summary="PLDS with group_shrink=50, the practical variant (Section 6.1)",
    factory=_plds_factory("pldsopt", "group_shrink_opt"),
    exact=False, parallel=True, snapshot=True, async_reads=True,
))
register_algorithm(AlgorithmSpec(
    key="pldsflat",
    summary="flat array-backed PLDS, bit-identical to plds (GBBS layout)",
    factory=_plds_factory("pldsflat", None, flat=True),
    exact=False, parallel=True, snapshot=True, async_reads=True,
))
register_algorithm(AlgorithmSpec(
    key="pldsflatopt",
    summary="flat array-backed PLDS with group_shrink=50 (pldsopt twin)",
    factory=_plds_factory("pldsflatopt", "group_shrink_opt", flat=True),
    exact=False, parallel=True, snapshot=True, async_reads=True,
))
register_algorithm(AlgorithmSpec(
    key="lds",
    summary="sequential level data structure baseline (Section 5.2)",
    factory=_lds_factory,
    exact=False, parallel=False, snapshot=True, async_reads=True,
))
register_algorithm(AlgorithmSpec(
    key="sun",
    summary="Sun et al. sequential approximate dynamic baseline",
    factory=_sun_factory,
    exact=False, parallel=False,
))
register_algorithm(AlgorithmSpec(
    key="hua",
    summary="Hua et al. parallel exact batch-dynamic baseline",
    factory=lambda n, p: DynamicKCoreAdapter("hua", HuaExactBatchDynamic(), True),
    exact=True, parallel=True,
))
register_algorithm(AlgorithmSpec(
    key="zhang",
    summary="Zhang et al. sequential exact dynamic baseline",
    factory=lambda n, p: DynamicKCoreAdapter("zhang", ZhangExactDynamic(), True),
    exact=True, parallel=False,
))
register_algorithm(AlgorithmSpec(
    key="exactkcore",
    summary="static ParallelExactKCore rerun from scratch per batch (Fig. 11)",
    factory=_static_factory("exactkcore"),
    exact=True, parallel=True, dynamic=False,
))
register_algorithm(AlgorithmSpec(
    key="approxkcore",
    summary="static Algorithm-6 approximation rerun per batch (Fig. 11)",
    factory=_static_factory("approxkcore"),
    exact=False, parallel=True, dynamic=False,
))
register_algorithm(AlgorithmSpec(
    key="plds-sharded",
    summary="partitioned PLDS behind the scatter-gather shard coordinator",
    factory=_sharded_factory,
    exact=False, parallel=True, snapshot=True, sharded=True,
    async_reads=True,
))


# ----------------------------------------------------------------------
# Application registry (Section-8 framework)
# ----------------------------------------------------------------------

#: An application factory: ``(n_hint, **kwargs) -> (driver, app)``.
ApplicationFactory = Callable[..., tuple[Any, Any]]


@dataclass(frozen=True)
class ApplicationSpec:
    """One registered framework application (Algorithm 7 plug-in)."""

    key: str
    summary: str
    factory: ApplicationFactory


_APPLICATIONS: dict[str, ApplicationSpec] = {}


def register_application(spec: ApplicationSpec) -> ApplicationSpec:
    """Add ``spec`` to the application registry; duplicates rejected."""
    if spec.key in _APPLICATIONS:
        raise ValueError(f"application key {spec.key!r} already registered")
    _APPLICATIONS[spec.key] = spec
    return spec


def application_spec(key: str) -> ApplicationSpec:
    """Look up one application, or raise ``ValueError`` naming valid keys."""
    try:
        return _APPLICATIONS[key]
    except KeyError:
        raise ValueError(
            f"unknown application key {key!r}; choose from {application_keys()}"
        ) from None


def application_keys() -> tuple[str, ...]:
    """Registered application keys in registration order."""
    return tuple(_APPLICATIONS)


def make_application(key: str, n_hint: int, **kwargs: Any) -> tuple[Any, Any]:
    """Build ``(FrameworkDriver, app)`` for one registered application."""
    return application_spec(key).factory(n_hint, **kwargs)


# The factories import :mod:`repro.framework` lazily so that importing
# the registry (e.g. from the CLI) does not pay for the framework layer
# until an application is actually constructed.


def _app_factory(creator_name: str) -> ApplicationFactory:
    def build(n_hint: int, **kwargs: Any) -> tuple[Any, Any]:
        from . import framework

        creator = getattr(framework, creator_name)
        return creator(n_hint, **kwargs)

    return build


register_application(ApplicationSpec(
    key="matching",
    summary="batch-dynamic maximal matching (Theorem 3.4)",
    factory=_app_factory("create_matching_driver"),
))
register_application(ApplicationSpec(
    key="cliques",
    summary="batch-dynamic k-clique counting (Theorem 3.6)",
    factory=_app_factory("create_clique_driver"),
))
register_application(ApplicationSpec(
    key="clique-tables",
    summary="table-hierarchy k-clique counter (Algorithms 12-13)",
    factory=_app_factory("create_clique_tables_driver"),
))
register_application(ApplicationSpec(
    key="coloring-explicit",
    summary="explicit O(α log n) vertex coloring (Theorem 3.7)",
    factory=_app_factory("create_explicit_coloring_driver"),
))
register_application(ApplicationSpec(
    key="coloring-implicit",
    summary="implicit vertex coloring (Theorem 3.5 semantics)",
    factory=_app_factory("create_implicit_coloring_driver"),
))


# ----------------------------------------------------------------------
# Workloads (update-stream generators, by name)
# ----------------------------------------------------------------------

#: ``factory(size, rounds, *, seed, batch_size) -> (initial_edges, batches)``.
WorkloadFactory = Callable[..., tuple[list[tuple[int, int]], list[Batch]]]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered update-stream generator.

    ``adversarial`` marks the worst-case cascade generators from
    :mod:`repro.graphs.adversarial` (cycle/cascade/clique/star);
    ``churn`` is the benign temporal sliding-window workload.  Soak
    tenant specs and ``repro adversary`` both resolve generators here
    by key, so a config names its traffic shape declaratively instead
    of importing generator functions.
    """

    key: str
    summary: str
    factory: WorkloadFactory
    adversarial: bool = True


_WORKLOADS: dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add ``spec`` to the workload registry; duplicates rejected."""
    if spec.key in _WORKLOADS:
        raise ValueError(f"workload key {spec.key!r} already registered")
    _WORKLOADS[spec.key] = spec
    return spec


def workload_spec(key: str) -> WorkloadSpec:
    """Look up one workload, or raise ``ValueError`` naming valid keys."""
    try:
        return _WORKLOADS[key]
    except KeyError:
        raise ValueError(
            f"unknown workload key {key!r}; choose from {workload_keys()}"
        ) from None


def workload_keys(adversarial: bool | None = None) -> tuple[str, ...]:
    """Registered workload keys, optionally filtered by ``adversarial``.

    >>> workload_keys()
    ('cycle', 'cascade', 'clique', 'star', 'churn')
    >>> workload_keys(adversarial=False)
    ('churn',)
    """
    return tuple(
        key
        for key, spec in _WORKLOADS.items()
        if adversarial is None or spec.adversarial == adversarial
    )


def make_workload(
    key: str,
    size: int,
    rounds: int,
    *,
    seed: int = 0,
    batch_size: int | None = None,
) -> tuple[list[tuple[int, int]], list[Batch]]:
    """Build ``(initial_edges, batches)`` for one registered workload.

    ``size`` scales the structure (cycle length, chain length, clique
    size, star leaves, churn graph vertices — clamped to each shape's
    minimum); ``rounds`` is the toggle/pulse count for adversarial
    shapes and the approximate batch count for ``churn``.  ``seed`` and
    ``batch_size`` only affect workloads with a random or re-batchable
    stream (currently ``churn``); the adversarial shapes are fully
    deterministic by construction.
    """
    if size < 1:
        raise ValueError("workload size must be >= 1")
    if rounds < 1:
        raise ValueError("workload rounds must be >= 1")
    return workload_spec(key).factory(size, rounds, seed=seed, batch_size=batch_size)


def _adversarial_factory(fn_name: str, min_size: int) -> WorkloadFactory:
    def build(
        size: int,
        rounds: int,
        *,
        seed: int = 0,
        batch_size: int | None = None,
    ) -> tuple[list[tuple[int, int]], list[Batch]]:
        from .graphs import adversarial

        return getattr(adversarial, fn_name)(max(min_size, size), rounds)

    return build


def _churn_factory(
    size: int,
    rounds: int,
    *,
    seed: int = 0,
    batch_size: int | None = None,
) -> tuple[list[tuple[int, int]], list[Batch]]:
    from .graphs.generators import barabasi_albert
    from .graphs.streams import sliding_window_batches

    size = max(8, size)
    edges = barabasi_albert(size, 3, seed=seed)
    if batch_size is None:
        batch_size = max(1, len(edges) // max(2, rounds))
    window = max(batch_size, len(edges) // 2)
    return [], sliding_window_batches(edges, window, batch_size)


register_workload(WorkloadSpec(
    key="cycle",
    summary="n-cycle critical-edge toggle (max-cascade deletions)",
    factory=_adversarial_factory("cycle_toggle", 3),
))
register_workload(WorkloadSpec(
    key="cascade",
    summary="dependency-chain toggle (longest sequential cascade)",
    factory=_adversarial_factory("cascade_chain", 1),
))
register_workload(WorkloadSpec(
    key="clique",
    summary="k-clique build/teardown pulses (max level movement)",
    factory=_adversarial_factory("clique_pulse", 3),
))
register_workload(WorkloadSpec(
    key="star",
    summary="star-center degree pulses (hub stress)",
    factory=_adversarial_factory("star_pulse", 1),
))
register_workload(WorkloadSpec(
    key="churn",
    summary="temporal sliding-window churn over a power-law graph",
    factory=_churn_factory,
    adversarial=False,
))
