"""Sharded serving stack: partitioned PLDS + ghost replication.

- :class:`~repro.shard.partition.Partitioner` — hash / degree-balanced
  vertex ownership;
- :class:`~repro.shard.kernel.ShardKernel` — shard-local PLDS cascade
  kernel with ghost-level replicas;
- :class:`~repro.shard.engine.ShardedEngine` — edge routing, ghost
  directory, message-round cascades, coordinated rebuilds;
- :class:`~repro.shard.coordinator.Coordinator` — the registry-facing
  scatter-gather front (``plds-sharded``).

See ``docs/architecture.md`` (sharding section) for the design and
``docs/cost_model.md`` for the ghost-exchange depth accounting.
"""

from .coordinator import Coordinator
from .engine import ShardedEngine
from .kernel import ShardKernel
from .partition import Partitioner

__all__ = ["Coordinator", "Partitioner", "ShardKernel", "ShardedEngine"]
