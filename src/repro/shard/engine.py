"""Sharded PLDS engine: edge routing, ghost directory, cascade rounds.

The :class:`ShardedEngine` owns one :class:`~repro.shard.kernel.ShardKernel`
per shard plus the two pieces of cross-shard state:

- the **ghost directory** ``vertex -> {shards holding a ghost of it}``,
  which routes a vertex's move events to exactly the shards that mirror
  it (the owner is never in the set);
- the engine-level **rebuild** policy: the Section-5.9 trigger reads the
  *global* vertex count and re-sizes every kernel to the same global
  ``n_hint``, because the per-level threshold tables are a function of
  ``n_hint`` and must match the monolithic PLDS for bit-identical
  rise/desaturate decisions.

Cost accounting: the engine's tracker is the authoritative meter (the
one the registry adapter and the service read).  Kernels meter into
private per-shard trackers; the engine folds each phase in as

    ``work  = sum(shard deltas) [+ messages]``
    ``depth = max(shard deltas) [+ ghost-exchange depth]``

i.e. shards run in parallel (max over the per-shard critical paths)
and each message round pays ``max(apply depths) + ceil(log2 messages)
+ 1`` for the exchange barrier — the simulated ``T_p`` therefore
accounts for the max-over-shards critical path plus the ghost-exchange
rounds, as ``docs/cost_model.md`` specifies.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .. import faults as _faults
from ..core.query import QueryView
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil
from .kernel import MoveEvent, ShardKernel
from .partition import Partitioner

__all__ = ["ShardedEngine"]


class ShardedEngine(QueryView):
    """Partitioned PLDS: per-shard kernels + ghost directory + rounds."""

    def __init__(
        self,
        n_hint: int,
        partitioner: Partitioner,
        delta: float = 0.4,
        lam: float = 3.0,
        group_shrink: int = 1,
        upper_coeff: float | None = None,
        tracker: WorkDepthTracker | None = None,
        insertion_strategy: str = "levelwise",
        structure: str = "randomized",
    ) -> None:
        self.n_hint = max(2, n_hint)
        self.partitioner = partitioner
        self.delta = delta
        self.lam = lam
        self.group_shrink = group_shrink
        self.upper_coeff = upper_coeff
        self.insertion_strategy = insertion_strategy
        self.structure = structure
        self.tracker = tracker if tracker is not None else WorkDepthTracker()
        self.kernels: list[ShardKernel] = [
            self._make_kernel(s, self.n_hint, None)
            for s in range(partitioner.num_shards)
        ]
        #: ghost directory: vertex -> shards holding a ghost of it.
        self._ghost_sites: dict[int, set[int]] = {}

    def _make_kernel(
        self, s: int, n_hint: int, kernel_tracker: WorkDepthTracker | None
    ) -> ShardKernel:
        if kernel_tracker is None:
            # A pool-capable engine tracker hands each kernel a child
            # backend: independent metering (the fold contract below),
            # shared executor/resident images, counters bubbling up.
            subtracker = getattr(self.tracker, "subtracker", None)
            if subtracker is not None:
                kernel_tracker = subtracker()
        owner = self.partitioner.owner
        return ShardKernel(
            shard_id=s,
            owns=lambda v, s=s: owner(v) == s,
            n_hint=n_hint,
            delta=self.delta,
            lam=self.lam,
            group_shrink=self.group_shrink,
            upper_coeff=self.upper_coeff,
            tracker=kernel_tracker,
            insertion_strategy=self.insertion_strategy,
            structure=self.structure,
        )

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    # ------------------------------------------------------------------
    # Routing and the ghost directory
    # ------------------------------------------------------------------

    def route(
        self, edges: Iterable[tuple[int, int]]
    ) -> list[list[tuple[int, int, bool]]]:
        """Route canonical edges to owner shards.

        Each edge goes to the owners of *both* endpoints (once when they
        coincide); ``counted`` is ``True`` only for the min-endpoint
        owner, preserving the global edge count across shards.
        """
        owner = self.partitioner.owner
        items: list[list[tuple[int, int, bool]]] = [
            [] for _ in range(self.num_shards)
        ]
        for u, v in edges:
            su = owner(u)
            sv = owner(v)
            items[su].append((u, v, True))
            if sv != su:
                items[sv].append((u, v, False))
        return items

    def ghost_levels(
        self, edges: Iterable[tuple[int, int]]
    ) -> dict[int, int]:
        """Current owner-side level of every endpoint in ``edges`` (for
        materializing up-to-date ghosts during an insertion scatter)."""
        owner = self.partitioner.owner
        kernels = self.kernels
        levels: dict[int, int] = {}
        for u, v in edges:
            if u not in levels:
                levels[u] = kernels[owner(u)].level(u)
            if v not in levels:
                levels[v] = kernels[owner(v)].level(v)
        return levels

    def register_ghosts(self, shard: int, ids: Iterable[int]) -> None:
        for v in ids:
            sites = self._ghost_sites.get(v)
            if sites is None:
                self._ghost_sites[v] = {shard}
            else:
                sites.add(shard)

    def drop_ghosts(self, shard: int, ids: Iterable[int]) -> None:
        for v in ids:
            sites = self._ghost_sites.get(v)
            if sites is not None:
                sites.discard(shard)
                if not sites:
                    del self._ghost_sites[v]

    # ------------------------------------------------------------------
    # Cascade rounds (scatter-gather quiescence loop)
    # ------------------------------------------------------------------

    def cascade_rounds(self, phase: str) -> tuple[int, int]:
        """Run ``phase`` (``"rise"`` or ``"desaturate"``) rounds until
        global quiescence; returns ``(rounds, total messages)``.

        Each round: every shard processes its bucket at the *global*
        minimum dirty/pending level, the resulting move events are
        routed through the ghost directory (sorted for deterministic
        replay order, hence deterministic metering), and each target
        shard applies them to its mirrors.  The engine tracker is
        charged once per round with the parallel composition described
        in the module docstring; the per-round ``shard.round`` span
        carries ``messages`` so the reconciliation

            ``round.work == sum(child span work) + messages``

        holds with integer equality.
        """
        if phase == "rise":
            site = "plds.rise"
            min_of = ShardKernel.min_dirty_level
            step = ShardKernel.rise_level
        elif phase == "desaturate":
            site = "plds.desaturate"
            min_of = ShardKernel.min_pending_level
            step = ShardKernel.desaturate_level
            self._consider_affected()
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown cascade phase {phase!r}")
        tracker = self.tracker
        kernels = self.kernels
        rounds = 0
        total_messages = 0
        while True:
            live = [m for m in (min_of(k) for k in kernels) if m is not None]
            if not live:
                break
            level = min(live)
            rounds += 1
            fault_plan = _faults.ACTIVE
            if fault_plan is not None:
                fault_plan.hit(site)
            tracer = _tracing.ACTIVE
            mreg = _metrics.ACTIVE
            round_span = (
                tracer.begin(
                    "shard.round", tracker, phase=phase, level=level
                )
                if tracer is not None
                else None
            )
            local_work = 0
            local_depth = 0
            moves_by_owner: list[tuple[int, list[MoveEvent]]] = []
            for s, k in enumerate(kernels):
                since = k.tracker.snapshot()
                span = (
                    tracer.begin(
                        f"shard.{phase}", k.tracker, shard=s, level=level
                    )
                    if tracer is not None
                    else None
                )
                moves = step(k, level)
                if span is not None:
                    tracer.end(span)
                delta = k.tracker.delta(since)
                local_work += delta.work
                if delta.depth > local_depth:
                    local_depth = delta.depth
                if moves:
                    moves_by_owner.append((s, moves))
                    if mreg is not None:
                        mreg.inc(
                            "shard.moves",
                            len(moves),
                            shard=str(s),
                            phase=phase,
                        )
            # Route move events through the ghost directory; sort each
            # target's batch so replay (and its metering) is
            # deterministic despite set-ordered mover iteration.
            events: list[list[MoveEvent]] = [[] for _ in kernels]
            messages = 0
            ghost_sites = self._ghost_sites
            for _s, moves in moves_by_owner:
                for ev in moves:
                    sites = ghost_sites.get(ev[0])
                    if not sites:
                        continue
                    for t in sites:
                        events[t].append(ev)
                        messages += 1
            apply_work = 0
            apply_depth = 0
            for t, evs in enumerate(events):
                if not evs:
                    continue
                evs.sort()
                k = kernels[t]
                since = k.tracker.snapshot()
                span = (
                    tracer.begin(
                        "shard.ghost_apply",
                        k.tracker,
                        shard=t,
                        events=len(evs),
                    )
                    if tracer is not None
                    else None
                )
                k.apply_moves(evs)
                if span is not None:
                    tracer.end(span)
                delta = k.tracker.delta(since)
                apply_work += delta.work
                if delta.depth > apply_depth:
                    apply_depth = delta.depth
            exchange_depth = (
                apply_depth + log2_ceil(messages) + 1 if messages else 0
            )
            tracker.add(
                work=local_work + apply_work + messages,
                depth=local_depth + exchange_depth,
            )
            total_messages += messages
            if round_span is not None:
                round_span.attrs["messages"] = messages
                tracer.end(round_span)
            if mreg is not None:
                mreg.inc("shard.rounds", phase=phase)
                if messages:
                    mreg.inc("shard.messages", messages, phase=phase)
                mreg.observe("shard.round_messages", messages, phase=phase)
        return rounds, total_messages

    def _consider_affected(self) -> None:
        """Fold every shard's post-deletion desire scans into the engine
        meter (parallel across shards: sum work, max depth)."""
        total = 0
        deepest = 0
        for k in self.kernels:
            since = k.tracker.snapshot()
            k.consider_affected()
            delta = k.tracker.delta(since)
            total += delta.work
            if delta.depth > deepest:
                deepest = delta.depth
        if total:
            self.tracker.add(work=total, depth=deepest)

    # ------------------------------------------------------------------
    # Engine-level rebuild (Section 5.9, globally coordinated)
    # ------------------------------------------------------------------

    def needs_rebuild(self) -> bool:
        return sum(len(k._vertices) for k in self.kernels) > self.n_hint

    def rebuild(self) -> None:
        """Re-size every kernel to the global ``2 * n`` hint and replay.

        Charges the same gather cost as the monolithic rebuild, then
        replays the edge set through the normal scatter + rise-round
        machinery from all-zero levels — which converges to the same
        least fixpoint (and hence the same estimates) as the monolithic
        replay, whatever the shard count.
        """
        edges = sorted(self.edges())
        verts = sorted(v for k in self.kernels for v in k._vertices)
        new_hint = max(2, 2 * len(verts))
        self.tracker.add(
            work=max(1, len(edges) + len(verts)),
            depth=log2_ceil(max(2, len(edges))) + 1,
        )
        self.n_hint = new_hint
        old_kernels = self.kernels
        self.kernels = [
            self._make_kernel(s, new_hint, k.tracker)
            for s, k in enumerate(old_kernels)
        ]
        for k in old_kernels:
            # Replaced kernels must not leave resident shared-memory
            # segments behind (their slot numbering is dead anyway).
            image = getattr(k, "_pool_image", None)
            if image is not None:
                image.close()
        self._ghost_sites = {}
        owner = self.partitioner.owner
        for v in verts:  # keep isolated vertices alive at level 0
            self.kernels[owner(v)]._record(v)
        if edges:
            self.replay_insert(edges)
        for k in self.kernels:  # replay moves are not batch moves
            k._moved.clear()
        # Kernels were recreated: every level was re-derived and the
        # per-shard epoch serials restarted, so the next publication
        # must be from scratch.
        self._levels_reshaped = True

    def replay_insert(self, edges: list[tuple[int, int]]) -> None:
        """Plain (fault-transparent) insertion scatter + rise rounds —
        the rebuild path; live batches go through the coordinator's
        fault-isolated scatter instead."""
        items = self.route(edges)
        levels = self.ghost_levels(edges)
        total = 0
        deepest = 0
        for s, k in enumerate(self.kernels):
            if not items[s]:
                continue
            since = k.tracker.snapshot()
            new_ghosts = k.apply_insertions(items[s], levels)
            delta = k.tracker.delta(since)
            total += delta.work
            if delta.depth > deepest:
                deepest = delta.depth
            self.register_ghosts(s, new_ghosts)
        if total:
            self.tracker.add(work=total, depth=deepest)
        self.cascade_rounds("rise")

    # ------------------------------------------------------------------
    # Gathered queries
    # ------------------------------------------------------------------

    def level(self, v: int) -> int:
        return self.kernels[self.partitioner.owner(v)].level(v)

    # The shared QueryView surface (coreness_estimate / estimates /
    # core_members / densest_estimate / core_subgraph) gathers over the
    # kernels through these two hooks; shard-local vertex sets are
    # disjoint, so chaining kernels merges without conflicts and in the
    # same order the old per-engine dict merge produced.

    def _level_items(self):
        for k in self.kernels:
            yield from k._level_items()

    def _level_deg_of(self, v: int) -> tuple[int, int] | None:
        return self.kernels[self.partitioner.owner(v)]._level_deg_of(v)

    @property
    def levels_per_group(self) -> int:
        # Every kernel is built from the same global parameters (the
        # engine-coordinated rebuild re-sizes all shards together).
        return self.kernels[0].levels_per_group

    @property
    def _group_pow(self) -> list[float]:
        return self.kernels[0]._group_pow

    def vertices(self) -> Iterator[int]:
        for k in self.kernels:
            yield from k._vertices

    def has_edge(self, u: int, v: int) -> bool:
        return self.kernels[self.partitioner.owner(u)].has_edge(u, v)

    @property
    def num_edges(self) -> int:
        return sum(k._m for k in self.kernels)

    @property
    def num_vertices(self) -> int:
        return sum(len(k._vertices) for k in self.kernels)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Every edge exactly once (each kernel yields its counted set)."""
        for k in self.kernels:
            yield from k.edges()

    def take_moved(self) -> set[int]:
        moved: set[int] = set()
        for k in self.kernels:
            moved |= k.take_moved()
        return moved

    def space_bytes(self) -> int:
        total = sum(k.space_bytes() for k in self.kernels)
        for sites in self._ghost_sites.values():
            total += 8 + 8 * len(sites)  # directory entry
        return total

    # ------------------------------------------------------------------
    # Cross-shard consistency checks
    # ------------------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Per-kernel checks (shard-prefixed) + mirror/directory audit."""
        problems: list[str] = []
        kernels = self.kernels
        owner = self.partitioner.owner
        for s, k in enumerate(kernels):
            problems.extend(f"shard {s}: {p}" for p in k.check_invariants())
        for v, sites in sorted(self._ghost_sites.items()):
            ov = owner(v)
            orec = kernels[ov]._vertices.get(v)
            if orec is None:
                problems.append(f"ghost directory lists unknown vertex {v}")
                continue
            for t in sorted(sites):
                if t == ov:
                    problems.append(
                        f"directory says {v} is a ghost on its owner shard {t}"
                    )
                    continue
                g = kernels[t]._ghosts.get(v)
                if g is None:
                    problems.append(
                        f"directory says shard {t} mirrors {v}; it does not"
                    )
                elif g.level != orec.level:
                    problems.append(
                        f"ghost of {v} on shard {t} at level {g.level}, "
                        f"owner holds level {orec.level}"
                    )
        for t, k in enumerate(kernels):
            for v, g in k._ghosts.items():
                if t not in self._ghost_sites.get(v, ()):
                    problems.append(
                        f"shard {t} holds unregistered ghost of {v}"
                    )
                    continue
                home = kernels[owner(v)]
                for w in g.neighbors():
                    if not home.has_edge(v, w):
                        problems.append(
                            f"mirror edge ({v},{w}) on shard {t} missing "
                            f"from owner shard {owner(v)}"
                        )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(shards={self.num_shards}, n={self.num_vertices}, "
            f"m={self.num_edges}, ghosts={len(self._ghost_sites)})"
        )
