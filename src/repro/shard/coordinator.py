"""Scatter-gather coordinator for the sharded PLDS engine.

The :class:`Coordinator` is the registry-facing front of
:mod:`repro.shard` (the ``plds-sharded`` algorithm key): it owns a
:class:`~repro.shard.engine.ShardedEngine`, validates every batch once
at the boundary, scatters the routed edges to owner shards with
**shard-level fault isolation**, drives the ghost-exchange cascade
rounds to quiescence, and gathers query answers.

Fault isolation ladder (bottom rung first):

1. ``shard.apply`` — the per-shard structural apply step.  The
   faultpoint fires *after* the shard mutated; on an
   :class:`~repro.faults.InjectedFault` the coordinator restores that
   one shard from its pre-step snapshot
   (:meth:`~repro.shard.kernel.ShardKernel.capture_state`) and retries
   it, leaving every other shard untouched.
2. Retries exhausted (``shard_retry_limit``) — the fault escapes to the
   :class:`~repro.service.CoreService` transaction, which rolls back
   the *whole* engine (snapshot-capable, so bit-identically) and
   re-applies the batch under its own :class:`~repro.service.RetryPolicy`.

Batch hygiene lives here, once: ``validate_vertex_ids``, self-loop
*dropping* (a stream-boundary convention, matching
:func:`~repro.graphs.streams.preprocess_batch`), canonicalization, and
the Section-8 uniqueness/validity checks — all before any shard
mutates, so the kernels can assume clean per-shard item lists.

Not supported in sharded mode: orientation tracking (Algorithm 5's
``H`` table would need its own touched-edge exchange) and the
vertex-centric ``insert_vertices`` / ``delete_vertices`` API; the
Lemma-5.13 ``core_members`` candidate filter also falls back to the
plain estimate-threshold rule at the service layer (the filter walks a
single level structure).
"""

from __future__ import annotations

from typing import Iterable

from .. import faults as _faults
from ..core.plds import UpdateResult
from ..core.query import EMPTY_EPOCH, EpochSnapshot
from ..faults import InjectedFault
from ..graphs.dynamic_graph import canonical_edge
from ..graphs.streams import Batch, validate_vertex_ids
from ..obs import metrics as _metrics
from ..obs import recorder as _recorder
from ..obs import tracing as _tracing
from ..parallel.engine import WorkDepthTracker
from ..parallel.primitives import log2_ceil
from .engine import ShardedEngine
from .kernel import ShardKernel
from .partition import Partitioner

__all__ = ["Coordinator"]


class Coordinator:
    """Scatter-gather front for the partitioned PLDS engine.

    Parameters mirror :class:`~repro.core.plds.PLDS` where they are
    forwarded to every kernel, plus:

    shards:
        Number of shards (>= 1).
    partition:
        ``"hash"`` (stateless modulo ownership) or ``"degree"``
        (LPT degree-balanced, computed over the initial edge set at
        :meth:`initialize`; later arrivals fall back to hash).
    assignment:
        Optional explicit vertex -> shard map (overrides ``partition``
        bootstrapping; used by snapshot restore).
    shard_retry_limit:
        Apply attempts per shard before a fault escapes to the service
        transaction.
    """

    #: The registry adapter skips its generic ``engine.update`` span —
    #: this engine emits its own richer ``coordinator.update`` span.
    SELF_TRACING = True
    _SPAN_NAME = "coordinator.update"

    def __init__(
        self,
        n_hint: int,
        delta: float = 0.4,
        lam: float = 3.0,
        group_shrink: int = 1,
        upper_coeff: float | None = None,
        tracker: WorkDepthTracker | None = None,
        insertion_strategy: str = "levelwise",
        structure: str = "randomized",
        shards: int = 4,
        partition: str = "hash",
        assignment: dict[int, int] | None = None,
        shard_retry_limit: int = 3,
        backend: str = "simulated",
        workers: int = 2,
    ) -> None:
        if shard_retry_limit < 1:
            raise ValueError("shard_retry_limit must be >= 1")
        if partition not in ("hash", "degree"):
            raise ValueError("partition must be 'hash' or 'degree'")
        if backend not in ("simulated", "pool"):
            raise ValueError(
                f"unknown backend {backend!r} (expected 'simulated' or 'pool')"
            )
        if tracker is None and backend == "pool":
            # Execution backend selection (not structural: snapshots
            # never carry it).  The engine tracker becomes the root
            # PoolBackend; kernels get child backends via subtracker().
            from ..parallel.pool import PoolBackend

            tracker = PoolBackend(workers=workers)
        self.partition = partition
        self.shard_retry_limit = shard_retry_limit
        kind = "degree" if assignment is not None and partition == "degree" else "hash"
        partitioner = Partitioner(shards, kind=kind, assignment=assignment)
        self.engine = ShardedEngine(
            n_hint,
            partitioner,
            delta=delta,
            lam=lam,
            group_shrink=group_shrink,
            upper_coeff=upper_coeff,
            tracker=tracker,
            insertion_strategy=insertion_strategy,
            structure=structure,
        )
        self._initialized = False
        #: O(log #shards) scatter/gather combining depth per batch phase.
        self._route_depth = log2_ceil(max(2, shards)) + 1
        #: epoch store (see :meth:`publish_epoch`).
        self._published: EpochSnapshot | None = None
        self._epoch_serial = 0
        #: vertices moved by the last update(); ``None`` = publish fully.
        self.last_moved: set[int] | None = None
        self._levels_reshaped = False
        #: overload signals from the last batch: cascade rounds and the
        #: per-shard scatter depth vector (admission-control inputs).
        self.last_rounds = 0
        self.last_shard_depths: list[int] = [0] * self.num_shards

    # -- conveniences ---------------------------------------------------

    @property
    def tracker(self) -> WorkDepthTracker:
        return self.engine.tracker

    @property
    def num_shards(self) -> int:
        return self.engine.num_shards

    @property
    def partitioner(self) -> Partitioner:
        return self.engine.partitioner

    @property
    def num_edges(self) -> int:
        return self.engine.num_edges

    @property
    def num_vertices(self) -> int:
        return self.engine.num_vertices

    def edges(self):
        return self.engine.edges()

    def has_edge(self, u: int, v: int) -> bool:
        return self.engine.has_edge(u, v)

    def level(self, v: int) -> int:
        return self.engine.level(v)

    def coreness_estimate(self, v: int) -> float:
        return self.engine.coreness_estimate(v)

    def coreness_estimates(self) -> dict[int, float]:
        return self.engine.coreness_estimates()

    def core_members(self, k: float) -> set[int]:
        return self.engine.core_members(k)

    def core_subgraph(self, k: int) -> tuple[set[int], list[tuple[int, int]]]:
        return self.engine.core_subgraph(k)

    def densest_estimate(self) -> tuple[float, set[int]]:
        return self.engine.densest_estimate()

    def space_bytes(self) -> int:
        return self.engine.space_bytes()

    def check_invariants(self) -> list[str]:
        return self.engine.check_invariants()

    # -- lifecycle ------------------------------------------------------

    def initialize(self, edges: Iterable[tuple[int, int]]) -> None:
        """Bootstrap from an initial edge set.

        With ``partition="degree"`` this is where the degree-balanced
        assignment is computed (over a
        :class:`~repro.graphs.dynamic_graph.DynamicGraph` of the initial
        edges) before any shard holds state; hash partitioning needs no
        bootstrap.  Idempotently a plain batch insert afterwards.
        """
        edges = [canonical_edge(u, v) for u, v in edges]
        if (
            not self._initialized
            and self.partition == "degree"
            and self.engine.num_vertices == 0
            and edges
        ):
            from ..graphs.dynamic_graph import DynamicGraph

            balanced = Partitioner.degree_balanced(
                DynamicGraph(edges), self.num_shards
            )
            self.engine.partitioner = balanced
            old_kernels = self.engine.kernels
            self.engine.kernels = [
                self.engine._make_kernel(s, self.engine.n_hint, k.tracker)
                for s, k in enumerate(old_kernels)
            ]
            for k in old_kernels:
                image = getattr(k, "_pool_image", None)
                if image is not None:
                    image.close()
        self._initialized = True
        if edges:
            self.update(Batch(insertions=edges))

    def update(self, batch: Batch) -> UpdateResult:
        """Apply one batch: validate, scatter, cascade, gather."""
        self._initialized = True
        tracer = _tracing.ACTIVE
        if tracer is None:
            result = self._apply_batch(batch)
        else:
            with tracer.span(
                self._SPAN_NAME,
                self.tracker,
                insertions=len(batch.insertions),
                deletions=len(batch.deletions),
                shards=self.num_shards,
            ):
                result = self._apply_batch(batch)
        if self._levels_reshaped:
            self.last_moved = None
            self._levels_reshaped = False
        else:
            self.last_moved = result.moved_vertices
        return result

    def _apply_batch(self, batch: Batch) -> UpdateResult:
        ins, dels = self._clean_batch(batch)
        result = UpdateResult()
        engine = self.engine
        self.last_rounds = 0
        self.last_shard_depths = [0] * self.num_shards
        if ins:
            self._scatter(ins, insert=True)
            rounds, _ = engine.cascade_rounds("rise")
            self.last_rounds += rounds
        if dels:
            self._scatter(dels, insert=False)
            rounds, _ = engine.cascade_rounds("desaturate")
            self.last_rounds += rounds
        result.moved_vertices = engine.take_moved()
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.gauge("shard.lag", self.shard_lag())
        self._maybe_rebuild()
        return result

    def shard_lag(self) -> int:
        """Depth gap between the slowest and fastest *active* shard.

        The admission controller's slow-shard signal: balanced shards
        keep the gap near zero, while one stalled shard (an armed
        :class:`~repro.faults.StallPoint` at ``shard.apply``, or a
        genuinely slow replica) makes its scatter depth tower over the
        rest.  With a single active shard the gap is its full depth —
        one shard doing all the work *is* maximal imbalance.
        """
        active = [d for d in self.last_shard_depths if d > 0]
        if not active:
            return 0
        if len(active) == 1:
            return active[0]
        return max(active) - min(active)

    def _clean_batch(
        self, batch: Batch
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Boundary hygiene, applied exactly once before any shard
        mutates: id validation, self-loop dropping, canonicalization,
        and the Section-8 uniqueness/validity checks."""
        self.tracker.add(work=max(1, len(batch)), depth=5)
        validate_vertex_ids(batch)
        engine = self.engine
        ins: list[tuple[int, int]] = []
        seen_ins: set[tuple[int, int]] = set()
        for u, v in batch.insertions:
            if u == v:
                continue  # self-loops dropped at the boundary
            e = canonical_edge(u, v)
            if e in seen_ins:
                raise ValueError(f"duplicate insertion {e} in batch")
            if engine.has_edge(*e):
                raise ValueError(f"insertion of existing edge {e}")
            seen_ins.add(e)
            ins.append(e)
        dels: list[tuple[int, int]] = []
        seen_dels: set[tuple[int, int]] = set()
        for u, v in batch.deletions:
            if u == v:
                continue
            e = canonical_edge(u, v)
            if e in seen_dels:
                raise ValueError(f"duplicate deletion {e} in batch")
            if e in seen_ins:
                raise ValueError(f"edge {e} both inserted and deleted in batch")
            if not engine.has_edge(*e):
                raise ValueError(f"deletion of missing edge {e}")
            seen_dels.add(e)
            dels.append(e)
        return ins, dels

    # -- fault-isolated scatter ----------------------------------------

    def _scatter(self, edges: list[tuple[int, int]], insert: bool) -> None:
        """Route ``edges`` and apply each shard's items under shard-level
        fault isolation; fold per-shard metering into the engine tracker
        (parallel shards: sum work, max depth).  Ghost-directory commits
        happen only after a shard's step succeeded, so a rolled-back
        shard never leaks directory entries."""
        engine = self.engine
        items = engine.route(edges)
        levels = engine.ghost_levels(edges) if insert else None
        self.tracker.add(work=max(1, len(edges)), depth=self._route_depth)
        tracer = _tracing.ACTIVE
        total = 0
        deepest = 0
        for s, kernel in enumerate(engine.kernels):
            shard_items = items[s]
            if not shard_items:
                continue
            since = kernel.tracker.snapshot()
            span = (
                tracer.begin(
                    "shard.apply",
                    kernel.tracker,
                    shard=s,
                    edges=len(shard_items),
                    insert=insert,
                )
                if tracer is not None
                else None
            )
            try:
                out = self._shard_step(s, kernel, shard_items, levels, insert)
            except BaseException as exc:
                if span is not None:
                    tracer.end(span, error=type(exc).__name__)
                raise
            if span is not None:
                tracer.end(span)
            delta = kernel.tracker.delta(since)
            total += delta.work
            if delta.depth > deepest:
                deepest = delta.depth
            self.last_shard_depths[s] += delta.depth
            if insert:
                engine.register_ghosts(s, out)
            else:
                engine.drop_ghosts(s, out)
        if total:
            self.tracker.add(work=total, depth=deepest)

    def _shard_step(
        self,
        s: int,
        kernel: ShardKernel,
        shard_items: list[tuple[int, int, bool]],
        levels: dict[int, int] | None,
        insert: bool,
    ) -> list[int]:
        mreg = _metrics.ACTIVE
        attempts = 0
        while True:
            attempts += 1
            plan = _faults.ACTIVE
            state = kernel.capture_state() if plan is not None else None
            try:
                if insert:
                    assert levels is not None
                    out = kernel.apply_insertions(shard_items, levels)
                else:
                    out = kernel.apply_deletions(shard_items)
                if plan is not None:
                    # Fires *after* the mutation: an injected crash here
                    # forces a real shard-local rollback, not a no-op.
                    plan.hit("shard.apply")
                    # Slow-shard injection: stall depth lands on *this*
                    # kernel's tracker inside the scatter delta window,
                    # so it shows up in shard_lag() like a genuinely
                    # slow shard (and in the folded engine depth).
                    stall = plan.delay_for("shard.apply")
                    if stall:
                        kernel.tracker.add(work=0, depth=stall)
                return out
            except InjectedFault:
                if state is not None:
                    kernel.restore_state(state)
                if mreg is not None:
                    mreg.inc("shard.rollbacks", shard=str(s))
                rec = _recorder.ACTIVE
                if rec is not None:
                    rec.note("shard.rollback", shard=s, attempt=attempts)
                if attempts >= self.shard_retry_limit:
                    raise

    def _maybe_rebuild(self) -> None:
        engine = self.engine
        if not engine.needs_rebuild():
            return
        mreg = _metrics.ACTIVE
        if mreg is not None:
            mreg.inc("shard.rebuilds")
        tracer = _tracing.ACTIVE
        if tracer is None:
            engine.rebuild()
            return
        with tracer.span(
            "shard.rebuild",
            self.tracker,
            vertices=engine.num_vertices,
            edges=engine.num_edges,
        ):
            engine.rebuild()

    # -- epoch-versioned reads ------------------------------------------

    def publish_epoch(
        self, touched: Iterable[int] | None = None
    ) -> EpochSnapshot:
        """Publish a coordinator epoch over a *stable* per-shard vector.

        Call only at a quiescent commit point (between batches): every
        kernel publishes its local epoch first, then the coordinator
        merges them under one serial, so the recorded ``shard_epochs``
        vector is exactly the set of shard states the merged image was
        gathered from — an immutable consistent cut, not a racy
        read-one-shard-at-a-time sample.

        Copy-on-write: with ``touched`` given (batch endpoints plus
        :attr:`last_moved`), the previous coordinator image is copied
        and only the touched vertices re-read from their owner kernels'
        fresh epochs; after an engine-coordinated rebuild (which resets
        every kernel) the image is republished from scratch.
        """
        engine = self.engine
        kernels = engine.kernels
        if self._levels_reshaped or engine._levels_reshaped:
            touched = None
            self._levels_reshaped = False
            engine._levels_reshaped = False
        owner = engine.partitioner.owner
        if touched is None:
            per_shard: list[set[int]] | None = None
        else:
            per_shard = [set() for _ in kernels]
            for v in touched:
                per_shard[owner(v)].add(v)
        snaps = [
            k.publish_epoch(None if per_shard is None else per_shard[s])
            for s, k in enumerate(kernels)
        ]
        prev = self._published
        if prev is None or per_shard is None:
            estimates: dict[int, float] = {}
            levels: dict[int, int] = {}
            for snap in snaps:
                estimates.update(snap.estimates)
                levels.update(snap.levels)
        else:
            estimates = dict(prev.estimates)
            levels = dict(prev.levels)
            for s, snap in enumerate(snaps):
                for v in per_shard[s]:
                    est = snap.estimates.get(v)
                    if est is None:
                        estimates.pop(v, None)
                        levels.pop(v, None)
                    else:
                        estimates[v] = est
                        levels[v] = snap.levels[v]
        self._epoch_serial += 1
        view = EpochSnapshot(
            epoch=self._epoch_serial,
            estimates=estimates,
            levels=levels,
            shard_epochs=tuple(s.epoch for s in snaps),
        )
        self._published = view
        mreg = _metrics.ACTIVE
        if mreg is not None:
            for s, snap in enumerate(snaps):
                mreg.gauge("shard.read_epoch", snap.epoch, shard=str(s))
        return view

    def read_view(self) -> EpochSnapshot:
        """Last published coordinator epoch (empty epoch 0 before any)."""
        pub = self._published
        return pub if pub is not None else EMPTY_EPOCH

    @property
    def read_epoch(self) -> int:
        return self._epoch_serial

    # -- snapshots ------------------------------------------------------

    def to_snapshot(self) -> dict:
        """JSON-serializable snapshot, stored shard-by-shard.

        Each shard section holds its local levels and its *counted*
        edges; the union reconstructs the global structure (levels
        fully determine the U/L partitions, as for the monolithic
        PLDS).  The partitioner's explicit assignment rides along so a
        restore re-creates the exact same ownership, ghost sets, and
        directory.
        """
        engine = self.engine
        return {
            "format": 1,
            "sharded": True,
            "params": {
                "n_hint": engine.n_hint,
                "delta": engine.delta,
                "lam": engine.lam,
                "group_shrink": engine.group_shrink,
                "upper_coeff": engine.upper_coeff,
                "insertion_strategy": engine.insertion_strategy,
                "structure": engine.structure,
                "shards": engine.num_shards,
                "partition": self.partition,
                "shard_retry_limit": self.shard_retry_limit,
            },
            "assignment": engine.partitioner.assignment_items(),
            "shards": [
                {
                    "shard": s,
                    "levels": sorted(
                        [v, rec.level] for v, rec in k._vertices.items()
                    ),
                    "edges": sorted(k.edges()),
                }
                for s, k in enumerate(engine.kernels)
            ],
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: dict, tracker: WorkDepthTracker | None = None
    ) -> "Coordinator":
        """Reconstruct a coordinator from :meth:`to_snapshot` output,
        shard by shard: levels verbatim, each edge re-linked on both
        endpoint owners (ghosts at their owners' snapshotted levels),
        directory rebuilt — no replay, bit-identical estimates."""
        if snapshot.get("format") != 1 or not snapshot.get("sharded"):
            raise ValueError("unsupported sharded snapshot format")
        params = dict(snapshot["params"])
        assignment = {v: s for v, s in snapshot.get("assignment") or []}
        coord = cls(
            tracker=tracker, assignment=assignment or None, **params
        )
        coord._initialized = True
        engine = coord.engine
        owner = engine.partitioner.owner
        levels: dict[int, int] = {}
        all_edges: list[tuple[int, int]] = []
        for section in snapshot["shards"]:
            s = section["shard"]
            for v, lvl in section["levels"]:
                if owner(v) != s:
                    raise ValueError(
                        f"snapshot places {v} on shard {s}, owner is {owner(v)}"
                    )
                if not 0 <= lvl < engine.kernels[s].num_levels:
                    raise ValueError(
                        f"level {lvl} of vertex {v} out of range"
                    )
                levels[v] = lvl
                rec = engine.kernels[s]._record(v)
                rec.level = lvl
            all_edges.extend(tuple(e) for e in section["edges"])
        for u, v in all_edges:
            if u not in levels or v not in levels:
                raise ValueError(f"edge ({u},{v}) references unknown vertex")
            su, sv = owner(u), owner(v)
            ghosts: list[int] = []
            ku = engine.kernels[su]
            ku._link_records(
                ku._vertices[u], ku._materialize(v, levels, ghosts)
            )
            ku._m += 1  # counted on the min-endpoint owner (u < v)
            engine.register_ghosts(su, ghosts)
            if sv != su:
                ghosts = []
                kv = engine.kernels[sv]
                kv._link_records(
                    kv._materialize(u, levels, ghosts), kv._vertices[v]
                )
                engine.register_ghosts(sv, ghosts)
        return coord

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Coordinator(shards={self.num_shards}, "
            f"partition={self.partition!r}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )
