"""Shard-local PLDS cascade kernel with ghost-level replication.

A :class:`ShardKernel` is a :class:`~repro.core.plds.PLDS` that owns the
full ``_VertexRecord`` of every *local* vertex (the ones its
:class:`~repro.shard.partition.Partitioner` assigns to it) plus
read-mostly **ghost** records mirroring the remote endpoints of local
edges.  The structural invariant the cascade correctness rests on:

    every neighbor of a local vertex has a record on the shard
    (local or ghost), and a ghost's adjacency is restricted to the
    shard's local vertices (ghosts are never linked to ghosts).

Local up-degrees, up*-degrees and desire-level scans are therefore
*exact* given the current ghost levels; ghost levels lag their owners by
at most one message round.  The level-message boundary:

- cascade steps (:meth:`rise_level`, :meth:`desaturate_level`) process
  only the shard's own dirty/pending buckets and emit **move events**
  ``(v, old_level, new_level)`` for every local move, instead of
  marking remote neighbors directly (the marking a monolithic PLDS does
  in-line is skipped for ghost records);
- :meth:`apply_moves` replays remote events onto the local ghost
  replicas via the record-based primitives ``_move_up_to`` /
  ``_move_down`` — whose returned newly-marked / weakened records are
  all local (ghost adjacency is local-only) and feed the shard's own
  dirty/pending state.

The engine's :meth:`~repro.shard.engine.ShardedEngine.cascade_rounds`
alternates step and apply until global quiescence; the monotone-fixpoint
argument for Algorithms 2/3 (rises never overshoot the least fixpoint
and still-violating vertices are re-marked at event-apply time; dually
for desaturation with move-time revalidation) makes the final levels —
and hence the coreness estimates — independent of the shard count.

Edge-count discipline: an edge is *held* by both endpoint owners but
*counted* (``_m``) only by the owner of its min endpoint, so the
inherited :meth:`PLDS.edges` (which yields ``(v, w)`` for local ``v``
with ``v < w``) enumerates exactly the shard's counted edges and the
union over shards is the global edge set, duplicate-free.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable

from ..core.plds import PLDS, _VertexRecord
from ..parallel.engine import WorkDepthTracker

__all__ = ["ShardKernel"]

#: A level-move event: (vertex, old_level, new_level).
MoveEvent = tuple[int, int, int]


class ShardKernel(PLDS):
    """One shard's PLDS: local records + ghost replicas + cascade state.

    Parameters beyond the PLDS ones:

    shard_id:
        This shard's index (label for spans/metrics/diagnostics).
    owns:
        Predicate ``vertex id -> bool`` telling local from remote
        (derived from the engine's partitioner).

    The kernel never runs :meth:`PLDS.update` — batches arrive
    pre-validated from the coordinator as :meth:`apply_insertions` /
    :meth:`apply_deletions` items, and rebalancing is driven round-wise
    by the engine.  Orientation tracking is unsupported (ghost replicas
    would need their own touched-edge exchange), and the Section-5.9
    rebuild is the *engine's* job: the local trigger is disabled because
    the level-threshold tables must be sized by the global ``n_hint``
    on every shard for shard-count-independent rise/desaturate
    decisions.
    """

    def __init__(
        self,
        shard_id: int,
        owns: Callable[[int], bool],
        n_hint: int,
        delta: float = 0.4,
        lam: float = 3.0,
        group_shrink: int = 1,
        upper_coeff: float | None = None,
        tracker: WorkDepthTracker | None = None,
        insertion_strategy: str = "levelwise",
        structure: str = "randomized",
    ) -> None:
        super().__init__(
            n_hint,
            delta=delta,
            lam=lam,
            group_shrink=group_shrink,
            upper_coeff=upper_coeff,
            tracker=tracker,
            track_orientation=False,
            insertion_strategy=insertion_strategy,
            structure=structure,
        )
        self.shard_id = shard_id
        self.owns = owns
        #: ghost replicas of remote neighbors, keyed by vertex id.
        self._ghosts: dict[int, _VertexRecord] = {}
        #: rise state: level -> set of local records marked dirty there.
        self._dirty: dict[int, set[_VertexRecord]] = {}
        #: desaturate state: vertex -> stored desire level, and
        #: level -> pending local vertex ids (Algorithm 3's buckets).
        self._desire: dict[int, int] = {}
        self._pending: dict[int, set[int]] = {}
        #: local endpoints touched by deletions, awaiting a desire scan.
        self._affected: set[int] = set()
        #: local vertices moved since the last :meth:`take_moved`.
        self._moved: set[int] = set()
        # -- resident-image dirty protocol (repro.parallel.pool) -------
        #: whether the tracker pool-dispatches (gates dirty noting).
        self._pool_track = bool(getattr(self.tracker, "pool_tasks", False))
        #: the ResidentImage shipping this kernel's state, if any.
        self._pool_image = None
        #: record set changed (materialize/evict/restore): full rebuild.
        self._pool_renumber = True
        #: edges changed but the record set held: CSR rewrite only.
        self._pool_adj_dirty = True
        #: slots whose level changed since the last flush.
        self._pool_dirty_slots: list[int] = []
        #: id -> slot in the resident image (locals + ghosts, ascending
        #: id); rebuilt by :meth:`pool_csr`.
        self._pool_slot_of: dict[int, int] = {}
        #: slot -> record, same ordering.
        self._pool_recs: list[_VertexRecord] = []

    # ------------------------------------------------------------------
    # Structural apply steps (scatter phase)
    # ------------------------------------------------------------------

    def _materialize(
        self,
        v: int,
        levels: dict[int, int],
        new_ghosts: list[int],
    ) -> _VertexRecord:
        rec = self._vertices.get(v)
        if rec is None:
            rec = self._ghosts.get(v)
        if rec is not None:
            return rec
        if self.owns(v):
            return self._record(v)
        rec = _VertexRecord(v)
        rec.level = levels[v]
        rec.ghost = True
        self._ghosts[v] = rec
        new_ghosts.append(v)
        return rec

    def apply_insertions(
        self,
        items: Iterable[tuple[int, int, bool]],
        levels: dict[int, int],
    ) -> list[int]:
        """Link the routed edges ``(u, v, counted)`` into this shard.

        ``levels`` maps every endpoint to its owner's current level, so
        remote endpoints materialize as up-to-date ghosts.  Local
        endpoints are marked dirty (Algorithm 2 seeds); ghost endpoints
        are the owning shard's problem.  Returns the ids of newly
        created ghosts (for the engine's ghost directory).
        """
        items = list(items)
        self.tracker.add(work=2 * len(items), depth=self._mut_depth)
        # Edges always dirty the adjacency; materialization only forces a
        # renumber when it mints a record the slot map has never seen.
        self._pool_adj_dirty = True
        n_before = len(self._vertices) + len(self._ghosts)
        new_ghosts: list[int] = []
        dirty = self._dirty
        for u, v, counted in items:
            ru = self._materialize(u, levels, new_ghosts)
            rv = self._materialize(v, levels, new_ghosts)
            self._link_records(ru, rv)
            if counted:
                self._m += 1
            for r in (ru, rv):
                if r.ghost:
                    continue
                bucket = dirty.get(r.level)
                if bucket is None:
                    dirty[r.level] = {r}
                else:
                    bucket.add(r)
        if len(self._vertices) + len(self._ghosts) != n_before:
            self._pool_renumber = True
        return new_ghosts

    def apply_deletions(
        self, items: Iterable[tuple[int, int, bool]]
    ) -> list[int]:
        """Unlink the routed edges; queue local endpoints for desire scans.

        Ghost replicas whose mirrored degree drops to zero are evicted
        (no local vertex needs their level anymore); their ids are
        returned so the engine can prune the ghost directory *after*
        the step commits (rollback safety).
        """
        items = list(items)
        self.tracker.add(work=2 * len(items), depth=self._mut_depth)
        self._pool_adj_dirty = True
        dropped: list[int] = []
        affected = self._affected
        for u, v, counted in items:
            ru = self._vertices.get(u) or self._ghosts[u]
            rv = self._vertices.get(v) or self._ghosts[v]
            self._unlink_records(ru, rv)
            if counted:
                self._m -= 1
            for r in (ru, rv):
                if r.ghost:
                    if r.deg == 0:
                        del self._ghosts[r.id]
                        dropped.append(r.id)
                else:
                    affected.add(r.id)
        if dropped:
            self._pool_renumber = True
        return dropped

    def consider_affected(self) -> None:
        """Desire-scan every local endpoint the deletion batch touched
        (the ``flat_parfor(sorted(affected), consider)`` prologue of
        Algorithm 3, restricted to this shard)."""
        affected = sorted(self._affected)
        self._affected.clear()
        if not affected:
            return
        vertices = self._vertices
        body = lambda v: self._consider(vertices[v])  # noqa: E731
        if self._pool_track:
            # A pool-capable backend ships this scan to worker processes
            # over the kernel's resident local+ghost image; the inline
            # body is the fallback and the semantics/charge reference.
            from ..parallel.pool import attach_shard_consider_task

            attach_shard_consider_task(self, body)
        self.tracker.flat_parfor(affected, body)

    # ------------------------------------------------------------------
    # Level-synchronous cascade steps (round phase)
    # ------------------------------------------------------------------

    def min_dirty_level(self) -> int | None:
        return min(self._dirty) if self._dirty else None

    def min_pending_level(self) -> int | None:
        return min(self._pending) if self._pending else None

    def rise_level(self, level: int) -> list[MoveEvent]:
        """Process this shard's dirty bucket at ``level`` (one Algorithm-2
        level iteration) and return the resulting move events.

        Identical decisions to the monolithic loop, with one boundary
        difference: a ghost up-neighbor crossing its Invariant-1 bound
        is *not* marked here — its owner marks it when
        :meth:`apply_moves` replays this shard's move events there
        (``_move_up_to`` uses a ``>``-bound check, so the owner-side
        mark is violation-driven and robust to stale mirror counts).
        """
        moves: list[MoveEvent] = []
        tracker = self.tracker
        tracker.add(work=1, depth=1)  # the level-loop iteration itself
        candidates = self._dirty.pop(level, None)
        if not candidates:
            return moves
        bounds = self._inv1_bound_int
        bound = bounds[level]
        dirty = self._dirty
        moved_add = self._moved.add

        if self.insertion_strategy == "jump":
            movers = {
                rec.id: rec
                for rec in candidates
                if rec.level == level and len(rec.up) > bound
            }
            if not movers:
                return moves

            def rise(v: int) -> None:
                rec = movers[v]
                old = rec.level
                newly_marked = self._move_up_to(
                    rec, self._up_desire_level(rec)
                )
                moved_add(v)
                moves.append((v, old, rec.level))
                if len(rec.up) > bounds[rec.level]:
                    newly_marked.append(rec)
                for wrec in newly_marked:
                    if wrec.ghost:
                        continue  # the owner marks it off our move event
                    bucket = dirty.get(wrec.level)
                    if bucket is None:
                        dirty[wrec.level] = {wrec}
                    else:
                        bucket.add(wrec)

            tracker.flat_parfor(sorted(movers), rise)
            if self._pool_track and moves:
                self._pool_note_ids(ev[0] for ev in moves)
            return moves

        # Levelwise: the monolithic inlined fast path, minus orientation
        # bookkeeping (unsupported here), plus ghost-mark suppression and
        # move-event emission.  Aggregate charging is identical: the sum
        # of |U[v]| over movers as work, one structure-mutation depth.
        target = level + 1
        bound_t = bounds[target]
        crossing = bound_t + 1
        total_work = 0
        marked_next: list[_VertexRecord] = []
        marked_append = marked_next.append
        for rec in candidates:
            if rec.level != level:
                continue
            up = rec.up
            if len(up) <= bound:
                continue
            moved_add(rec.id)
            total_work += len(up)
            stay = None
            for wrec in up:
                lw = wrec.level
                if lw == level:
                    # w stays below v; v remains in U[w].
                    if stay is None:
                        stay = [wrec]
                    else:
                        stay.append(wrec)
                else:
                    wdown = wrec.down
                    bucket = wdown[level]
                    bucket.discard(rec)
                    if not bucket:
                        del wdown[level]
                    if lw == target:
                        wup = wrec.up
                        wup.add(rec)
                        if len(wup) == crossing and not wrec.ghost:
                            marked_append(wrec)
                    else:  # lw > target: w's L-structure shifts.
                        slot = wdown.get(target)
                        if slot is None:
                            wdown[target] = {rec}
                        else:
                            slot.add(rec)
            if stay is not None:
                up.difference_update(stay)
                slot = rec.down.get(level)
                if slot is None:
                    rec.down[level] = set(stay)
                else:
                    slot.update(stay)
            rec.level = target
            moves.append((rec.id, level, target))
            if len(up) > bound_t:
                marked_append(rec)
        if not total_work:
            return moves
        tracker.add(total_work, self._mut_depth)
        if marked_next:
            bucket = dirty.get(target)
            if bucket is None:
                dirty[target] = set(marked_next)
            else:
                bucket.update(marked_next)
        if self._pool_track and moves:
            self._pool_note_ids(ev[0] for ev in moves)
        return moves

    def desaturate_level(self, level: int) -> list[MoveEvent]:
        """Process this shard's pending bucket at ``level`` (one
        Algorithm-3 level iteration) and return the move events.

        Desire levels are revalidated at move time exactly as in the
        monolithic loop — with ghosts this also absorbs cross-shard
        staleness: mirrored levels only over-estimate during a deletion
        phase, so a stored desire is only ever too high, and the fresh
        scan (or a later weakened-propagation re-consider) corrects it.
        """
        moves: list[MoveEvent] = []
        tracker = self.tracker
        tracker.add(work=1, depth=1)
        bucket = self._pending.pop(level, None)
        if not bucket:
            return moves
        desire = self._desire
        vertices = self._vertices
        movers = [
            v
            for v in bucket
            if desire.get(v) == level and vertices[v].level > level
        ]
        if not movers:
            return moves
        pending = self._pending
        moved_add = self._moved.add

        def descend(v: int) -> None:
            rec = vertices[v]
            fresh = self._calculate_desire_level(rec)
            if fresh != level:
                if fresh < rec.level:
                    desire[v] = fresh
                    slot = pending.get(fresh)
                    if slot is None:
                        pending[fresh] = {v}
                    else:
                        slot.add(v)
                else:
                    desire.pop(v, None)
                return
            old = rec.level
            weakened = self._move_down(rec, level)
            moved_add(v)
            moves.append((v, old, level))
            desire.pop(v, None)
            for wrec in weakened:
                if wrec.ghost:
                    continue  # the owner re-considers it off our event
                desire.pop(wrec.id, None)
                self._consider(wrec)

        tracker.flat_parfor(sorted(movers), descend)
        if self._pool_track and moves:
            self._pool_note_ids(ev[0] for ev in moves)
        return moves

    def apply_moves(self, events: Iterable[MoveEvent]) -> None:
        """Replay remote move events onto this shard's ghost replicas.

        Upward events re-mark local neighbors that now violate
        Invariant 1; downward events re-consider local neighbors whose
        ``up*`` shrank.  All fallout is local by construction (ghost
        adjacency holds local records only).
        """
        dirty = self._dirty
        desire = self._desire
        changed: list[int] = []
        for v, _old, new in events:
            rec = self._ghosts.get(v)
            if rec is None or rec.level == new:
                continue
            changed.append(v)
            if new > rec.level:
                for wrec in self._move_up_to(rec, new):
                    bucket = dirty.get(wrec.level)
                    if bucket is None:
                        dirty[wrec.level] = {wrec}
                    else:
                        bucket.add(wrec)
            else:
                for wrec in self._move_down(rec, new):
                    desire.pop(wrec.id, None)
                    self._consider(wrec)
        if self._pool_track and changed:
            self._pool_note_ids(changed)

    def _consider(self, rec: _VertexRecord) -> None:
        """Algorithm 3's Invariant-2 check + desire enqueue for a local
        record (the monolithic ``consider`` closure, shard-resident)."""
        lvl = rec.level
        if lvl == 0:
            return
        below = rec.down.get(lvl - 1)
        up_star = len(rec.up) + (len(below) if below else 0)
        if up_star < self._inv2_thresh_int[lvl]:
            dl = self._calculate_desire_level(rec)
            self._desire[rec.id] = dl
            bucket = self._pending.get(dl)
            if bucket is None:
                self._pending[dl] = {rec.id}
            else:
                bucket.add(rec.id)

    # ------------------------------------------------------------------
    # Resident-image encoders (repro.parallel.pool.ResidentImage)
    # ------------------------------------------------------------------

    def pool_csr(self) -> tuple["array", "array"]:
        """CSR-style adjacency over this kernel's record universe.

        Slots cover locals *and* ghosts in ascending-id order, so a
        local vertex's CSR row can reference its ghost neighbors and
        the shared level vector carries their mirrored levels.  Rebuilds
        the id->slot directory as a side effect (the protocol guarantees
        a renumber-flagged flush calls this before payloads encode).
        """
        ids = sorted(self._vertices.keys() | self._ghosts.keys())
        slot_of = {v: i for i, v in enumerate(ids)}
        vertices_get = self._vertices.get
        ghosts = self._ghosts
        recs = [vertices_get(v) or ghosts[v] for v in ids]
        offsets = array("i", bytes(4 * (len(ids) + 1)))
        nbrs: list[int] = []
        extend = nbrs.extend
        for i, rec in enumerate(recs):
            extend(slot_of[w.id] for w in rec.up)
            for bucket in rec.down.values():
                extend(slot_of[w.id] for w in bucket)
            offsets[i + 1] = len(nbrs)
        self._pool_slot_of = slot_of
        self._pool_recs = recs
        return offsets, array("i", nbrs)

    def pool_levels_array(self) -> "array":
        return array("i", [rec.level for rec in self._pool_recs])

    def pool_levels_range(self, lo: int, hi: int) -> "array":
        recs = self._pool_recs
        return array("i", [recs[i].level for i in range(lo, hi)])

    def _pool_note_ids(self, ids: Iterable[int]) -> None:
        """Record level changes for the delta flush (see the flat
        engine's counterpart); unknown ids or a degenerate backlog
        collapse into a full rebuild, which is always safe."""
        if self._pool_renumber:
            return
        slot_get = self._pool_slot_of.get
        dirty = self._pool_dirty_slots
        for v in ids:
            i = slot_get(v)
            if i is None:
                self._pool_renumber = True
                del dirty[:]
                return
            dirty.append(i)
        if len(dirty) > 1024 and len(dirty) > 4 * len(self._pool_slot_of):
            self._pool_renumber = True
            del dirty[:]

    def take_moved(self) -> set[int]:
        """Local vertices moved since the last call (and reset)."""
        moved = self._moved
        self._moved = set()
        return moved

    # ------------------------------------------------------------------
    # Shard-local rollback (the ``shard.apply`` fault boundary)
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        """Cheap structural snapshot for shard-local rollback.

        Levels + edge pairs fully determine the U/L partitions, exactly
        as in :meth:`PLDS.to_snapshot`; ghost levels and the counted-edge
        total ride along so a restore is bit-identical.  Cascade state
        (dirty/desire/pending/affected) is *not* captured: a shard step
        is only retried from the quiescent pre-scatter state, where all
        of it is empty.
        """
        pairs: list[tuple[int, int]] = []
        local = self._vertices
        for v, rec in local.items():
            for w in rec.neighbors():
                if w in local:
                    if v < w:
                        pairs.append((v, w))
                else:
                    pairs.append((v, w))
        return {
            "levels": {v: rec.level for v, rec in local.items()},
            "ghosts": {v: rec.level for v, rec in self._ghosts.items()},
            "pairs": pairs,
            "m": self._m,
            "moved": set(self._moved),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild this shard's structures from :meth:`capture_state`."""
        self._pool_renumber = True
        self._vertices = {}
        self._ghosts = {}
        for v, lvl in state["levels"].items():
            rec = self._record(v)
            rec.level = lvl
        for v, lvl in state["ghosts"].items():
            rec = _VertexRecord(v)
            rec.level = lvl
            rec.ghost = True
            self._ghosts[v] = rec
        for u, w in state["pairs"]:
            ru = self._vertices.get(u) or self._ghosts[u]
            rw = self._vertices.get(w) or self._ghosts[w]
            self._link_records(ru, rw)
        self._m = state["m"]
        self._moved = set(state["moved"])
        self._dirty = {}
        self._desire = {}
        self._pending = {}
        self._affected = set()

    # ------------------------------------------------------------------
    # Per-shard read epochs
    # ------------------------------------------------------------------

    def publish_epoch(self, touched=None):
        """Publish this shard's local level image as a read epoch.

        The inherited QueryView hooks iterate ``_vertices`` only, so a
        shard epoch covers exactly the shard's *owned* vertices — ghost
        mirrors carry no estimates of their own.  Any remote ids in
        ``touched`` are filtered out up front: a ghost's level change is
        the owner shard's move, and republishing it here would only pay
        useless pop/no-op work on every ghost-churn round.

        Shard-local rollback (:meth:`restore_state`) deliberately leaves
        the published epoch alone: readers keep seeing the last epoch
        the coordinator published at a quiescent commit point, never the
        half-applied state the rollback is erasing.
        """
        if touched is not None:
            owns = self.owns
            touched = [v for v in touched if owns(v)]
        return super().publish_epoch(touched)

    # ------------------------------------------------------------------
    # Overrides: ghost-aware queries, engine-owned rebuild
    # ------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        ru = self._vertices.get(u) or self._ghosts.get(u)
        rv = self._vertices.get(v) or self._ghosts.get(v)
        if ru is None or rv is None:
            return False
        if rv.level >= ru.level:
            return rv in ru.up
        return rv in ru.down.get(rv.level, ())

    def _maybe_rebuild(self) -> None:
        # Rebuilds are coordinated by the engine: the trigger must read
        # the *global* vertex count and every shard must re-size to the
        # same global n_hint, or the per-level threshold tables diverge
        # from the monolithic structure and parity breaks.
        return

    def space_bytes(self) -> int:
        """Local structures (inherited accounting) + ghost mirrors."""
        total = super().space_bytes()
        for rec in self._ghosts.values():
            total += 8  # mirrored level
            total += 8 * len(rec.up)
            if self.structure == "space_efficient":
                total += sum(16 + 8 * len(s) for s in rec.down.values())
            else:
                total += 8 * rec.level
                total += sum(8 * len(s) for s in rec.down.values())
        return total

    def check_invariants(self) -> list[str]:
        """Inherited per-local-vertex checks + ghost bookkeeping checks.

        (Cross-shard mirror/directory consistency is the engine's
        check; this one sees a single shard.)
        """
        problems = super().check_invariants()
        for v, rec in self._ghosts.items():
            if not rec.ghost:
                problems.append(f"ghost record {v} lost its ghost flag")
            if self.owns(v):
                problems.append(f"vertex {v} is a ghost on its owner shard")
            if v in self._vertices:
                problems.append(f"vertex {v} is both local and ghost")
            if rec.deg == 0:
                problems.append(f"ghost {v} has degree 0 (should be evicted)")
            for w in rec.neighbors():
                if w not in self._vertices:
                    problems.append(
                        f"ghost {v} adjacent to non-local vertex {w}"
                    )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardKernel(shard={self.shard_id}, local={len(self._vertices)}, "
            f"ghosts={len(self._ghosts)}, m={self._m})"
        )
