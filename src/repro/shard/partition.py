"""Vertex partitioning for the sharded PLDS engine.

A :class:`Partitioner` maps every vertex id to exactly one **owner
shard**.  Edges follow their *minimum* endpoint (the canonical-edge
convention the whole stack uses), so each edge has exactly one owner
shard too — the one that counts it toward ``num_edges`` — while both
endpoint owners hold the edge structurally (the non-owning endpoint as
a ghost replica; see :mod:`repro.shard.kernel`).

Two strategies:

- ``"hash"`` (default): ``owner(v) = v % num_shards``.  Stateless, so
  vertices that appear mid-stream are placed without coordination.
- ``"degree"``: degree-balanced via :meth:`Partitioner.degree_balanced`
  — LPT (longest-processing-time) assignment of vertices in decreasing
  degree order over a :class:`~repro.graphs.dynamic_graph.DynamicGraph`,
  balancing the *accumulated degree* per shard.  The computed assignment
  is explicit; vertices outside it (new arrivals) fall back to hash.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..graphs.dynamic_graph import DynamicGraph

__all__ = ["Partitioner"]


class Partitioner:
    """Deterministic vertex -> shard ownership map.

    Parameters
    ----------
    num_shards:
        Number of shards (>= 1).
    kind:
        ``"hash"`` or ``"degree"`` — recorded capability metadata; the
        ownership rule itself is the explicit ``assignment`` overlaid on
        the hash fallback either way.
    assignment:
        Optional explicit vertex -> shard map (as produced by
        :meth:`degree_balanced`).  Vertices not listed fall back to
        ``v % num_shards``.
    """

    def __init__(
        self,
        num_shards: int,
        kind: str = "hash",
        assignment: Mapping[int, int] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if kind not in ("hash", "degree"):
            raise ValueError("partition kind must be 'hash' or 'degree'")
        self.num_shards = num_shards
        self.kind = kind
        self._assignment: dict[int, int] = dict(assignment or {})
        for v, s in self._assignment.items():
            if not 0 <= s < num_shards:
                raise ValueError(f"assignment maps {v} to invalid shard {s}")

    def owner(self, v: int) -> int:
        """Owner shard of vertex ``v``."""
        s = self._assignment.get(v)
        return s if s is not None else v % self.num_shards

    def owner_of_edge(self, u: int, v: int) -> int:
        """Owner shard of edge {u, v}: the owner of its min endpoint."""
        return self.owner(u if u < v else v)

    def assignment_items(self) -> list[list[int]]:
        """Sorted ``[vertex, shard]`` pairs (JSON-friendly, for snapshots)."""
        return sorted([v, s] for v, s in self._assignment.items())

    def shard_sizes(self, vertices: Iterable[int]) -> list[int]:
        """How many of ``vertices`` each shard owns (diagnostics)."""
        sizes = [0] * self.num_shards
        for v in vertices:
            sizes[self.owner(v)] += 1
        return sizes

    @classmethod
    def degree_balanced(
        cls, graph: DynamicGraph, num_shards: int
    ) -> "Partitioner":
        """LPT degree-balanced partition of ``graph``'s vertices.

        Vertices are assigned in decreasing-degree order (ties toward
        the smaller id) to the shard with the smallest accumulated
        degree so far (ties toward the smaller shard id) — the classic
        greedy makespan bound, applied to per-shard adjacency load.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        loads = [0] * num_shards
        assignment: dict[int, int] = {}
        by_degree = sorted(
            graph.vertices(), key=lambda v: (-graph.degree(v), v)
        )
        for v in by_degree:
            s = min(range(num_shards), key=lambda i: (loads[i], i))
            assignment[v] = s
            loads[s] += graph.degree(v)
        return cls(num_shards, kind="degree", assignment=assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partitioner(shards={self.num_shards}, kind={self.kind!r}, "
            f"pinned={len(self._assignment)})"
        )
