"""Hierarchical span tracing for the metered PLDS stack.

The paper's cost claims are *per phase* — levelwise rises (Algorithm 2),
desaturation cascades (Algorithm 3), level-structure rebuilds
(Section 5.9) — but the metering substrate only surfaces scalar
``(work, depth)`` totals.  This module adds **spans**: named, nested
windows over a computation, each capturing

- the metered work/depth accumulated inside the window, read through
  :meth:`~repro.parallel.engine.WorkDepthTracker.snapshot` /
  :meth:`~repro.parallel.engine.WorkDepthTracker.delta` (so span costs
  are in exactly the currency the cost model proves bounds in);
- wall-clock time (``time.perf_counter``);
- free-form attributes (``level=7``, ``attempt=2``, ...).

Because spans of one tracker nest sequentially at the tracker's root
frame, the tree reconciles *exactly*: a parent span's (work, depth)
delta equals its own ("self") cost plus the sum of its children's
deltas, with integer equality — see :func:`self_cost` and
``docs/observability.md``.

Zero overhead when disabled
---------------------------
Mirrors the :mod:`repro.faults` hook pattern: the installed tracer is
the module global :data:`ACTIVE`, ``None`` by default, and every
instrumented site reduces to one module-global load plus a branch —
per *phase*, never per vertex or per edge.  Hot loops hoist the load
once (``tracer = _tracing.ACTIVE``) exactly like the fault plans do.

Instrumented sites use the explicit :meth:`Tracer.begin` /
:meth:`Tracer.end` pair (no context-manager overhead in hot loops); an
exception that escapes a site leaves its span open until an enclosing
:meth:`Tracer.end` — which unwinds and closes every deeper span — or
:meth:`Tracer.finish` runs.  Non-hot call sites use the
:meth:`Tracer.span` context manager, which is exception-safe on its
own.

Example
-------
>>> from repro.obs import tracing
>>> from repro.parallel.engine import WorkDepthTracker
>>> t = WorkDepthTracker()
>>> with tracing.tracing() as tracer:
...     with tracer.span("outer", t):
...         t.add(work=5, depth=2)
...         with tracer.span("inner", t, level=3):
...             t.add(work=7, depth=1)
>>> root = tracer.roots[0]
>>> (root.work, root.children[0].work, self_cost(root))
(12, 7, (5, 1))
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "ACTIVE",
    "install",
    "clear",
    "tracing",
    "iter_spans",
    "self_cost",
    "phase_totals",
]


class Span:
    """One named window of a traced computation.

    ``work`` / ``depth`` are the metered deltas of the span's tracker
    over the window (0 when the span carries no tracker);
    ``wall_seconds`` is elapsed wall time; ``children`` are the spans
    that opened and closed while this one was open.  ``error`` holds an
    exception type name when the span was closed by an unwinding
    :meth:`Tracer.end` or an exception inside :meth:`Tracer.span`.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_s",
        "wall_seconds",
        "work",
        "depth",
        "error",
        "children",
        "_tracker",
        "_start_cost",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict[str, Any],
        tracker: Any,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_s = time.perf_counter()
        self.wall_seconds = 0.0
        self.work = 0
        self.depth = 0
        self.error: str | None = None
        self.children: list["Span"] = []
        self._tracker = tracker
        self._start_cost = None if tracker is None else tracker.snapshot()

    def to_dict(self) -> dict[str, Any]:
        """Recursive JSON-serializable view of the span subtree."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "wall_seconds": self.wall_seconds,
            "work": self.work,
            "depth": self.depth,
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, work={self.work}, depth={self.depth}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects a forest of :class:`Span` trees from one traced run."""

    __slots__ = ("roots", "_stack", "_next_id")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- explicit begin/end (hot-loop API) -----------------------------

    def begin(self, name: str, tracker: Any = None, **attrs: Any) -> Span:
        """Open a span; costs charged to ``tracker`` until :meth:`end`."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            attrs,
            tracker,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def end(self, span: Span | None = None, error: str | None = None) -> Span:
        """Close ``span`` (default: the innermost open one).

        Any spans opened inside ``span`` and still open — e.g. because
        an injected fault aborted a cascade mid-level — are unwound and
        closed first, so the stack stays consistent across exceptions.
        """
        if not self._stack:
            raise RuntimeError("no span is open")
        if span is None:
            span = self._stack[-1]
        elif span not in self._stack:
            raise RuntimeError(f"span {span.name!r} is not open")
        while self._stack:
            top = self._stack.pop()
            self._close(top, error)
            if top is span:
                break
        return span

    def _close(self, span: Span, error: str | None) -> None:
        span.wall_seconds = time.perf_counter() - span.start_s
        tracker = span._tracker
        if tracker is not None:
            delta = tracker.delta(span._start_cost)
            span.work = delta.work
            span.depth = delta.depth
        if error is not None:
            span.error = error
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def finish(self) -> list[Span]:
        """Close every still-open span and return the root forest."""
        while self._stack:
            self.end()
        return self.roots

    # -- context-manager API (non-hot call sites) ----------------------

    @contextmanager
    def span(self, name: str, tracker: Any = None, **attrs: Any) -> Iterator[Span]:
        """Exception-safe span scope; records the exception type name."""
        sp = self.begin(name, tracker, **attrs)
        try:
            yield sp
        except BaseException as exc:
            self.end(sp, error=type(exc).__name__)
            raise
        self.end(sp)


#: The installed tracer, consulted by every instrumented site; ``None``
#: (the default) compiles each site down to a load-and-branch no-op.
ACTIVE: Tracer | None = None


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the active tracer for all instrumented sites."""
    global ACTIVE
    ACTIVE = tracer


def clear() -> None:
    """Deactivate tracing; all sites become no-ops again."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope a tracer to a ``with`` block, restoring the previous one."""
    if tracer is None:
        tracer = Tracer()
    previous = ACTIVE
    install(tracer)
    try:
        yield tracer
    finally:
        tracer.finish()
        if previous is None:
            clear()
        else:
            install(previous)


# ----------------------------------------------------------------------
# Span-tree analysis
# ----------------------------------------------------------------------


def iter_spans(roots: list[Span]) -> Iterator[Span]:
    """Every span of the forest, parents before children."""
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def self_cost(span: Span) -> tuple[int, int]:
    """(work, depth) attributed to ``span`` itself, children excluded.

    Spans over one tracker compose sequentially at the tracker's root
    frame, so ``span.work == self + sum(child.work)`` holds with exact
    integer equality (same for depth) — the reconciliation invariant
    the acceptance tests pin.
    """
    return (
        span.work - sum(c.work for c in span.children),
        span.depth - sum(c.depth for c in span.children),
    )


def phase_totals(roots: list[Span]) -> dict[str, dict[str, float]]:
    """Aggregate *inclusive* cost per span name.

    Returns ``{name: {count, work, depth, wall_s}}`` — the per-phase
    attribution table ``repro trace`` prints and the perf suite attaches
    to its entries.  Work/depth are inclusive of child spans, so
    compare like-named phases across runs rather than summing across
    names (use :func:`self_cost` for an exclusive decomposition).
    """
    totals: dict[str, dict[str, float]] = {}
    for span in iter_spans(roots):
        t = totals.get(span.name)
        if t is None:
            t = totals[span.name] = {
                "count": 0,
                "work": 0,
                "depth": 0,
                "wall_s": 0.0,
            }
        t["count"] += 1
        t["work"] += span.work
        t["depth"] += span.depth
        t["wall_s"] += span.wall_seconds
    for t in totals.values():
        t["wall_s"] = round(t["wall_s"], 6)
    return totals
