"""Process-local metrics registry: counters, gauges, histograms.

The serving and chaos layers accumulate health signals — batches
applied, retries, rollbacks, failed audits, faultpoint fires, level
occupancy, cascade queue lengths — into one
:class:`MetricsRegistry`, dumpable as Prometheus text exposition
(:meth:`MetricsRegistry.to_prometheus`) or JSON
(:meth:`MetricsRegistry.to_json_dict`).  ``repro metrics`` drives a
workload with a registry installed and prints either format; the chaos
and bench reports embed the JSON dump.

Zero overhead when disabled
---------------------------
Identical contract to :mod:`repro.faults` and
:mod:`repro.obs.tracing`: the installed registry is the module global
:data:`ACTIVE` (``None`` by default) and every instrumented site is one
module-global load plus a branch, hoisted to a local in hot loops.  The
:mod:`repro.parallel.engine` layer stays import-clean — :func:`install`
pushes a hook into the engine via
:func:`repro.parallel.engine.set_obs_hook` instead of being imported
there.

Metric naming
-------------
Dotted lowercase names (``service.rollbacks``, ``plds.rise_levels``);
the Prometheus dump prefixes ``repro_``, maps dots to underscores, and
appends ``_total`` to counters — ``service.rollbacks`` becomes
``repro_service_rollbacks_total``.  See ``docs/observability.md`` for
the full name table.
"""

from __future__ import annotations

import json
import re
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from ..parallel import engine as _engine

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "ACTIVE",
    "install",
    "clear",
    "collecting",
    "record_level_structure",
    "parse_prometheus",
]

#: Histogram bucket upper bounds (a +Inf bucket is always appended).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
)

#: A (name, sorted-labels) series key.
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Histogram:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Counters, gauges, and histograms for one observed run."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self._buckets = tuple(buckets)
        self._counters: dict[_Key, float] = {}
        self._gauges: dict[_Key, float] = {}
        self._histograms: dict[_Key, _Histogram] = {}

    # -- recording -----------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` (default 1) to a monotone counter."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time gauge to ``value``."""
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a histogram."""
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram(self._buckets)
        hist.observe(value)

    def engine_hook(self, site: str) -> None:
        """Per-parfor hook the engine layer calls when installed."""
        self.inc(site + ".calls")

    # -- reading (tests and reports) -----------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        return self._gauges.get(_key(name, labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        hist = self._histograms.get(_key(name, labels))
        return hist.count if hist is not None else 0

    def counter_series(
        self, name: str
    ) -> dict[tuple[tuple[str, str], ...], float]:
        """All label combinations of counter ``name``, sorted by labels.

        The per-tenant accounting views (``service.admission{tenant,
        kind, outcome}``) enumerate through this: the soak artifact
        cross-checks every rejection against the admission controller's
        own outcome table without knowing tenant names in advance.
        """
        return {
            labels: value
            for (n, labels), value in sorted(self._counters.items())
            if n == name
        }

    def flat_series(
        self,
    ) -> tuple[dict[str, float], dict[str, float], dict[str, tuple[int, float]]]:
        """Every live series flattened to ``name{k=v,...}`` keys.

        Returns ``(counters, gauges, histograms)`` where histogram
        series map to ``(count, sum)``.  This is the read surface of
        the :class:`repro.obs.timeline.Timeline` sampler and the
        flight recorder's metric-delta capture — a fresh snapshot each
        call, safe to retain as a delta baseline.
        """

        def flat(key: _Key) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        counters = {flat(k): v for k, v in self._counters.items()}
        gauges = {flat(k): v for k, v in self._gauges.items()}
        hists = {
            flat(k): (h.count, h.sum) for k, h in self._histograms.items()
        }
        return counters, gauges, hists

    # -- dumps ---------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """JSON dump: one entry per series, sorted for reproducibility."""

        def series(table: Mapping[_Key, float]) -> list[dict[str, Any]]:
            return [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(table.items())
            ]

        return {
            "format": 1,
            "counters": series(self._counters),
            "gauges": series(self._gauges),
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": {
                        _bound_str(b): c
                        for b, c in zip(
                            list(hist.buckets) + [float("inf")], hist.counts
                        )
                    },
                    "sum": hist.sum,
                    "count": hist.count,
                }
                for (name, labels), hist in sorted(self._histograms.items())
            ],
        }

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []

        def emit(
            table: Mapping[_Key, float], kind: str, suffix: str = ""
        ) -> None:
            typed: set[str] = set()
            for (name, labels), value in sorted(table.items()):
                metric = prefix + _sanitize(name) + suffix
                if metric not in typed:
                    lines.append(f"# TYPE {metric} {kind}")
                    typed.add(metric)
                lines.append(f"{metric}{_label_str(labels)} {_num(value)}")

        emit(self._counters, "counter", "_total")
        emit(self._gauges, "gauge")
        typed: set[str] = set()
        for (name, labels), hist in sorted(self._histograms.items()):
            metric = prefix + _sanitize(name)
            if metric not in typed:
                lines.append(f"# TYPE {metric} histogram")
                typed.add(metric)
            cumulative = 0
            for bound, count in zip(
                list(hist.buckets) + [float("inf")], hist.counts
            ):
                cumulative += count
                le = (("le", _bound_str(bound)),) + labels
                lines.append(f"{metric}_bucket{_label_str(le)} {cumulative}")
            lines.append(f"{metric}_sum{_label_str(labels)} {_num(hist.sum)}")
            lines.append(f"{metric}_count{_label_str(labels)} {hist.count}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _bound_str(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


def _num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


#: The installed registry, consulted by every instrumented site;
#: ``None`` (the default) compiles each site down to a load-and-branch.
ACTIVE: MetricsRegistry | None = None


def install(registry: MetricsRegistry) -> None:
    """Make ``registry`` active and hook the engine layer into it."""
    global ACTIVE
    ACTIVE = registry
    _engine.set_obs_hook(registry.engine_hook)


def clear() -> None:
    """Deactivate metrics collection; all sites become no-ops again."""
    global ACTIVE
    ACTIVE = None
    _engine.set_obs_hook(None)


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scope a registry to a ``with`` block, restoring the previous one."""
    if registry is None:
        registry = MetricsRegistry()
    previous = ACTIVE
    install(registry)
    try:
        yield registry
    finally:
        if previous is None:
            clear()
        else:
            install(previous)


def record_level_structure(registry: MetricsRegistry, structure: Any) -> None:
    """Gauge a level structure's occupancy into ``registry``.

    Duck-typed against the PLDS family (``level_histogram`` /
    ``group_histogram`` / ``num_levels``); engines without a level
    structure contribute only the generic size gauges.  O(n), so this
    is called at observation points (end of a ``repro metrics`` run,
    per-trial in chaos reports), not per batch.
    """
    n = getattr(structure, "num_vertices", None)
    if n is not None:
        registry.gauge("structure.num_vertices", n)
    m = getattr(structure, "num_edges", None)
    if m is not None:
        registry.gauge("structure.num_edges", m)
    level_histogram = getattr(structure, "level_histogram", None)
    if level_histogram is None:
        return
    for level, count in sorted(level_histogram().items()):
        registry.gauge("plds.level_occupancy", count, level=level)
    for group, count in sorted(structure.group_histogram().items()):
        registry.gauge("plds.group_size", count, group=group)
    registry.gauge("plds.num_levels", structure.num_levels)
    registry.gauge("plds.levels_per_group", structure.levels_per_group)


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse a Prometheus text dump back into ``{(name, labels): value}``.

    Supports exactly the subset :meth:`MetricsRegistry.to_prometheus`
    emits; raises ``ValueError`` on malformed lines.  Used by the CI
    obs-smoke job and the tests to validate that dumps stay parseable.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    line_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
    )
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = line_re.match(line)
        if match is None:
            raise ValueError(f"malformed metrics line {lineno}: {line!r}")
        name, label_blob, value = match.groups()
        labels: tuple[tuple[str, str], ...] = ()
        if label_blob:
            labels = tuple(label_re.findall(label_blob))
        samples[(name, labels)] = float(value.replace("+Inf", "inf"))
    return samples


def metrics_json(registry: MetricsRegistry) -> str:
    """The registry's JSON dump as a string (stable key order)."""
    return json.dumps(registry.to_json_dict(), indent=1, sort_keys=True)
