"""Declarative SLOs over soak/chaos artifacts and their timelines.

The soak harness (:mod:`repro.traffic.soak`) emits an artifact full of
health numbers — staleness, latency percentiles, admission outcomes,
degraded time — but deciding *pass or fail* was ad-hoc inline logic in
CI.  This module makes the judgement declarative and deterministic:

- :class:`SLORule` — one named objective: a rule *kind* (what to
  measure), a ``threshold``, and optionally a sliding ``window`` (in
  timeline samples) with a ``burn_rate`` tolerance;
- :func:`evaluate_artifact` — apply rules to an artifact dict,
  producing an :class:`SLOReport` of per-rule :class:`SLOVerdict`\\ s;
- :func:`gate_report` — raise ``ValueError`` naming the first breached
  rule and its window, which the CLI maps to exit code 2 with a
  ``file:line`` site (``repro slo --gate``).

Rule kinds
----------
``max_staleness``
    Worst read staleness anywhere in the artifact (consistency block
    and per-tenant reads).  Whole-run.
``p99_latency``
    Worst per-tenant p99 simulated write latency.  Whole-run.
``rejection_rate``
    ``(rejected + shed) / write events``.  Whole-run from ``totals``;
    with ``window > 0`` and a timeline, *additionally* evaluated over
    every sliding window of admission-counter deltas — a transient
    rejection storm breaches even when the whole-run average is fine.
``consistency``
    Probed reads that failed the committed-prefix check
    (``reads_probed - reads_consistent``).  Whole-run.
``degraded_fraction``
    Fraction of the simulated horizon spent degraded.  Whole-run.
``counter_burn``
    Budget burn for one counter ``series`` (flattened-key prefix, see
    :func:`repro.obs.timeline.series_key`): ``threshold`` is the
    per-window budget and ``burn_rate`` scales the allowance.
    Requires a timeline; without one the rule reports "no timeline"
    and passes vacuously.

Windowed evaluation breaches when a window's observation exceeds
``threshold * burn_rate``; whole-run evaluation uses the plain
``threshold``.  Everything is computed from artifact JSON — replaying
the same seed yields the same report, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from . import recorder as _recorder
from . import timeline as _timeline

__all__ = [
    "RULE_KINDS",
    "SLORule",
    "SLOVerdict",
    "SLOReport",
    "DEFAULT_RULES",
    "evaluate_artifact",
    "gate_report",
]

RULE_KINDS: tuple[str, ...] = (
    "max_staleness",
    "p99_latency",
    "rejection_rate",
    "consistency",
    "degraded_fraction",
    "counter_burn",
)


@dataclass(frozen=True)
class SLORule:
    """One named service-level objective."""

    name: str
    kind: str
    threshold: float
    window: int = 0
    burn_rate: float = 1.0
    series: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"unknown SLO rule kind {self.kind!r}")
        if self.window < 0:
            raise ValueError("window must be >= 0")
        if self.burn_rate <= 0:
            raise ValueError("burn_rate must be > 0")
        if self.kind == "counter_burn" and not self.series:
            raise ValueError("counter_burn rules need a series prefix")
        if self.kind == "counter_burn" and self.window < 1:
            raise ValueError("counter_burn rules need a window >= 1")


@dataclass(frozen=True)
class SLOVerdict:
    """One rule's outcome against one artifact."""

    rule: str
    kind: str
    ok: bool
    observed: float | None
    allowed: float
    window: str
    detail: str = ""

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "ok": self.ok,
            "observed": self.observed,
            "allowed": self.allowed,
            "window": self.window,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SLOReport:
    """Every verdict for one artifact; breaches first when sorting."""

    label: str
    verdicts: tuple[SLOVerdict, ...]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def breaches(self) -> tuple[SLOVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.ok)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "format": 1,
            "kind": "slo",
            "label": self.label,
            "ok": self.ok,
            "breaches": len(self.breaches),
            "verdicts": [v.to_json_dict() for v in self.verdicts],
        }


#: Defaults sized for the chaos-armed CI soak (stalls, faults, and
#: backpressure are *expected*; the rules bound how bad they may get).
#: Calibration points, from the CI config (3 tenants, horizon 1200,
#: seed 11, 4 shards, fault_rate 0.08, stall [300, 600) depth 4000):
#: staleness peaks at the designed one-in-flight-batch bound; p99
#: simulated write latency reaches ~8.9k under the stall; shedding is
#: *the mechanism* there, so whole-run refusal runs ~0.96; the worst
#: 16-sample rollback burst is 3.  Thresholds sit 2-10x above the
#: expected peaks — loose enough that designed-in degradation passes,
#: tight enough that an unbounded regression still trips.
DEFAULT_RULES: tuple[SLORule, ...] = (
    SLORule("read-staleness", "max_staleness", threshold=1),
    SLORule("write-p99", "p99_latency", threshold=25000.0),
    SLORule("rejection-rate", "rejection_rate", threshold=0.98, window=16,
            burn_rate=1.05),
    SLORule("consistency", "consistency", threshold=0),
    SLORule("degraded-fraction", "degraded_fraction", threshold=0.5),
    SLORule(
        "rollback-burn",
        "counter_burn",
        threshold=20,
        window=16,
        burn_rate=1.5,
        series="service.rollbacks",
    ),
)


def _samples(artifact: Mapping[str, Any]) -> list[dict[str, Any]]:
    timeline = artifact.get("timeline")
    if not isinstance(timeline, Mapping):
        return []
    samples = timeline.get("samples", [])
    return samples if isinstance(samples, list) else []


def _window_label(samples: list[dict[str, Any]], lo: int, hi: int) -> str:
    return (
        f"samples[{lo}:{hi}] tick {samples[lo]['tick']:g}"
        f"..{samples[hi - 1]['tick']:g}"
    )


def _series_delta(
    sample: Mapping[str, Any], match: "Any"
) -> float:
    total = 0.0
    for key, delta in sample.get("counters", {}).items():
        if match(key):
            total += delta
    return total


def _admission_match(outcomes: tuple[str, ...]) -> "Any":
    def match(key: str) -> bool:
        name, labels = _timeline.split_series_key(key)
        if name != "service.admission":
            return False
        table = dict(labels)
        return table.get("kind") == "write" and table.get("outcome") in outcomes

    return match


def _eval_max_staleness(artifact: Mapping[str, Any]) -> float:
    worst = float(
        artifact.get("consistency", {}).get("max_staleness", 0) or 0
    )
    for tenant in artifact.get("tenants", {}).values():
        worst = max(worst, float(tenant["reads"].get("max_staleness", 0) or 0))
    return worst


def _eval_p99(artifact: Mapping[str, Any]) -> float | None:
    worst: float | None = None
    for tenant in artifact.get("tenants", {}).values():
        p99 = tenant["writes"].get("p99_latency")
        if p99 is not None and (worst is None or p99 > worst):
            worst = p99
    return worst


def _windowed_worst(
    samples: list[dict[str, Any]],
    window: int,
    numerator: "Any",
    denominator: "Any | None" = None,
) -> tuple[float | None, str]:
    """Worst sliding-window value of ``sum(numerator)[/sum(denominator)]``."""
    worst: float | None = None
    worst_label = ""
    if len(samples) < window:
        return None, ""
    for lo in range(0, len(samples) - window + 1):
        hi = lo + window
        num = sum(_series_delta(samples[i], numerator) for i in range(lo, hi))
        if denominator is not None:
            den = sum(
                _series_delta(samples[i], denominator) for i in range(lo, hi)
            )
            if den <= 0:
                continue
            value = num / den
        else:
            value = num
        if worst is None or value > worst:
            worst = value
            worst_label = _window_label(samples, lo, hi)
    return worst, worst_label


def _evaluate_rule(
    rule: SLORule, artifact: Mapping[str, Any]
) -> SLOVerdict:
    samples = _samples(artifact)
    allowed = rule.threshold
    window = "whole-run"
    detail = ""
    observed: float | None
    if rule.kind == "max_staleness":
        observed = _eval_max_staleness(artifact)
    elif rule.kind == "p99_latency":
        observed = _eval_p99(artifact)
        if observed is None:
            detail = "no write latencies"
    elif rule.kind == "consistency":
        block = artifact.get("consistency", {})
        observed = float(
            block.get("reads_probed", 0) - block.get("reads_consistent", 0)
        )
        detail = f"{block.get('reads_probed', 0)} reads probed"
    elif rule.kind == "degraded_fraction":
        horizon = float(artifact.get("clock", {}).get("end", 0) or 0)
        time_degraded = float(artifact.get("degraded", {}).get("time", 0) or 0)
        observed = time_degraded / horizon if horizon > 0 else 0.0
    elif rule.kind == "rejection_rate":
        totals = artifact.get("totals", {})
        events = totals.get("write_events", 0)
        refused = totals.get("rejected", 0) + totals.get("shed", 0)
        observed = refused / events if events else 0.0
        detail = f"{refused}/{events} writes refused"
        if rule.window > 0 and samples:
            worst, label = _windowed_worst(
                samples,
                rule.window,
                _admission_match(("rejected", "shed")),
                _admission_match(("admitted", "rejected", "shed")),
            )
            if worst is not None and worst > rule.threshold * rule.burn_rate:
                observed, window = worst, label
                allowed = rule.threshold * rule.burn_rate
    else:  # counter_burn
        if not samples:
            return SLOVerdict(
                rule.name, rule.kind, True, None, allowed,
                window, "no timeline in artifact",
            )
        assert rule.series is not None
        prefix = rule.series
        worst, label = _windowed_worst(
            samples, rule.window, lambda key: key.startswith(prefix)
        )
        allowed = rule.threshold * rule.burn_rate
        if worst is None:
            return SLOVerdict(
                rule.name, rule.kind, True, None, allowed, window,
                f"timeline shorter than window ({len(samples)} samples)",
            )
        observed, window = worst, label
        detail = f"budget {rule.threshold:g}/window, burn_rate {rule.burn_rate:g}"
    ok = observed is None or observed <= allowed
    return SLOVerdict(rule.name, rule.kind, ok, observed, allowed, window, detail)


def evaluate_artifact(
    artifact: Mapping[str, Any],
    rules: Iterable[SLORule] = DEFAULT_RULES,
) -> SLOReport:
    """Apply ``rules`` to one soak/chaos artifact dict.

    Breached rules also trip the installed flight recorder's ``slo``
    trigger (if any), so an SLO violation captures its surrounding
    context exactly like a fault or a degradation does.
    """
    verdicts = tuple(_evaluate_rule(rule, artifact) for rule in rules)
    report = SLOReport(
        label=str(artifact.get("label", "artifact")), verdicts=verdicts
    )
    rec = _recorder.ACTIVE
    if rec is not None:
        for verdict in report.breaches:
            rec.trip(
                "slo",
                rule=verdict.rule,
                observed=verdict.observed,
                allowed=verdict.allowed,
                window=verdict.window,
            )
    return report


def gate_report(report: SLOReport) -> None:
    """Raise ``ValueError`` naming the first breach; no-op when ok."""
    if report.ok:
        return
    breach = report.breaches[0]
    observed = "n/a" if breach.observed is None else f"{breach.observed:g}"
    raise ValueError(
        f"SLO breach: {breach.rule} over {breach.window}: "
        f"observed {observed} > allowed {breach.allowed:g}"
        + (f" [{len(report.breaches)} rule(s) breached]"
           if len(report.breaches) > 1 else "")
    )
