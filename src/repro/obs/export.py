"""Exporters for span forests: Chrome ``trace_event`` JSON and JSONL.

Chrome trace format
-------------------
:func:`to_chrome_trace` emits the subset of the Trace Event Format that
Perfetto and ``chrome://tracing`` consume: complete events
(``"ph": "X"``) with microsecond ``ts``/``dur``, one ``tid`` per span
depth so nesting renders as a flame graph, and the metered work/depth
plus user attributes in ``args``.  Timestamps are rebased to the
earliest span start so the profile opens at t=0.

JSONL format
------------
:func:`to_jsonl` emits one JSON object per span (pre-order, parents
before children) with ``span_id``/``parent_id`` links and no nested
``children`` arrays — suitable for line-oriented tooling (``jq``,
``grep``) and for streaming appends.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from .tracing import Span, iter_spans

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "timeline_counter_events",
]


def timeline_counter_events(
    samples: "Iterable[Mapping[str, Any]]", pid: int = 1
) -> list[dict[str, Any]]:
    """Timeline samples as Chrome ``"C"`` (counter) trace events.

    Perfetto renders each distinct event ``name`` as a counter track;
    emitting the *cumulative* value per series at each sample's tick
    (microseconds, tick interpreted as simulated seconds) draws the
    metric's trajectory alongside the span flame graph.  Gauges are
    emitted at their sampled value.  Deterministic: series sorted per
    sample, ticks already wall-clock-free.
    """
    events: list[dict[str, Any]] = []
    running: dict[str, float] = {}
    for entry in samples:
        ts = round(float(entry["tick"]) * 1e6, 3)
        for key in sorted(entry.get("counters", {})):
            running[key] = running.get(key, 0) + entry["counters"][key]
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {"value": running[key]},
                }
            )
        for key in sorted(entry.get("gauges", {})):
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {"value": entry["gauges"][key]},
                }
            )
    return events


def to_chrome_trace(
    roots: Iterable[Span],
    process_name: str = "repro",
    timeline: "Iterable[Mapping[str, Any]] | None" = None,
) -> dict[str, Any]:
    """Span forest (plus optional timeline counters) as Chrome JSON."""
    roots = list(roots)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    if timeline is not None:
        events.extend(timeline_counter_events(timeline))
    if not roots:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    epoch = min(span.start_s for span in roots)

    def emit(span: Span, tid: int) -> None:
        args: dict[str, Any] = {"work": span.work, "depth": span.depth}
        args.update(span.attrs)
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start_s - epoch) * 1e6, 3),
                "dur": round(span.wall_seconds * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
        for child in span.children:
            emit(child, tid + 1)

    for root in roots:
        emit(root, 1)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    roots: Iterable[Span],
    process_name: str = "repro",
    timeline: "Iterable[Mapping[str, Any]] | None" = None,
) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            to_chrome_trace(roots, process_name, timeline=timeline),
            fh,
            indent=1,
        )
        fh.write("\n")


def to_jsonl(roots: Iterable[Span]) -> str:
    """Span forest as newline-delimited JSON, one flat object per span."""
    lines = []
    for span in iter_spans(list(roots)):
        record = span.to_dict()
        record["num_children"] = len(record.pop("children"))
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, roots: Iterable[Span]) -> None:
    """Write :func:`to_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(roots))
