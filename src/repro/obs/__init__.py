"""Observability for the metered PLDS stack: tracing, metrics, exporters.

Six leaf modules, all zero-overhead when not installed (module-global
``ACTIVE`` check per instrumentation point, the :mod:`repro.faults`
pattern):

- :mod:`repro.obs.tracing` — hierarchical spans capturing metered
  work/depth deltas plus wall time per phase.
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with Prometheus-text and JSON dumps.
- :mod:`repro.obs.timeline` — delta-encoded registry snapshots on
  batch/tick boundaries: the ``timeline`` section of soak/chaos
  artifacts.
- :mod:`repro.obs.recorder` — bounded ring-buffer flight recorder
  dumping ``FLIGHT_<label>.json`` when armed triggers fire.
- :mod:`repro.obs.slo` — declarative SLO rules evaluated over
  artifacts and their timelines (``repro slo``).
- :mod:`repro.obs.export` — Chrome ``trace_event`` (Perfetto) and JSONL
  span exporters, plus timeline counter events.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from . import export, metrics, recorder, slo, timeline, tracing
from .export import (
    timeline_counter_events,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    MetricsRegistry,
    collecting,
    parse_prometheus,
    record_level_structure,
)
from .recorder import TRIGGERS, FlightRecorder
from .slo import (
    DEFAULT_RULES,
    SLOReport,
    SLORule,
    SLOVerdict,
    evaluate_artifact,
    gate_report,
)
from .timeline import Timeline, counter_totals, gauge_track, series_key
from .tracing import Span, Tracer, iter_spans, phase_totals, self_cost

# NOTE: the submodules are deliberately NOT shadowed by same-named
# re-exports — ``repro.obs.tracing`` must stay the module (hot paths do
# ``from ..obs import tracing as _tracing`` and read ``_tracing.ACTIVE``;
# likewise ``timeline`` and ``recorder``).  The ``tracing()`` /
# ``collecting()`` / ``sampling()`` / ``recording()`` context managers
# live one level down: ``from repro.obs.tracing import tracing``.

__all__ = [
    "export",
    "metrics",
    "recorder",
    "slo",
    "timeline",
    "tracing",
    "Span",
    "Tracer",
    "iter_spans",
    "self_cost",
    "phase_totals",
    "MetricsRegistry",
    "collecting",
    "parse_prometheus",
    "record_level_structure",
    "Timeline",
    "counter_totals",
    "gauge_track",
    "series_key",
    "FlightRecorder",
    "TRIGGERS",
    "SLORule",
    "SLOVerdict",
    "SLOReport",
    "DEFAULT_RULES",
    "evaluate_artifact",
    "gate_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "timeline_counter_events",
]
