"""Observability for the metered PLDS stack: tracing, metrics, exporters.

Three leaf modules, all zero-overhead when not installed (module-global
``ACTIVE`` check per instrumentation point, the :mod:`repro.faults`
pattern):

- :mod:`repro.obs.tracing` — hierarchical spans capturing metered
  work/depth deltas plus wall time per phase.
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with Prometheus-text and JSON dumps.
- :mod:`repro.obs.export` — Chrome ``trace_event`` (Perfetto) and JSONL
  span exporters.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from . import export, metrics, tracing
from .export import to_chrome_trace, to_jsonl, write_chrome_trace, write_jsonl
from .metrics import (
    MetricsRegistry,
    collecting,
    parse_prometheus,
    record_level_structure,
)
from .tracing import Span, Tracer, iter_spans, phase_totals, self_cost

# NOTE: the submodules are deliberately NOT shadowed by same-named
# re-exports — ``repro.obs.tracing`` must stay the module (hot paths do
# ``from ..obs import tracing as _tracing`` and read ``_tracing.ACTIVE``).
# The ``tracing()`` / ``collecting()`` context managers live one level
# down: ``from repro.obs.tracing import tracing``.

__all__ = [
    "export",
    "metrics",
    "tracing",
    "Span",
    "Tracer",
    "iter_spans",
    "self_cost",
    "phase_totals",
    "MetricsRegistry",
    "collecting",
    "parse_prometheus",
    "record_level_structure",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
]
