"""Deterministic metric time-series: delta-encoded registry snapshots.

End-of-run dumps (``repro metrics``, the chaos report's ``metrics``
section) answer *what happened in total*; a :class:`Timeline` answers
*when*.  It samples the active :class:`~repro.obs.metrics.MetricsRegistry`
on batch/tick boundaries — :class:`~repro.service.CoreService` samples
after every committed batch, :class:`~repro.traffic.soak.SoakRunner`
on a simulated-time grid — and stores each sample **delta-encoded**:

- counters: the increase since the previous sample (series that did not
  move are omitted entirely);
- gauges: the current value, recorded only when it changed;
- histograms: the count/sum increase since the previous sample.

Samples are keyed by a *tick* in simulated currency (batch serial or
simulated seconds) and carry **no wall-clock fields**, so the
``timeline`` section of a SOAK/CHAOS artifact is bit-identical across
same-seed replays.  Series are flattened to ``name{k=v,...}`` strings
(labels sorted) — the grep-able spelling ``repro dash`` and the SLO
engine consume.

Zero overhead when disabled
---------------------------
Identical contract to :mod:`repro.faults` / :mod:`repro.obs.metrics`:
the installed timeline is the module global :data:`ACTIVE` (``None`` by
default) and every sampling site is one module-global load plus a
branch, per batch/tick — never per vertex or per edge.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from . import metrics as _metrics

__all__ = [
    "Timeline",
    "series_key",
    "split_series_key",
    "counter_totals",
    "gauge_track",
    "ACTIVE",
    "install",
    "clear",
    "sampling",
]


def series_key(name: str, labels: tuple[tuple[str, str], ...] = ()) -> str:
    """Flatten ``(name, sorted labels)`` to ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Inverse of :func:`series_key` (exactly the emitted subset)."""
    if not key.endswith("}"):
        return key, ()
    name, _, blob = key[:-1].partition("{")
    if not blob:
        return name, ()
    labels = []
    for part in blob.split(","):
        k, sep, v = part.partition("=")
        if not sep:
            raise ValueError(f"malformed series key {key!r}")
        labels.append((k, v))
    return name, tuple(labels)


class Timeline:
    """A sequence of delta-encoded registry samples on tick boundaries.

    ``registry=None`` (the default) reads whatever registry is installed
    in :data:`repro.obs.metrics.ACTIVE` at each :meth:`sample` call, so
    one ``Timeline`` can span nested ``collecting()`` scopes; pass a
    registry explicitly to pin the source.  ``max_samples`` bounds
    memory for very long runs — the oldest samples are dropped (counted
    in :attr:`dropped`), deterministically.
    """

    def __init__(
        self,
        registry: "_metrics.MetricsRegistry | None" = None,
        max_samples: int | None = None,
    ) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._registry = registry
        self.max_samples = max_samples
        self.samples: list[dict[str, Any]] = []
        self.dropped = 0
        self._last_counters: dict[str, float] = {}
        self._last_gauges: dict[str, float] = {}
        self._last_hist: dict[str, tuple[int, float]] = {}

    def __len__(self) -> int:
        return len(self.samples)

    def sample(self, tick: float, kind: str = "tick") -> dict[str, Any] | None:
        """Snapshot the registry as one delta-encoded sample.

        ``tick`` must be in a simulated currency (batch serial,
        simulated seconds) — never wall clock.  Returns the appended
        sample, or ``None`` when no registry is collecting.
        """
        registry = (
            self._registry if self._registry is not None else _metrics.ACTIVE
        )
        if registry is None:
            return None
        counters, gauges, hists = registry.flat_series()
        entry: dict[str, Any] = {"tick": tick, "kind": kind}
        c_delta: dict[str, float] = {}
        for key, value in counters.items():
            delta = value - self._last_counters.get(key, 0)
            if delta:
                c_delta[key] = delta
        g_delta: dict[str, float] = {}
        for key, value in gauges.items():
            if self._last_gauges.get(key) != value:
                g_delta[key] = value
        h_delta: dict[str, dict[str, float]] = {}
        for key, (count, total) in hists.items():
            prev_count, prev_sum = self._last_hist.get(key, (0, 0.0))
            if count != prev_count:
                h_delta[key] = {
                    "count": count - prev_count,
                    "sum": round(total - prev_sum, 9),
                }
        if c_delta:
            entry["counters"] = c_delta
        if g_delta:
            entry["gauges"] = g_delta
        if h_delta:
            entry["histograms"] = h_delta
        self._last_counters = counters
        self._last_gauges = gauges
        self._last_hist = hists
        self.samples.append(entry)
        if self.max_samples is not None and len(self.samples) > self.max_samples:
            drop = len(self.samples) - self.max_samples
            del self.samples[:drop]
            self.dropped += drop
        return entry

    def to_json_dict(self) -> dict[str, Any]:
        """The ``timeline`` artifact section (JSON-ready, no wall clock)."""
        return {
            "format": 1,
            "dropped": self.dropped,
            "samples": [dict(s) for s in self.samples],
        }


def counter_totals(samples: "list[Mapping[str, Any]]") -> dict[str, float]:
    """Sum every counter delta across ``samples`` (per flattened key).

    The inverse check of delta encoding: totals over a full timeline
    equal the registry's end-of-run counter values for every series
    that existed at the first sample's baseline.
    """
    totals: dict[str, float] = {}
    for entry in samples:
        for key, delta in entry.get("counters", {}).items():
            totals[key] = totals.get(key, 0) + delta
    return totals


def gauge_track(
    samples: "list[Mapping[str, Any]]", key: str
) -> list[tuple[float, float]]:
    """The ``(tick, value)`` trajectory of one gauge series.

    Delta encoding only stores changes; this re-materializes the
    step function at every tick where the gauge moved.
    """
    track: list[tuple[float, float]] = []
    for entry in samples:
        gauges = entry.get("gauges", {})
        if key in gauges:
            track.append((entry["tick"], gauges[key]))
    return track


#: The installed timeline, consulted by the per-batch/per-tick sampling
#: sites; ``None`` (the default) compiles each down to a load-and-branch.
ACTIVE: Timeline | None = None


def install(timeline: Timeline) -> None:
    """Make ``timeline`` the active sampler for all sampling sites."""
    global ACTIVE
    ACTIVE = timeline


def clear() -> None:
    """Deactivate timeline sampling; all sites become no-ops again."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def sampling(timeline: Timeline | None = None) -> Iterator[Timeline]:
    """Scope a timeline to a ``with`` block, restoring the previous one."""
    if timeline is None:
        timeline = Timeline()
    previous = ACTIVE
    install(timeline)
    try:
        yield timeline
    finally:
        if previous is None:
            clear()
        else:
            install(previous)
