"""Flight recorder: a bounded ring of recent events, dumped on trigger.

Post-mortems of a chaos run or a soak want the moments *around* an
incident — the last few batches, rollbacks, stalls, and metric
movement before a faultpoint fired or the degradation ladder engaged —
not the whole run.  A :class:`FlightRecorder` keeps a bounded
ring-buffer of structured events fed by cheap ``note()`` calls at the
serving layer's cold paths, and when an **armed trigger** fires it
freezes the ring plus a metric delta and recent span summaries into a
dump, written as ``FLIGHT_<label>.json`` when an output directory is
configured.

Triggers (any subset can be armed; all by default):

- ``fault`` — an armed faultpoint fired (:meth:`repro.faults.FaultPlan.hit`);
- ``audit`` — a service invariant audit failed;
- ``degrade`` — the degradation ladder advanced a rung
  (``quarantine`` → ``rebuild`` → ``exactkcore``);
- ``backpressure`` — the admission controller engaged backpressure;
- ``slo`` — an SLO rule breached during evaluation
  (:func:`repro.obs.slo.evaluate_artifact`).

Determinism: events are sequenced by a monotone counter, metric deltas
come from the deterministic registry, and span summaries strip the
wall-clock fields (``start_s``, ``wall_seconds``) — a same-seed replay
produces byte-identical dumps.

Zero overhead when disabled
---------------------------
Identical contract to :mod:`repro.faults` / :mod:`repro.obs.metrics`:
the installed recorder is the module global :data:`ACTIVE` (``None``
by default) and every ``note``/``trip`` site is one module-global load
plus a branch on a cold path (per batch, per rollback, per state
transition) — never per vertex or per edge.
"""

from __future__ import annotations

import json
import os
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from . import metrics as _metrics
from . import tracing as _tracing

__all__ = [
    "TRIGGERS",
    "FlightRecorder",
    "ACTIVE",
    "install",
    "clear",
    "recording",
]

#: Every trigger a recorder can arm.
TRIGGERS: tuple[str, ...] = (
    "fault",
    "audit",
    "degrade",
    "backpressure",
    "slo",
)


def _span_summary(span: "_tracing.Span") -> dict[str, Any]:
    """A span's deterministic surface: no wall-clock fields."""
    return {
        "name": span.name,
        "work": span.work,
        "depth": span.depth,
        "error": span.error,
        "attrs": dict(span.attrs),
        "children": len(span.children),
    }


class FlightRecorder:
    """Ring-buffered event capture with trigger-armed artifact dumps.

    ``capacity`` bounds the ring (oldest events fall off); ``triggers``
    selects which trigger kinds produce dumps (unarmed triggers are
    still *noted* into the ring, they just don't dump); ``out_dir``
    enables ``FLIGHT_<label>.json`` files — with ``out_dir=None`` dumps
    only accumulate in :attr:`dumps`.
    """

    def __init__(
        self,
        capacity: int = 128,
        triggers: tuple[str, ...] = TRIGGERS,
        label: str = "flight",
        out_dir: str | None = None,
        span_limit: int = 8,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        unknown = set(triggers) - set(TRIGGERS)
        if unknown:
            raise ValueError(f"unknown triggers: {sorted(unknown)}")
        self.capacity = capacity
        self.armed = frozenset(triggers)
        self.label = label
        self.out_dir = out_dir
        self.span_limit = span_limit
        self.events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dumps: list[dict[str, Any]] = []
        self.dump_paths: list[str] = []
        self._seq = 0
        self._last_counters: dict[str, float] = {}

    # -- feeding the ring ---------------------------------------------

    def note(self, kind: str, **fields: Any) -> None:
        """Append one structured event to the ring (cheap, no dump)."""
        self._seq += 1
        event: dict[str, Any] = {"seq": self._seq, "kind": kind}
        event.update(fields)
        self.events.append(event)

    def trip(self, trigger: str, **fields: Any) -> dict[str, Any] | None:
        """Note a trigger event; dump the ring if ``trigger`` is armed.

        Returns the dump dict when one was produced, else ``None``.
        """
        self.note("trigger." + trigger, **fields)
        if trigger not in self.armed:
            return None
        return self._dump(trigger, fields)

    # -- dumping -------------------------------------------------------

    def _dump(self, trigger: str, detail: dict[str, Any]) -> dict[str, Any]:
        dump: dict[str, Any] = {
            "format": 1,
            "kind": "flight",
            "label": self.label,
            "sequence": len(self.dumps) + 1,
            "trigger": trigger,
            "detail": dict(detail),
            "events": [dict(event) for event in self.events],
            "metrics_delta": self._metrics_delta(),
            "spans": self._recent_spans(),
        }
        self.dumps.append(dump)
        if self.out_dir is not None:
            name = f"FLIGHT_{self.label}_{dump['sequence']:03d}_{trigger}.json"
            path = os.path.join(self.out_dir, name)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(dump, fh, indent=1, sort_keys=True)
                fh.write("\n")
            self.dump_paths.append(path)
        return dump

    def _metrics_delta(self) -> dict[str, float]:
        """Counter movement since the previous dump (or recorder birth)."""
        registry = _metrics.ACTIVE
        if registry is None:
            return {}
        counters, _, _ = registry.flat_series()
        delta = {
            key: value - self._last_counters.get(key, 0)
            for key, value in counters.items()
            if value != self._last_counters.get(key, 0)
        }
        self._last_counters = counters
        return delta

    def _recent_spans(self) -> list[dict[str, Any]]:
        """Summaries of the most recent *closed* root spans, if tracing."""
        tracer = _tracing.ACTIVE
        if tracer is None:
            return []
        roots = tracer.roots[-self.span_limit:]
        return [_span_summary(span) for span in roots]


#: The installed recorder, consulted by every note/trip site; ``None``
#: (the default) compiles each site down to a load-and-branch.
ACTIVE: FlightRecorder | None = None


def install(recorder: FlightRecorder) -> None:
    """Make ``recorder`` the active flight recorder for all sites."""
    global ACTIVE
    ACTIVE = recorder


def clear() -> None:
    """Deactivate flight recording; all sites become no-ops again."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def recording(
    recorder: FlightRecorder | None = None, **kwargs: Any
) -> Iterator[FlightRecorder]:
    """Scope a recorder to a ``with`` block, restoring the previous one."""
    if recorder is None:
        recorder = FlightRecorder(**kwargs)
    elif kwargs:
        raise ValueError("pass a recorder or keyword options, not both")
    previous = ACTIVE
    install(recorder)
    try:
        yield recorder
    finally:
        if previous is None:
            clear()
        else:
            install(previous)
