"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``datasets``
    Print the synthetic analog dataset inventory (Table 3 analog).
``kcore``
    Run one dynamic k-core algorithm over a dataset or edge-list file
    with an Ins/Del/Mix protocol; print per-batch cost and accuracy.
``compare``
    Run every algorithm side by side on one dataset/protocol.
``scalability``
    Simulated self-relative speedup curves (Figure 10 analog).
``static``
    Static exact vs approximate k-core comparison on one dataset.
``service``
    Drive a :class:`repro.service.CoreService` session over a dataset:
    per-batch telemetry (work, depth, wall, simulated ``T_p``), a
    mid-stream snapshot, and coreness queries.
``bench``
    Perf-regression suite: time the canonical workloads and write a
    ``BENCH_<label>.json`` trajectory point, optionally comparing
    against a previous one.
``trace``
    Run a small serving workload under the span tracer and export the
    span forest (Chrome ``trace_event`` or JSONL), printing the
    per-phase work/depth attribution table and checking that span
    costs reconcile exactly against the batch telemetry.
``metrics``
    Run the same workload under a metrics registry and dump every
    counter/gauge/histogram in Prometheus text or JSON form.
``soak``
    Chaos-armed multi-tenant soak: drive an admission-controlled
    service with a seeded traffic mix for N simulated seconds (crash
    faults + slow-shard stalls armed) and write a bit-reproducible
    per-tenant SLO artifact ``SOAK_<label>.json`` (with a delta-encoded
    ``timeline`` section sampled every ``--sample-every`` simulated
    seconds).  ``--flight-dir`` arms a flight recorder that dumps a
    ``FLIGHT_<label>_*.json`` context capture whenever a fault fires,
    backpressure engages, an audit fails, or the degradation ladder
    advances.  Ctrl-C flushes the partial artifact
    (``interrupted: true``) before exiting 130.
``slo``
    Evaluate declarative SLO rules (:mod:`repro.obs.slo`) against a
    SOAK/CHAOS artifact; ``--gate`` exits 2 naming the first breached
    rule and its window.
``dash``
    Deterministic terminal dashboard of any artifact with a
    ``timeline`` section: per-tenant / per-shard / per-worker counter
    series with sparklines, gauge trajectories, and the tenant table.
``journal``
    Inspect a dumped write-ahead :class:`UpdateJournal`; a corrupt or
    truncated file is reported with its cut point (exit 2), and
    ``--recover`` salvages the intact record prefix instead.

All algorithm dispatch resolves through :mod:`repro.registry`.

Examples
--------
::

    python -m repro datasets --scale 0.3
    python -m repro kcore --dataset livejournal --algorithm pldsopt --protocol ins
    python -m repro kcore --edges my_graph.txt --batch-size 1000
    python -m repro compare --dataset dblp --protocol mix
    python -m repro scalability --dataset orkut
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .bench.harness import run_protocol
from .graphs.generators import dataset_suite
from .graphs.io import read_edge_list
from .parallel.engine import WorkDepthTracker
from .parallel.scheduler import BrentScheduler
from .registry import (
    algorithm_keys,
    algorithm_spec,
    make_adapter,
    make_workload,
    workload_keys,
)
from .static_kcore.approx import approx_coreness_static
from .static_kcore.exact import ParallelExactKCore, exact_coreness, max_coreness

__all__ = ["main", "build_parser", "on_interrupt"]

#: ``(label, flush)`` callbacks run by :func:`main` when a command is cut
#: short by Ctrl-C, *before* returning the conventional exit 130.  Long
#: commands register a flusher so their partial artifact still lands on
#: disk (e.g. ``repro soak`` writes its SLO artifact with
#: ``interrupted: true``).  Cleared at the start of every :func:`main`.
_INTERRUPT_FLUSHERS: list[tuple[str, Callable[[], None]]] = []


def on_interrupt(label: str, flush: Callable[[], None]) -> None:
    """Register a partial-result flusher for the KeyboardInterrupt path."""
    _INTERRUPT_FLUSHERS.append((label, flush))


def _load_edges(args) -> tuple[str, list[tuple[int, int]]]:
    if args.edges:
        return args.edges, read_edge_list(args.edges)
    suite = {d.paper_name: d for d in dataset_suite(scale=args.scale, seed=42)}
    if args.dataset not in suite:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; choose from {sorted(suite)}"
        )
    spec = suite[args.dataset]
    return spec.name, spec.edges


def _n_hint(edges) -> int:
    return max((max(e) for e in edges), default=1) + 1


def cmd_datasets(args) -> int:
    print(f"{'dataset':16s} {'paper name':14s} {'vertices':>9s} {'edges':>9s} "
          f"{'max k':>6s}  regime")
    for d in dataset_suite(scale=args.scale, seed=42):
        k = max_coreness(exact_coreness(d.edges))
        print(
            f"{d.name:16s} {d.paper_name:14s} {d.num_vertices:9d} "
            f"{d.num_edges:9d} {k:6d}  {d.regime}"
        )
    return 0


def cmd_kcore(args) -> int:
    name, edges = _load_edges(args)
    batch = args.batch_size or max(1, len(edges) // 4)
    print(
        f"{name}: {len(edges)} edges | algorithm={args.algorithm} "
        f"protocol={args.protocol} batch={batch}"
    )
    res = run_protocol(
        lambda: make_adapter(
            args.algorithm, _n_hint(edges), delta=args.delta, lam=args.lam
        ),
        edges,
        args.protocol,
        batch,
        max_batches=args.max_batches,
    )
    print(f"  batches processed : {len(res.batches)}")
    print(f"  avg work / batch  : {res.avg_work:.0f}")
    print(f"  avg depth / batch : {res.avg_depth:.0f}")
    print(f"  avg wall / batch  : {res.avg_wall * 1e3:.2f} ms")
    if res.errors is not None and res.errors.vertices_measured:
        print(f"  error ratio       : avg {res.errors.average:.3f}, "
              f"max {res.errors.maximum:.3f}")
    print(f"  structure space   : {res.space_bytes} bytes")
    return 0


def cmd_compare(args) -> int:
    name, edges = _load_edges(args)
    batch = args.batch_size or max(1, len(edges) // 4)
    sched = BrentScheduler()
    keys = algorithm_keys() if args.include_static else algorithm_keys(dynamic=True)
    print(
        f"{name}: {len(edges)} edges | protocol={args.protocol} batch={batch} "
        f"| simulated time at {args.threads} threads (sequential at 1)"
    )
    print(f"{'algorithm':11s} {'sim time':>12s} {'work':>12s} {'depth':>10s} "
          f"{'avg err':>8s} {'max err':>8s}")
    for key in keys:
        res = run_protocol(
            lambda k=key: make_adapter(k, _n_hint(edges)),
            edges,
            args.protocol,
            batch,
            max_batches=args.max_batches,
        )
        p = args.threads if algorithm_spec(key).parallel else 1
        t = sched.time(res.total_cost, p) / max(1, len(res.batches))
        err = res.errors
        avg = f"{err.average:.2f}" if err and err.vertices_measured else "-"
        mx = f"{err.maximum:.2f}" if err and err.vertices_measured else "-"
        print(
            f"{key:11s} {t:12.0f} {res.total_cost.work:12d} "
            f"{res.total_cost.depth:10d} {avg:>8s} {mx:>8s}"
        )
    return 0


def cmd_scalability(args) -> int:
    name, edges = _load_edges(args)
    batch = args.batch_size or max(1, len(edges) // 3)
    sched = BrentScheduler(hyperthread_cores=30, hyperthread_yield=0.35)
    parallel = list(algorithm_keys(dynamic=True, parallel=True))
    costs = {}
    for key in parallel:
        res = run_protocol(
            lambda k=key: make_adapter(k, _n_hint(edges)),
            edges,
            "ins",
            batch,
        )
        costs[key] = res.total_cost
    print(f"{name}: Ins, batch={batch} — self-relative speedup")
    print("threads  " + "  ".join(f"{k:>8s}" for k in parallel))
    for p in (1, 2, 4, 8, 15, 30, 60):
        row = "  ".join(f"{sched.speedup(costs[k], p):7.2f}x" for k in parallel)
        print(f"{p:7d}  {row}")
    return 0


def cmd_static(args) -> int:
    name, edges = _load_edges(args)
    sched = BrentScheduler()
    t_e = WorkDepthTracker()
    exact = ParallelExactKCore(t_e).run(edges)
    t_a = WorkDepthTracker()
    approx = approx_coreness_static(edges, eps=args.eps, tracker=t_a)
    print(f"{name}: {len(edges)} edges")
    print(f"{'':16s} {'rounds':>7s} {'work':>10s} {'depth':>8s} {'T60':>10s}")
    print(f"{'ExactKCore':16s} {exact.rounds:7d} {t_e.work:10d} "
          f"{t_e.depth:8d} {sched.time(t_e.cost, 60):10.0f}")
    print(f"{'ApproxKCore':16s} {approx.rounds:7d} {t_a.work:10d} "
          f"{t_a.depth:8d} {sched.time(t_a.cost, 60):10.0f}")
    ref = exact.coreness
    worst = 1.0
    for v, k in ref.items():
        if k == 0:
            continue
        est = approx.estimates[v]
        worst = max(worst, max(est / k, k / est))
    print(f"approx max error ratio: {worst:.3f}")
    return 0


def cmd_adversary(args) -> int:
    from .baselines.zhang import ZhangExactDynamic
    from .core.plds import PLDS

    # Generators resolve through the workload registry, the same table
    # soak traffic mixes reference declaratively (see `repro soak`).
    initial, batches = make_workload(args.workload, args.size, args.rounds)
    n_hint = max((max(e) for e in initial), default=1) + 2
    print(
        f"workload={args.workload} size={args.size} rounds={args.rounds} "
        f"({len(initial)} initial edges, {len(batches)} batches)"
    )
    plds = PLDS(n_hint=n_hint)
    plds.insert_edges(initial)
    base = plds.tracker.work
    for b in batches:
        plds.update(b)
    violations = plds.check_invariants()
    print(f"  PLDS  work/batch : {(plds.tracker.work - base) / len(batches):.0f}"
          f"   invariants {'OK' if not violations else 'VIOLATED'}")

    zhang = ZhangExactDynamic()
    zhang.initialize(initial)
    base = zhang.tracker.work
    for b in batches:
        zhang.update(b)
    print(f"  Zhang work/batch : {(zhang.tracker.work - base) / len(batches):.0f}"
          f"   (exact maintenance)")
    return 0


def cmd_window(args) -> int:
    from .bench.metrics import error_stats
    from .core.plds import PLDS
    from .graphs.streams import sliding_window_batches

    name, edges = _load_edges(args)
    window = args.window or max(10, len(edges) // 3)
    batch = args.batch_size or max(1, window // 5)
    print(f"{name}: sliding window={window}, batch={batch}")
    plds = PLDS(n_hint=_n_hint(edges), group_shrink=50)
    live: set = set()
    batches = sliding_window_batches(edges, window, batch)
    for i, b in enumerate(batches):
        before = plds.tracker.work
        plds.update(b)
        live |= set(b.insertions)
        live -= set(b.deletions)
        if i % max(1, len(batches) // 8) == 0 or i == len(batches) - 1:
            stats = error_stats(
                plds.coreness_estimates(), exact_coreness(sorted(live))
            )
            print(
                f"  batch {i + 1:4d}: live={len(live):6d} "
                f"work={plds.tracker.work - before:7d} "
                f"err avg={stats.average:.2f} max={stats.maximum:.2f}"
            )
    return 0


def cmd_service(args) -> int:
    from .graphs.streams import insertion_batches
    from .service import CoreService

    name, edges = _load_edges(args)
    batch = args.batch_size or max(1, len(edges) // 4)
    svc = CoreService(args.algorithm, n_hint=_n_hint(edges), threads=args.threads)
    reader = svc.reader()
    print(
        f"{name}: serving {len(edges)} edges | algorithm={args.algorithm} "
        f"batch={batch} threads={args.threads}"
    )
    print(f"{'batch':>5s} {'+ins':>6s} {'-del':>6s} {'work':>10s} {'depth':>8s} "
          f"{'wall ms':>9s} {'T_p':>10s} {'epoch':>6s}")
    batches = insertion_batches(edges, batch, seed=0)
    if args.max_batches is not None:
        batches = batches[: args.max_batches]

    def served(query, result):
        # Each read reports which committed epoch answered it and how many
        # batches it trails the write head; --stale-ok turns the bound into
        # a hard failure (ValueError -> exit 2 with file:line in main()).
        if args.stale_ok is not None and result.staleness > args.stale_ok:
            raise ValueError(
                f"{query} served at epoch {result.epoch} is "
                f"{result.staleness} batch(es) behind head; --stale-ok "
                f"allows {args.stale_ok}"
            )
        flag = " [degraded]" if result.degraded else ""
        print(f"  {query:<18s}: epoch {result.epoch} "
              f"staleness {result.staleness}{flag}")
        return result.value

    snap = None
    for i, b in enumerate(batches):
        t = svc.apply_batch(b)
        print(
            f"{t.batch_id:5d} {t.insertions:6d} {t.deletions:6d} {t.work:10d} "
            f"{t.depth:8d} {t.wall_seconds * 1e3:9.2f} {t.t_p:10.0f} "
            f"{t.read_epoch:6d}"
        )
        if i == len(batches) // 2:
            snap = svc.snapshot()
    cmap = served("coreness_map", reader.coreness_map())
    top = max(cmap.items(), key=lambda kv: kv[1], default=(0, 0.0))
    served("coreness", reader.coreness(top[0]))
    print(f"  busiest vertex    : {top[0]} (estimate {top[1]:.2f})")
    if snap is not None:
        print(
            f"  snapshot #{snap.snapshot_id} after batch {snap.batches_applied}: "
            f"{len(snap.edges)} edges, vertex {top[0]} was {snap.coreness(top[0]):.2f}"
        )
    print(f"  structure space   : {svc.space_bytes()} bytes")
    return 0


def cmd_bench(args) -> int:
    import os

    from .bench.perfsuite import (
        BenchReport,
        DEFAULT_ALGOS,
        WORKLOADS,
        compare_bench,
        load_bench,
        run_suite,
        write_bench,
    )

    algos = tuple(args.algos.split(",")) if args.algos else DEFAULT_ALGOS
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be >= 1")
        if "plds-sharded" not in algos:
            algos = algos + ("plds-sharded",)
    for a in algos:
        if a not in algorithm_keys():
            raise SystemExit(
                f"unknown algorithm {a!r}; choose from {algorithm_keys()}"
            )
    workloads = (
        tuple(args.workloads.split(",")) if args.workloads else WORKLOADS
    )
    for w in workloads:
        if w not in WORKLOADS:
            raise SystemExit(f"unknown workload {w!r}; choose from {WORKLOADS}")
    if args.repeats < 1:
        raise SystemExit("--repeats must be >= 1")
    # Validate the baseline before the (possibly long) suite run, not after.
    if args.baseline and not os.path.exists(args.baseline):
        raise SystemExit(f"baseline not found: {args.baseline}")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    shards = args.shards if args.shards is not None else 4
    print(
        f"perfsuite: scale={args.scale} repeats={args.repeats} "
        f"algos={','.join(algos)}"
        + (f" shards={shards}" if "plds-sharded" in algos else "")
        + (
            f" backend={args.backend} workers={args.workers}"
            if args.backend != "simulated"
            else ""
        )
    )
    profile_sink: dict | None = {} if args.profile else None
    entries = run_suite(
        scale=args.scale,
        algos=algos,
        workloads=workloads,
        repeats=args.repeats,
        progress=lambda line: print(f"  {line}"),
        trace=args.trace,
        shards=shards,
        backend=args.backend,
        workers=args.workers,
        profile_sink=profile_sink,
    )
    report = BenchReport(label=args.label, scale=args.scale, entries=entries)
    out_path = os.path.join(args.output_dir, f"BENCH_{args.label}.json")
    write_bench(out_path, report)
    print(f"wrote {out_path}")
    pooled = [e for e in entries if e.pool and e.pool.get("dispatches")]
    if pooled:
        dispatches = sum(e.pool["dispatches"] for e in pooled)
        copied = sum(e.pool["bytes_copied"] for e in pooled)
        full = sum(e.pool["bytes_full_equiv"] for e in pooled)
        saved = (1.0 - copied / full) * 100.0 if full else 0.0
        print(
            f"pool: {dispatches} dispatches, "
            f"mean {copied / dispatches:.0f} bytes copied/dispatch "
            f"(full-image equivalent {full / dispatches:.0f}, "
            f"{saved:.0f}% saved by dirty ranges)"
        )
    if profile_sink is not None:
        import json as _json

        profile_path = os.path.join(
            args.output_dir, f"PROFILE_{args.label}.json"
        )
        with open(profile_path, "w", encoding="utf-8") as fh:
            _json.dump(
                {
                    "format": 1,
                    "label": args.label,
                    "scale": args.scale,
                    "backend": args.backend,
                    "profiles": profile_sink,
                },
                fh,
                indent=1,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {profile_path}")

    if not args.baseline:
        return 0
    baseline = load_bench(args.baseline)
    cmp = compare_bench(report, baseline, tolerance=args.tolerance)
    for workload, algo in cmp.missing:
        print(f"  MISSING    {workload}/{algo}: in baseline but not rerun")
    for c in cmp.improvements:
        if c.metric == "wall_s":
            print(
                f"  improved   {c.workload}/{c.algo} {c.metric}: "
                f"{c.baseline:.3f} -> {c.current:.3f} ({1 / c.ratio:.2f}x faster)"
            )
    for c in cmp.regressions:
        print(
            f"  REGRESSION {c.workload}/{c.algo} {c.metric}: "
            f"{c.baseline:.3f} -> {c.current:.3f} "
            f"(+{(c.ratio - 1) * 100:.0f}% > {args.tolerance * 100:.0f}% tolerance)"
        )
        cur = report.entry(c.workload, c.algo)
        if cur is not None and cur.phases:
            # Name the offending phases: top inclusive-work spans of the
            # regressed cell's traced run.
            top = sorted(
                cur.phases.items(), key=lambda kv: -kv[1]["work"]
            )[:3]
            for name, t in top:
                print(
                    f"             phase {name}: work={t['work']} "
                    f"depth={t['depth']} wall={t['wall_s'] * 1e3:.2f}ms"
                )
    if cmp.missing or not cmp.ok:
        print("perf regression check: FAIL")
        return 1
    print("perf regression check: OK")
    return 0


def cmd_chaos(args) -> int:
    import json

    from .bench.chaos import run_chaos

    report = run_chaos(
        algorithm=args.algorithm,
        vertices=args.vertices,
        batch_size=args.batch_size or 50,
        trials=args.trials,
        seed=args.seed,
        delete_fraction=args.delete_fraction,
        trace=args.trace,
        stall_depth=args.stall_depth,
    )
    print(
        f"chaos: algorithm={report.algorithm} vertices={report.vertices} "
        f"batch={report.batch_size} seed={report.seed} "
        f"({report.updates} updates in {report.batches} batches)"
    )
    print("  fault-site census : "
          + " ".join(f"{s}={c}" for s, c in report.census.items()))
    reads = "" if not args.trace else f" {'reads':>9s} {'stale':>5s}"
    print(f"{'trial':>5s} {'site':18s} {'hit':>4s} {'fired':>5s} "
          f"{'rolled':>6s} {'parity':>6s}" + reads)
    for t in report.trials:
        flag = "" if t.ok else ("  " + (t.error or "PARITY MISMATCH"))
        reads = "" if not args.trace else (
            f" {t.reads_consistent:4d}/{t.reads_probed:<4d} "
            f"{t.max_read_staleness:5d}"
        )
        print(
            f"{t.seed:5d} {t.site:18s} {t.hit_number:4d} "
            f"{str(t.fired):>5s} {t.rolled_back_batches:6d} "
            f"{str(t.parity):>6s}" + reads + flag
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    ok = report.ok
    print(f"chaos recovery check: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _obs_workload(args):
    """The shared trace/metrics workload: mixed insert+delete power-law."""
    from .bench.chaos import chaos_workload

    return chaos_workload(
        args.vertices,
        args.batch_size or 50,
        args.seed,
        delete_fraction=args.delete_fraction,
    )


def cmd_trace(args) -> int:
    from .obs.export import write_chrome_trace, write_jsonl
    from .obs.tracing import Tracer, iter_spans, phase_totals, tracing
    from .service import CoreService

    batches = _obs_workload(args)
    svc = CoreService(args.algorithm, n_hint=args.vertices + 1)
    tracer = Tracer()
    with tracing(tracer):
        for b in batches:
            svc.apply_batch(b)
    roots = tracer.roots
    n_spans = sum(1 for _ in iter_spans(roots))
    print(
        f"trace: algorithm={args.algorithm} vertices={args.vertices} "
        f"batches={len(batches)} spans={n_spans}"
    )
    print(f"  {'phase':18s} {'count':>6s} {'work':>12s} {'depth':>10s} "
          f"{'wall ms':>9s}")
    totals = phase_totals(roots)
    for name in sorted(totals, key=lambda n: -totals[n]["work"]):
        t = totals[name]
        print(
            f"  {name:18s} {t['count']:6d} {t['work']:12d} {t['depth']:10d} "
            f"{t['wall_s'] * 1e3:9.2f}"
        )
    # Reconciliation: summed service.batch span deltas must equal the
    # summed batch telemetry with exact integer equality (fault-free run).
    span_work = sum(s.work for s in roots if s.name == "service.batch")
    span_depth = sum(s.depth for s in roots if s.name == "service.batch")
    tel_work = sum(t.work for t in svc.telemetry)
    tel_depth = sum(t.depth for t in svc.telemetry)
    ok = span_work == tel_work and span_depth == tel_depth
    print(
        f"  reconciliation    : spans ({span_work}, {span_depth}) vs "
        f"telemetry ({tel_work}, {tel_depth}) -> "
        f"{'OK' if ok else 'MISMATCH'}"
    )
    if args.format == "chrome":
        write_chrome_trace(args.output, roots)
    else:
        write_jsonl(args.output, roots)
    print(f"wrote {args.output} ({args.format})")
    return 0 if ok else 1


def cmd_metrics(args) -> int:
    from .obs.metrics import (
        MetricsRegistry,
        collecting,
        metrics_json,
        record_level_structure,
    )
    from .service import CoreService

    batches = _obs_workload(args)
    svc = CoreService(args.algorithm, n_hint=args.vertices + 1)
    registry = MetricsRegistry()
    with collecting(registry):
        for b in batches:
            svc.apply_batch(b)
    record_level_structure(registry, svc.engine)
    if args.format in ("prom", "prometheus"):
        text = registry.to_prometheus()
    else:
        text = metrics_json(registry) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({args.format})")
    else:
        sys.stdout.write(text)
    return 0


def _write_soak_artifact(path: str, report: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def cmd_soak(args) -> int:
    import os

    from .service.admission import AdmissionPolicy, TenantQuota
    from .traffic import SoakConfig, SoakRunner, StallWindow, default_mix

    if (args.stall_from is None) != (args.stall_until is None):
        raise SystemExit("--stall-from and --stall-until go together")
    stall = None
    if args.stall_from is not None:
        stall = StallWindow(
            start=args.stall_from, end=args.stall_until, depth=args.stall_depth
        )
    quota = None
    if args.quota_rate is not None or args.quota_burst is not None:
        quota = TenantQuota(
            rate=args.quota_rate if args.quota_rate is not None else 2.0,
            burst=args.quota_burst if args.quota_burst is not None else 40.0,
        )
    # Backpressure triggers: sharded runs watch shard lag; a monolithic
    # run has no lag signal, so a stall there must trip on batch depth.
    policy_kwargs: dict = {"queue_limit": args.queue_limit}
    if stall is not None and args.shards is None:
        policy_kwargs["depth_threshold"] = stall.depth
    config = SoakConfig(
        mix=default_mix(args.tenants, rate=args.rate),
        horizon=args.horizon,
        seed=args.seed,
        algorithm=args.algorithm,
        shards=args.shards,
        threads=args.threads,
        fault_rate=args.fault_rate,
        stall=stall,
        policy=AdmissionPolicy(**policy_kwargs),
        default_quota=quota,
        verify_reads=not args.no_verify_reads,
        probe_every=args.probe_every,
        sample_every=args.sample_every,
        label=args.label,
    )
    out_path = os.path.join(args.output_dir, f"SOAK_{args.label}.json")
    runner = SoakRunner(config)
    # Ctrl-C mid-soak must still land the partial artifact on disk
    # (interrupted: true) before main() returns 130.
    on_interrupt(
        out_path, lambda: _write_soak_artifact(out_path, runner.report(True))
    )
    print(
        f"soak: {args.tenants} tenants, horizon={args.horizon:.0f}s "
        f"(simulated), algorithm={args.algorithm}"
        + (f" shards={args.shards}" if args.shards else "")
        + f", fault_rate={args.fault_rate}"
        + (f", stall [{stall.start:.0f}, {stall.end:.0f})" if stall else "")
    )
    if args.flight_dir is not None:
        from .obs.recorder import FlightRecorder, recording

        os.makedirs(args.flight_dir, exist_ok=True)
        recorder = FlightRecorder(label=args.label, out_dir=args.flight_dir)
        with recording(recorder):
            report = runner.run()
        if recorder.dump_paths:
            print(f"  flight dumps : {len(recorder.dump_paths)} "
                  f"(under {args.flight_dir})")
    else:
        report = runner.run()
    _write_soak_artifact(out_path, report)
    print(f"{'tenant':10s} {'writes':>7s} {'adm':>6s} {'rej':>5s} {'shed':>5s} "
          f"{'p50':>8s} {'p99':>8s} {'reads':>6s} {'stale':>5s}")
    for name, t in report["tenants"].items():
        w, r = t["writes"], t["reads"]
        p50 = f"{w['p50_latency']:.0f}" if w["p50_latency"] is not None else "-"
        p99 = f"{w['p99_latency']:.0f}" if w["p99_latency"] is not None else "-"
        print(
            f"{name:10s} {w['events']:7d} {w['admitted']:6d} "
            f"{w['rejected']:5d} {w['shed']:5d} {p50:>8s} {p99:>8s} "
            f"{r['events']:6d} {r['max_staleness']:5d}"
        )
    cons = report["consistency"]
    print(f"  consistency  : {cons['reads_consistent']}/{cons['reads_probed']} "
          f"probes consistent, max staleness {cons['max_staleness']}")
    print(f"  faults       : {report['faults']['fired']} fired, "
          f"{report['faults']['stalled_hits']} stalled hits")
    bp = report["backpressure"]
    print(f"  backpressure : engaged {bp['engaged_count']}x, "
          f"{bp['pressure_time']:.0f}s under pressure")
    print(f"  degraded     : {report['degraded']['time']:.0f}s "
          f"({report['degraded']['entered']} episodes)")
    print(f"wrote {out_path}")
    print(f"soak SLO check: {'OK' if report['ok'] else 'FAIL'}")
    return 0 if report["ok"] else 1


def _load_artifact(path: str) -> dict:
    import json

    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    if not isinstance(artifact, dict):
        raise ValueError(f"{path}: expected a JSON object artifact")
    return artifact


def cmd_slo(args) -> int:
    import dataclasses
    import json

    from .obs.slo import DEFAULT_RULES, evaluate_artifact, gate_report

    artifact = _load_artifact(args.artifact)
    overrides = {
        "read-staleness": args.max_staleness,
        "write-p99": args.p99_latency,
        "rejection-rate": args.rejection_rate,
        "degraded-fraction": args.degraded_fraction,
        "rollback-burn": args.rollback_burn,
    }
    rules = tuple(
        dataclasses.replace(r, threshold=overrides[r.name])
        if overrides.get(r.name) is not None
        else r
        for r in DEFAULT_RULES
    )
    report = evaluate_artifact(artifact, rules=rules)
    print(
        f"slo: {artifact.get('kind', 'artifact')} label={report.label} "
        f"rules={len(rules)}"
    )
    print(f"  {'rule':18s} {'kind':17s} {'observed':>9s} {'allowed':>9s} "
          f"{'':7s} window")
    for v in report.verdicts:
        observed = "-" if v.observed is None else f"{v.observed:.3f}"
        flag = "OK" if v.ok else "BREACH"
        print(
            f"  {v.rule:18s} {v.kind:17s} {observed:>9s} {v.allowed:9.3f} "
            f"{flag:7s} {v.window}"
            + (f"  ({v.detail})" if v.detail else "")
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_json_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.gate:
        # Raises ValueError on breach -> exit 2 with file:line in main().
        gate_report(report)
        print("slo gate: OK")
        return 0
    print(f"slo check: {'OK' if report.ok else 'FAIL'} "
          f"({len(report.breaches)} breach(es))")
    return 0 if report.ok else 1


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _spark(values: list, width: int = 32) -> str:
    """A fixed-palette sparkline; deterministic, at most ``width`` glyphs."""
    if not values:
        return ""
    if len(values) > width:
        # Evenly spaced downsample (keep first and last).
        step = (len(values) - 1) / (width - 1)
        values = [values[round(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_GLYPHS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_GLYPHS[min(7, int((v - lo) / span * 8))] for v in values
    )


def cmd_dash(args) -> int:
    from .obs.timeline import counter_totals, gauge_track, split_series_key

    artifact = _load_artifact(args.artifact)
    timeline = artifact.get("timeline")
    if not isinstance(timeline, dict):
        raise ValueError(
            f"{args.artifact}: no 'timeline' section; rerun the producing "
            "command with sampling on (`repro soak` samples by default, "
            "`repro chaos` needs --trace)"
        )
    samples = timeline.get("samples", [])
    print(
        f"dash: {artifact.get('kind', 'artifact')} "
        f"label={artifact.get('label', '?')} samples={len(samples)} "
        f"dropped={timeline.get('dropped', 0)}"
    )
    # Counter series, bucketed by their distinguishing label so the
    # per-tenant / per-shard / per-worker views line up.
    groups: dict[str, list[tuple[str, float]]] = {}
    for key, total in sorted(counter_totals(samples).items()):
        _, labels = split_series_key(key)
        table = dict(labels)
        if "tenant" in table:
            bucket = "per-tenant"
        elif "shard" in table:
            bucket = "per-shard"
        elif "worker" in table:
            bucket = "per-worker"
        else:
            bucket = "service"
        groups.setdefault(bucket, []).append((key, total))
    for bucket in ("per-tenant", "per-shard", "per-worker", "service"):
        rows = groups.get(bucket, [])
        if not rows:
            continue
        print(f"  {bucket} counters{'':>{max(0, 46 - len(bucket))}s} "
              f"{'total':>10s}  trajectory")
        for key, total in rows[: args.limit]:
            deltas = [s.get("counters", {}).get(key, 0.0) for s in samples]
            print(f"    {key:52s} {total:10g}  {_spark(deltas)}")
        if len(rows) > args.limit:
            print(f"    ... {len(rows) - args.limit} more (raise --limit)")
    gauge_keys = sorted({k for s in samples for k in s.get("gauges", {})})
    if gauge_keys:
        print(f"  gauges{'':>49s} {'last':>10s}  trajectory")
        for key in gauge_keys[: args.limit]:
            track = gauge_track(samples, key)
            last = track[-1][1] if track else 0.0
            print(f"    {key:52s} {last:10g}  "
                  f"{_spark([v for _, v in track])}")
        if len(gauge_keys) > args.limit:
            print(f"    ... {len(gauge_keys) - args.limit} more "
                  f"(raise --limit)")
    tenants = artifact.get("tenants")
    if isinstance(tenants, dict) and tenants:
        print(f"  {'tenant':12s} {'writes':>7s} {'adm':>6s} {'rej':>5s} "
              f"{'shed':>5s} {'p99':>8s} {'reads':>6s} {'stale':>5s}")
        for name, t in tenants.items():
            w, r = t["writes"], t["reads"]
            p99 = (f"{w['p99_latency']:.0f}"
                   if w.get("p99_latency") is not None else "-")
            print(
                f"  {name:12s} {w['events']:7d} {w['admitted']:6d} "
                f"{w['rejected']:5d} {w['shed']:5d} {p99:>8s} "
                f"{r['events']:6d} {r['max_staleness']:5d}"
            )
    return 0


def cmd_journal(args) -> int:
    from .graphs.streams import UpdateJournal

    journal = UpdateJournal.load(args.path, recover=args.recover)
    statuses = {"committed": 0, "pending": 0, "aborted": 0}
    for record in journal.records:
        statuses[record.status] += 1
    print(f"{args.path}: {len(journal.records)} records "
          f"({statuses['committed']} committed, {statuses['pending']} pending, "
          f"{statuses['aborted']} aborted)")
    if journal.truncation is not None:
        t = journal.truncation
        print(
            f"  RECOVERED: corrupt tail cut at line {t.line} column "
            f"{t.column} ({t.detail}); kept {t.records} records "
            f"({t.committed} committed)"
        )
    updates = sum(
        len(r.insertions) + len(r.deletions)
        for r in journal.records
        if r.status == "committed"
    )
    print(f"  replayable history: {len(journal.committed_batches())} batches, "
          f"{updates} updates")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch-dynamic k-core decomposition (SPAA 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(p):
        p.add_argument("--dataset", default="dblp",
                       help="analog dataset paper-name (see `repro datasets`)")
        p.add_argument("--edges", default=None,
                       help="path to a whitespace edge-list file (overrides --dataset)")
        p.add_argument("--scale", type=float, default=0.3,
                       help="analog dataset scale factor")
        p.add_argument("--batch-size", type=int, default=None,
                       help="updates per batch (default: m/4)")
        p.add_argument("--max-batches", type=int, default=None)

    p = sub.add_parser("datasets", help="list the analog dataset suite")
    p.add_argument("--scale", type=float, default=0.3)
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("kcore", help="run one dynamic k-core algorithm")
    add_input(p)
    p.add_argument(
        "--algorithm", choices=algorithm_keys(dynamic=True), default="pldsopt"
    )
    p.add_argument("--protocol", choices=("ins", "del", "mix"), default="ins")
    p.add_argument("--delta", type=float, default=0.4)
    p.add_argument("--lam", type=float, default=3.0)
    p.set_defaults(fn=cmd_kcore)

    p = sub.add_parser("compare", help="run all algorithms side by side")
    add_input(p)
    p.add_argument("--protocol", choices=("ins", "del", "mix"), default="ins")
    p.add_argument("--threads", type=int, default=60)
    p.add_argument(
        "--include-static", action="store_true",
        help="also rerun the static algorithms per batch (Fig. 11 style)",
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("scalability", help="simulated speedup curves")
    add_input(p)
    p.set_defaults(fn=cmd_scalability)

    p = sub.add_parser("static", help="static exact vs approximate k-core")
    add_input(p)
    p.add_argument("--eps", type=float, default=0.5)
    p.set_defaults(fn=cmd_static)

    p = sub.add_parser("adversary", help="run an adversarial toggle workload")
    p.add_argument(
        "--workload", choices=workload_keys(adversarial=True),
        default="cycle",
    )
    p.add_argument("--size", type=int, default=100)
    p.add_argument("--rounds", type=int, default=5)
    p.set_defaults(fn=cmd_adversary)

    p = sub.add_parser("window", help="sliding-window temporal monitoring")
    add_input(p)
    p.add_argument("--window", type=int, default=None)
    p.set_defaults(fn=cmd_window)

    p = sub.add_parser(
        "service", help="CoreService demo: batched serving with telemetry"
    )
    add_input(p)
    p.add_argument("--algorithm", choices=algorithm_keys(), default="pldsopt")
    p.add_argument("--threads", type=int, default=60,
                   help="processor count for the simulated T_p telemetry")
    p.add_argument("--stale-ok", type=int, default=None, metavar="N",
                   help="fail (exit 2) if any read is served more than N "
                        "batches behind the write head")
    p.set_defaults(fn=cmd_service)

    p = sub.add_parser(
        "chaos",
        help="fault-injection recovery check (randomized crash plans)",
    )
    p.add_argument("--algorithm", choices=algorithm_keys(dynamic=True),
                   default="pldsopt")
    p.add_argument("--vertices", type=int, default=150,
                   help="power-law workload size (Barabási–Albert)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="updates per batch (default: 50)")
    p.add_argument("--trials", type=int, default=8,
                   help="randomized fault plans to run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--delete-fraction", type=float, default=0.5,
                   help="fraction of edges deleted after insertion")
    p.add_argument("--json", default=None,
                   help="also write the full report as JSON to this path")
    p.add_argument("--trace", action="store_true",
                   help="attach the baseline span forest and a metrics dump "
                        "to the JSON report")
    p.add_argument("--stall-depth", type=int, default=0,
                   help="also arm a slow-apply stall (this much extra depth "
                        "per service.apply) over the middle half of every "
                        "trial")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "bench", help="perf-regression suite (writes BENCH_<label>.json)"
    )
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier")
    p.add_argument("--label", default="local",
                   help="output file is BENCH_<label>.json")
    p.add_argument("--output-dir", default=".",
                   help="directory for the BENCH json (default: cwd)")
    p.add_argument("--algos", default=None,
                   help="comma-separated algorithm keys (default: plds,pldsopt,lds)")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload keys (default: all six)")
    p.add_argument("--repeats", type=int, default=1,
                   help="wall-clock repeats per cell; best is recorded")
    p.add_argument("--baseline", default=None,
                   help="previous BENCH json to compare against")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed relative growth before a metric regresses")
    p.add_argument("--trace", action="store_true",
                   help="record per-phase attribution on every entry "
                        "(adds tracing overhead inside the timed region)")
    p.add_argument("--shards", type=int, default=None,
                   help="bench the sharded coordinator too (plds-sharded "
                        "with this many shards is appended to --algos)")
    p.add_argument("--backend", choices=("simulated", "pool"),
                   default="simulated",
                   help="execution backend for the PLDS-family engines: "
                        "'pool' fans read-only scans out to a process pool "
                        "(flat engines only; others stay simulated)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes for --backend pool")
    p.add_argument("--profile", action="store_true",
                   help="cProfile every cell and write the top-25 "
                        "cumulative hotspots to PROFILE_<label>.json "
                        "(adds profiler overhead inside the timed region)")
    p.set_defaults(fn=cmd_bench)

    def add_obs_workload(p):
        p.add_argument("--algorithm", choices=algorithm_keys(dynamic=True),
                       default="pldsopt")
        p.add_argument("--vertices", type=int, default=200,
                       help="power-law workload size (Barabási–Albert)")
        p.add_argument("--batch-size", type=int, default=None,
                       help="updates per batch (default: 50)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--delete-fraction", type=float, default=0.5,
                       help="fraction of edges deleted after insertion")

    p = sub.add_parser(
        "trace",
        help="trace a serving workload and export the span forest",
    )
    add_obs_workload(p)
    p.add_argument("--out", "--output", dest="output",
                   default="repro.trace.json", metavar="PATH",
                   help="export path (default: repro.trace.json)")
    p.add_argument("--format", choices=("chrome", "jsonl"), default="chrome",
                   help="chrome: trace_event JSON for chrome://tracing / "
                        "Perfetto; jsonl: one span record per line")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="run a serving workload and dump the metrics registry",
    )
    add_obs_workload(p)
    p.add_argument("--format", choices=("prometheus", "prom", "json"),
                   default="prom",
                   help="prometheus (alias: prom): text exposition; "
                        "json: registry dump")
    p.add_argument("--out", "--output", dest="output", default=None,
                   metavar="PATH", help="write here instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "slo",
        help="evaluate SLO rules against a SOAK/CHAOS artifact "
             "(--gate: exit 2 on breach)",
    )
    p.add_argument("artifact", help="path to a SOAK_/CHAOS json artifact")
    p.add_argument("--gate", action="store_true",
                   help="exit 2 naming the first breached rule and window "
                        "instead of reporting exit 1")
    p.add_argument("--out", "--output", dest="out", default=None,
                   metavar="PATH", help="also write the SLO report as JSON")
    p.add_argument("--max-staleness", type=float, default=None, metavar="N",
                   help="override the read-staleness threshold (batches)")
    p.add_argument("--p99-latency", type=float, default=None, metavar="T",
                   help="override the write-p99 threshold (simulated units)")
    p.add_argument("--rejection-rate", type=float, default=None, metavar="F",
                   help="override the rejection-rate threshold in [0, 1]")
    p.add_argument("--degraded-fraction", type=float, default=None,
                   metavar="F",
                   help="override the degraded-fraction threshold in [0, 1]")
    p.add_argument("--rollback-burn", type=float, default=None, metavar="N",
                   help="override the rollback-burn per-window budget")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser(
        "dash",
        help="terminal dashboard of an artifact's metric timeline",
    )
    p.add_argument("artifact",
                   help="path to an artifact with a 'timeline' section")
    p.add_argument("--limit", type=int, default=12,
                   help="rows per section (default: 12)")
    p.set_defaults(fn=cmd_dash)

    p = sub.add_parser(
        "soak",
        help="chaos-armed multi-tenant soak (writes SOAK_<label>.json)",
    )
    p.add_argument("--tenants", type=int, default=2,
                   help="tenant count (templates cycle: bursty writer, "
                        "read-heavy, diurnal, adversarial)")
    p.add_argument("--horizon", type=float, default=600.0,
                   help="simulated seconds of traffic to run")
    p.add_argument("--seed", type=int, default=0,
                   help="same seed => bit-identical SLO artifact")
    p.add_argument("--rate", type=float, default=0.05,
                   help="base per-tenant arrival rate (requests per "
                        "simulated second)")
    p.add_argument("--algorithm", choices=algorithm_keys(dynamic=True),
                   default="pldsopt")
    p.add_argument("--shards", type=int, default=None,
                   help="serve through the sharded coordinator with this "
                        "many shards (enables the shard-lag backpressure "
                        "signal)")
    p.add_argument("--threads", type=int, default=60,
                   help="processor count for the simulated T_p clock")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="probability per write of arming a fresh crash "
                        "faultpoint (one in flight at a time)")
    p.add_argument("--stall-from", type=float, default=None, metavar="T",
                   help="open a slow-shard stall window at this simulated "
                        "time (needs --stall-until)")
    p.add_argument("--stall-until", type=float, default=None, metavar="T",
                   help="close the stall window at this simulated time")
    p.add_argument("--stall-depth", type=int, default=4000,
                   help="extra critical-path depth charged per stalled hit")
    p.add_argument("--queue-limit", type=int, default=12,
                   help="shed writes when the simulated backlog reaches "
                        "this depth (tightens under backpressure)")
    p.add_argument("--quota-rate", type=float, default=None,
                   help="default per-tenant token refill rate "
                        "(tokens per simulated second)")
    p.add_argument("--quota-burst", type=float, default=None,
                   help="default per-tenant token bucket capacity")
    p.add_argument("--probe-every", type=int, default=7,
                   help="read-probe every Nth faultpoint traversal")
    p.add_argument("--no-verify-reads", action="store_true",
                   help="skip the mid-cascade read-consistency probes")
    p.add_argument("--sample-every", type=float, default=25.0, metavar="T",
                   help="timeline sampling grid in simulated seconds "
                        "(0 disables the artifact's timeline section)")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="arm a flight recorder; context dumps land here as "
                        "FLIGHT_<label>_*.json when faults fire, "
                        "backpressure engages, or the service degrades")
    p.add_argument("--label", default="local",
                   help="output file is SOAK_<label>.json")
    p.add_argument("--output-dir", default=".",
                   help="directory for the SOAK json (default: cwd)")
    p.set_defaults(fn=cmd_soak)

    p = sub.add_parser(
        "journal",
        help="inspect a dumped write-ahead journal (exit 2 if corrupt)",
    )
    p.add_argument("path", help="path to a journal JSON written by dump()")
    p.add_argument("--recover", action="store_true",
                   help="salvage the intact record prefix of a corrupt "
                        "journal instead of failing")
    p.set_defaults(fn=cmd_journal)

    return parser


def _error_site(exc: BaseException) -> str:
    """``" (file.py:123)"`` for the deepest repro frame of ``exc``, or ``""``.

    Points the one-line CLI error at the raising site inside this package
    without printing a traceback; frames from the standard library (e.g.
    ``json``) are skipped so the location stays actionable.
    """
    site = ""
    tb = exc.__traceback__
    while tb is not None:
        filename = tb.tb_frame.f_code.co_filename
        parts = filename.replace("\\", "/").split("/")
        if "repro" in parts:
            site = f" ({parts[-1]}:{tb.tb_lineno})"
        tb = tb.tb_next
    return site


def main(argv: Sequence[str] | None = None) -> int:
    _INTERRUPT_FLUSHERS.clear()
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Never swallow Ctrl-C into a generic error: conventional 128+SIGINT
        # for EVERY subcommand, flushing any registered partial artifacts
        # first (e.g. a soak's SLO report with interrupted: true).
        for label, flush in _INTERRUPT_FLUSHERS:
            try:
                flush()
                print(f"repro: flushed partial {label}", file=sys.stderr)
            except Exception as exc:  # the flusher must not mask exit 130
                print(f"repro: flush of {label} failed: {exc}", file=sys.stderr)
        print("repro: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:  # output piped into e.g. `head`
        return 0
    except (ValueError, KeyError) as exc:
        # Malformed input files, unknown registry keys, bad parameter
        # combinations: one actionable line, not a traceback.
        detail = exc.args[0] if exc.args else exc
        print(f"repro: error: {detail}{_error_site(exc)}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro: error: {exc}{_error_site(exc)}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
