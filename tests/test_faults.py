"""Fault-injection substrate and chaos-recovery tests.

Covers the :mod:`repro.faults` registry itself, the named injection
sites threaded through the engine/PLDS/service layers, and the headline
robustness claim: a single injected crash at *any* site, at any point of
a power-law update stream, recovers to a final coreness state
bit-identical to the fault-free run.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.bench.chaos import run_chaos
from repro.faults import FAULT_SITES, FaultPlan, FaultPoint, InjectedFault
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch, deletion_batches, insertion_batches
from repro.parallel import engine as engine_mod
from repro.service import AuditPolicy, CoreService, RetryPolicy

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------------
# The registry itself
# ---------------------------------------------------------------------------


def test_fault_point_rejects_unknown_site():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPoint("service.unknown", 1)


def test_fault_point_rejects_nonpositive_hit():
    with pytest.raises(ValueError, match="hit_number"):
        FaultPoint("plds.rise", 0)


def test_plan_fires_exactly_on_armed_hit():
    plan = FaultPlan([FaultPoint("plds.rise", 3)])
    plan.hit("plds.rise")
    plan.hit("plds.rise")
    with pytest.raises(InjectedFault, match="plds.rise"):
        plan.hit("plds.rise")
    # Counters advance past the armed hit: the fault is transient.
    plan.hit("plds.rise")
    assert plan.counts["plds.rise"] == 4
    assert plan.fired == [FaultPoint("plds.rise", 3)]


def test_recording_plan_counts_without_raising():
    plan = faults.recording_plan()
    for _ in range(5):
        plan.hit("engine.parfor")
    assert plan.counts["engine.parfor"] == 5
    assert plan.fired == []


def test_active_context_installs_and_restores():
    outer = faults.recording_plan()
    inner = faults.recording_plan()
    assert faults.ACTIVE is None
    with faults.active(outer):
        assert faults.ACTIVE is outer
        with faults.active(inner):
            assert faults.ACTIVE is inner
        assert faults.ACTIVE is outer
    assert faults.ACTIVE is None


def test_random_plan_is_deterministic_and_targets_live_sites():
    census = {s: 0 for s in FAULT_SITES}
    census["plds.rise"] = 10
    census["service.apply"] = 4
    plans = [faults.random_plan(7, census) for _ in range(3)]
    assert plans[0].points == plans[1].points == plans[2].points
    point = plans[0].points[0]
    assert point.site in ("plds.rise", "service.apply")
    assert 1 <= point.hit_number <= census[point.site]


def test_random_plan_requires_a_live_site():
    with pytest.raises(ValueError, match="no live sites"):
        faults.random_plan(0, {s: 0 for s in FAULT_SITES})


# ---------------------------------------------------------------------------
# Injection sites in the engine and PLDS layers
# ---------------------------------------------------------------------------


def test_engine_parfor_site_fires_under_active_plan(tracker):
    plan = FaultPlan([FaultPoint("engine.parfor", 1)])
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            tracker.flat_parfor([1, 2, 3], lambda x: None)
    assert plan.fired


def test_engine_hook_removed_after_context(tracker):
    with faults.active(faults.recording_plan()):
        pass
    # Outside the context the hook is gone: parfor runs clean.
    tracker.flat_parfor([1, 2, 3], lambda x: tracker.add())
    assert tracker.work == 3


def test_plds_sites_fire_with_active_plan():
    edges = barabasi_albert(60, 3, seed=1)
    plan = FaultPlan([FaultPoint("plds.rise", 1)])
    svc = CoreService("plds", n_hint=64, retry=RetryPolicy(max_attempts=1))
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            svc.apply_batch(Batch(insertions=edges))
    assert plan.fired == [FaultPoint("plds.rise", 1)]


def test_no_overhead_path_when_disabled(tracker):
    # Without install(), the engine hook is None and ACTIVE is None:
    # fault checks are a single global load per phase, never per item.
    assert faults.ACTIVE is None
    assert engine_mod._FAULT_HOOK is None
    tracker.flat_parfor(range(10), lambda x: tracker.add())
    assert tracker.work == 10


# ---------------------------------------------------------------------------
# Recovery parity: the headline robustness property
# ---------------------------------------------------------------------------


def _stream(vertices=100, seed=7, batch_size=40):
    """A ~500-update power-law stream with real deletion pressure."""
    edges = barabasi_albert(vertices, 3, seed=seed)
    doomed = edges[: len(edges) // 2]
    return insertion_batches(edges, batch_size, seed=seed) + deletion_batches(
        doomed, batch_size, seed=seed
    )


def _serve(batches, algorithm, plan=None, **kwargs):
    svc = CoreService(algorithm, n_hint=128, **kwargs)
    if plan is None:
        for b in batches:
            svc.apply_batch(b)
        return svc
    with faults.active(plan):
        for b in batches:
            svc.apply_batch(b)
    return svc


@pytest.mark.parametrize("algorithm", ["plds", "pldsopt", "lds"])
@pytest.mark.parametrize("site", FAULT_SITES)
def test_single_fault_at_each_site_recovers_bit_identical(algorithm, site):
    batches = _stream()
    baseline = _serve(batches, algorithm).coreness_map()
    census = faults.recording_plan()
    _serve(batches, algorithm, census)
    if census.counts[site] == 0:
        pytest.skip(f"site {site} not reachable on this workload/algorithm")
    # Arm the fault mid-stream, the most state-laden moment.
    hit = census.counts[site] // 2 + 1
    plan = FaultPlan([FaultPoint(site, hit)])
    svc = _serve(batches, algorithm, plan)
    assert plan.fired == [FaultPoint(site, hit)]
    assert any(t.rolled_back for t in svc.telemetry)
    assert svc.coreness_map() == baseline


def test_seeded_random_fault_plans_recover_bit_identical():
    """Property test: any seeded single-fault plan recovers exactly."""
    batches = _stream(vertices=80, seed=3)
    baseline = _serve(batches, "pldsopt").coreness_map()
    census = faults.recording_plan()
    _serve(batches, "pldsopt", census)
    for seed in range(10):
        plan = faults.random_plan(seed, census.counts)
        svc = _serve(
            batches, "pldsopt", plan, audit=AuditPolicy("on-recovery")
        )
        assert plan.fired, plan.points
        assert svc.coreness_map() == baseline, plan.points
        # Recovery audits found the restored structure healthy.
        assert svc.audit_failures == []


def test_fault_during_retry_does_not_refire():
    """Counters persist across retries, so the Nth-hit fault is transient."""
    batches = _stream(vertices=60, seed=5)
    plan = FaultPlan([FaultPoint("service.apply", 2)])
    svc = _serve(batches, "pldsopt", plan, retry=RetryPolicy(max_attempts=2))
    failed = [t for t in svc.telemetry if t.rolled_back]
    assert len(failed) == 1
    assert failed[0].attempts == 2


# ---------------------------------------------------------------------------
# Chaos harness
# ---------------------------------------------------------------------------


def test_run_chaos_report_all_trials_recover():
    report = run_chaos(vertices=80, batch_size=40, trials=4, seed=1)
    assert report.ok
    assert len(report.trials) == 4
    assert all(t.fired and t.parity for t in report.trials)
    # Every census site the workload exercises is recorded.
    assert set(report.census) == set(FAULT_SITES)
    assert report.census["service.apply"] == report.batches


def test_chaos_report_json_round_trip_shape():
    report = run_chaos(vertices=60, batch_size=30, trials=2, seed=2)
    data = report.to_json_dict()
    assert data["format"] == 1
    assert data["ok"] is True
    assert len(data["trials"]) == 2
    for trial in data["trials"]:
        assert {"seed", "site", "hit_number", "fired", "parity", "ok"} <= set(
            trial
        )


def test_chaos_validates_arguments():
    with pytest.raises(ValueError, match="trials"):
        run_chaos(trials=0)
    with pytest.raises(ValueError, match="delete_fraction"):
        run_chaos(delete_fraction=1.5)
