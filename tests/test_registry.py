"""Tests for the unified algorithm/application registry."""

from __future__ import annotations

import pytest

import repro.bench.harness as harness
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch
from repro.registry import (
    AlgorithmSpec,
    ApplicationSpec,
    DynamicKCoreAdapter,
    algorithm_keys,
    algorithm_spec,
    application_keys,
    application_spec,
    make_adapter,
    make_application,
    register_algorithm,
    register_application,
)

EDGES = barabasi_albert(80, 3, seed=3)


class TestAlgorithmRegistry:
    def test_expected_keys_in_order(self):
        assert algorithm_keys() == (
            "plds", "pldsopt", "pldsflat", "pldsflatopt", "lds", "sun",
            "hua", "zhang", "exactkcore", "approxkcore", "plds-sharded",
        )
        assert algorithm_keys(dynamic=True) == (
            "plds", "pldsopt", "pldsflat", "pldsflatopt", "lds", "sun",
            "hua", "zhang", "plds-sharded"
        )
        assert algorithm_keys(parallel=False) == ("lds", "sun", "zhang")

    @pytest.mark.parametrize("key", algorithm_keys())
    def test_every_key_constructs_and_runs(self, key):
        adapter = make_adapter(key, n_hint=90)
        adapter.initialize(EDGES[:60])
        adapter.update(Batch(insertions=EDGES[60:90]))
        assert adapter.key == key
        assert adapter.estimates()
        assert adapter.cost.work > 0
        assert adapter.space_bytes() > 0

    @pytest.mark.parametrize("key", algorithm_keys())
    def test_metadata_consistency(self, key):
        spec = algorithm_spec(key)
        adapter = make_adapter(key, n_hint=10)
        assert adapter.is_exact == spec.exact
        assert spec.supports_deletions
        assert spec.metered
        if spec.snapshot:
            assert hasattr(adapter.impl, "to_snapshot")
        if spec.sharded:
            assert adapter.impl.num_shards >= 1

    def test_sharded_capability_metadata(self):
        spec = algorithm_spec("plds-sharded")
        assert spec.sharded
        assert not algorithm_spec("plds").sharded
        assert make_adapter("plds-sharded", n_hint=16, shards=2).impl.num_shards == 2

    def test_unknown_key_error_lists_valid_keys(self):
        with pytest.raises(ValueError, match="plds.*zhang"):
            algorithm_spec("nope")
        with pytest.raises(ValueError, match="unknown algorithm key 'nope'"):
            make_adapter("nope", n_hint=10)

    def test_duplicate_registration_rejected(self):
        spec = AlgorithmSpec(
            key="plds", summary="dup", exact=False, parallel=True,
            factory=lambda n, p: make_adapter("plds", n),
        )
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(spec)

    def test_third_party_registration_round_trip(self):
        from repro import registry as reg

        spec = AlgorithmSpec(
            key="_test_only",
            summary="test stand-in",
            exact=False,
            parallel=True,
            factory=lambda n, p: make_adapter("plds", n),
        )
        register_algorithm(spec)
        try:
            assert "_test_only" in algorithm_keys()
            adapter = make_adapter("_test_only", n_hint=16)
            assert isinstance(adapter, DynamicKCoreAdapter)
        finally:
            del reg._ALGORITHMS["_test_only"]
        assert "_test_only" not in algorithm_keys()


class TestHarnessParity:
    """The harness's documented table and exported tuples mirror the registry."""

    def test_exported_tuples_derive_from_registry(self):
        assert harness.ALGORITHM_KEYS == algorithm_keys(dynamic=True)
        assert harness.ALL_KEYS == algorithm_keys()
        assert harness.SEQUENTIAL_KEYS == frozenset(algorithm_keys(parallel=False))

    def test_docstring_table_matches_capability_metadata(self):
        """Parse the Algorithms table in bench/harness.py's docstring and
        check each row's kind column against the registry metadata."""
        documented: dict[str, tuple[bool, bool]] = {}
        for line in (harness.__doc__ or "").splitlines():
            parts = line.split()
            if (
                len(parts) >= 3
                and parts[0] in algorithm_keys()
                and parts[-1] in ("exact", "approx")
                and parts[-2] in ("parallel", "sequential")
            ):
                documented[parts[0]] = (
                    parts[-2] == "parallel", parts[-1] == "exact"
                )
        assert set(documented) == set(algorithm_keys()), (
            "harness docstring table out of sync with registry keys"
        )
        for key, (parallel, exact) in documented.items():
            spec = algorithm_spec(key)
            assert spec.parallel == parallel, key
            assert spec.exact == exact, key

    def test_harness_make_adapter_is_registry_make_adapter(self):
        assert harness.make_adapter is make_adapter


class TestApplicationRegistry:
    def test_expected_keys(self):
        assert application_keys() == (
            "matching", "cliques", "clique-tables",
            "coloring-explicit", "coloring-implicit",
        )

    @pytest.mark.parametrize("key", application_keys())
    def test_every_application_constructs_and_updates(self, key):
        driver, app = make_application(key, n_hint=64)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2), (3, 4)]))
        assert driver.plds.num_edges == 4
        assert app is driver.app

    def test_matching_behaviour_through_registry(self):
        driver, matching = make_application("matching", n_hint=32)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (3, 4)]))
        assert sorted(matching.matching()) == [(0, 1), (3, 4)]

    def test_unknown_application_error_lists_valid_keys(self):
        with pytest.raises(ValueError, match="matching"):
            application_spec("nope")

    def test_duplicate_application_rejected(self):
        spec = ApplicationSpec(
            key="matching", summary="dup", factory=lambda n, **kw: (None, None)
        )
        with pytest.raises(ValueError, match="already registered"):
            register_application(spec)
