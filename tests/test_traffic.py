"""Tests for the multi-tenant traffic layer and the soak harness.

Covers the workload registry, tenant/mix validation, the admission
controller (token buckets, shedding, backpressure hysteresis, degraded
tightening), the service-level submit path, and the SoakRunner's SLO
artifact — including the bit-identical-replay and zero-consistency-
violation acceptance gates.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import faults
from repro.graphs.streams import Batch
from repro.registry import make_workload, workload_keys
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    AuditPolicy,
    CoreService,
    LoadSignals,
    TenantQuota,
)
from repro.traffic import (
    SoakConfig,
    SoakRunner,
    StallWindow,
    TenantSpec,
    TrafficMix,
    default_mix,
)
from repro.traffic.tenants import next_arrival_gap, pick_read_vertex

pytestmark = pytest.mark.soak


# ---------------------------------------------------------------------------
# Workload registry
# ---------------------------------------------------------------------------


class TestWorkloadRegistry:
    def test_all_keys_registered(self):
        assert workload_keys() == ("cycle", "cascade", "clique", "star", "churn")

    def test_adversarial_filter(self):
        assert "churn" not in workload_keys(adversarial=True)
        assert workload_keys(adversarial=False) == ("churn",)

    def test_unknown_key_names_choices(self):
        with pytest.raises(ValueError, match="cycle"):
            make_workload("nope", 10, 4)

    def test_adversarial_workloads_produce_batches(self):
        for key in workload_keys(adversarial=True):
            initial, batches = make_workload(key, 10, 3)
            assert batches, key
            assert all(isinstance(b, Batch) for b in batches)

    def test_churn_workload_is_seeded(self):
        a = make_workload("churn", 30, 8, seed=5)
        b = make_workload("churn", 30, 8, seed=5)
        c = make_workload("churn", 30, 8, seed=6)
        assert a[0] == b[0]
        assert [bt.insertions for bt in a[1]] == [bt.insertions for bt in b[1]]
        assert [bt.insertions for bt in a[1]] != [bt.insertions for bt in c[1]]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            make_workload("cycle", 0, 4)


# ---------------------------------------------------------------------------
# Tenant specs and arrival processes
# ---------------------------------------------------------------------------


class TestTenantSpec:
    def test_rejects_bad_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            TenantSpec(name="t", arrival="lumpy")

    def test_rejects_unregistered_workload(self):
        with pytest.raises(ValueError, match="workload"):
            TenantSpec(name="t", workload="nope")

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", read_fraction=1.5)

    def test_mix_rejects_duplicate_names(self):
        t = TenantSpec(name="t")
        with pytest.raises(ValueError, match="duplicate"):
            TrafficMix(tenants=(t, t))

    def test_default_mix_is_diverse(self):
        mix = default_mix(4)
        names = [t.name for t in mix.tenants]
        assert len(set(names)) == 4
        arrivals = {t.arrival for t in mix.tenants}
        assert "bursty" in arrivals and "poisson" in arrivals

    def test_arrival_gaps_are_seeded(self):
        spec = TenantSpec(name="t", rate=0.1, arrival="bursty")
        a = [next_arrival_gap(spec, random.Random(1), float(i)) for i in range(20)]
        b = [next_arrival_gap(spec, random.Random(1), float(i)) for i in range(20)]
        assert a == b

    def test_bursty_on_phase_is_faster(self):
        spec = TenantSpec(
            name="t", rate=0.1, arrival="bursty", period=100.0, duty_cycle=0.5
        )
        rng = random.Random(7)
        on = sum(next_arrival_gap(spec, rng, 10.0) for _ in range(300)) / 300
        off = sum(next_arrival_gap(spec, rng, 60.0) for _ in range(300)) / 300
        assert on < off

    def test_hot_key_skew_concentrates(self):
        spec_flat = TenantSpec(name="a", hot_key_skew=0.0)
        spec_hot = TenantSpec(name="b", hot_key_skew=4.0)
        rng = random.Random(3)
        flat = sum(pick_read_vertex(spec_flat, rng, 1000) for _ in range(500))
        hot = sum(pick_read_vertex(spec_hot, rng, 1000) for _ in range(500))
        assert hot < flat / 2
        assert all(
            0 <= pick_read_vertex(spec_hot, rng, 7) < 7 for _ in range(50)
        )


# ---------------------------------------------------------------------------
# Admission controller
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_bucket_rejects_then_refills(self):
        ctl = AdmissionController(default_quota=TenantQuota(rate=1.0, burst=2.0))
        assert ctl.admit("t", now=0.0, cost=2.0).admitted
        rejected = ctl.admit("t", now=0.0, cost=2.0)
        assert rejected.outcome == "rejected"
        assert rejected.retry_after == pytest.approx(2.0)
        # At the hinted time the bucket holds exactly enough again.
        assert ctl.admit("t", now=rejected.retry_after, cost=2.0).admitted

    def test_float_dust_deficit_still_admits(self):
        """Refill rounding must not starve an affordable request.

        A deficit of ~1e-12 tokens used to produce a subnormal
        retry_after that could not advance simulated time — an infinite
        retry storm at one frozen instant (Zeno's revenge).
        """
        ctl = AdmissionController(default_quota=TenantQuota(rate=2.0, burst=8.0))
        ctl._bucket("t", 0.0).tokens = 8.0 - 1e-12
        assert ctl.admit("t", now=0.0, cost=8.0).admitted
        assert ctl._bucket("t", 0.0).tokens == 0.0

    def test_cost_beyond_burst_is_hopeless(self):
        ctl = AdmissionController(default_quota=TenantQuota(rate=1.0, burst=2.0))
        decision = ctl.admit("t", now=0.0, cost=5.0)
        assert decision.outcome == "rejected"
        assert decision.retry_after == float("inf")

    def test_queue_bound_sheds_writes_only(self):
        ctl = AdmissionController(AdmissionPolicy(queue_limit=3))
        shed = ctl.admit("t", now=0.0, cost=1.0, queue_depth=3)
        assert shed.outcome == "shed"
        assert shed.retry_after == ctl.policy.shed_retry_after
        read = ctl.admit("t", now=0.0, cost=1.0, kind="read", queue_depth=99)
        assert read.admitted

    def test_backpressure_tightens_queue_bound(self):
        ctl = AdmissionController(
            AdmissionPolicy(queue_limit=10, backpressure_queue_limit=2)
        )
        assert ctl.admit("t", now=0.0, cost=1.0, queue_depth=5).admitted
        ctl.observe(LoadSignals(shard_lag=99999), now=1.0)
        assert ctl.admit("t", now=1.0, cost=1.0, queue_depth=5).outcome == "shed"

    def test_degraded_halves_refill_rate(self):
        policy = AdmissionPolicy(degraded_factor=0.5)
        healthy = AdmissionController(
            policy, default_quota=TenantQuota(rate=1.0, burst=1.0)
        )
        degraded = AdmissionController(
            policy, default_quota=TenantQuota(rate=1.0, burst=1.0)
        )
        healthy.admit("t", now=0.0, cost=1.0)
        degraded.admit("t", now=0.0, cost=1.0, degraded=True)
        r_h = healthy.admit("t", now=0.0, cost=1.0).retry_after
        r_d = degraded.admit("t", now=0.0, cost=1.0, degraded=True).retry_after
        assert r_d == pytest.approx(2.0 * r_h)

    def test_hysteretic_release(self):
        ctl = AdmissionController(
            AdmissionPolicy(lag_threshold=100, release_after=3)
        )
        assert ctl.observe(LoadSignals(shard_lag=500), now=1.0)
        assert ctl.engaged_count == 1
        # Two healthy batches are not enough; the third releases.
        assert ctl.observe(LoadSignals(shard_lag=0), now=2.0)
        assert ctl.observe(LoadSignals(shard_lag=0), now=3.0)
        assert not ctl.observe(LoadSignals(shard_lag=0), now=4.0)
        assert ctl.pressure_time(now=9.0) == pytest.approx(3.0)
        # An unhealthy signal mid-streak resets the countdown.
        ctl.observe(LoadSignals(shard_lag=500), now=5.0)
        ctl.observe(LoadSignals(shard_lag=0), now=6.0)
        assert ctl.observe(LoadSignals(shard_lag=500), now=7.0)
        assert ctl.engaged_count == 2

    def test_every_outcome_accounted(self):
        ctl = AdmissionController(
            AdmissionPolicy(queue_limit=1),
            default_quota=TenantQuota(rate=1.0, burst=1.0),
        )
        ctl.admit("t", now=0.0, cost=1.0)
        ctl.admit("t", now=0.0, cost=1.0)
        ctl.admit("t", now=0.0, cost=1.0, queue_depth=5)
        ctl.admit("t", now=0.0, cost=1.0, kind="read")
        assert ctl.outcome_counts("t", "write") == {
            "admitted": 1, "rejected": 1, "shed": 1,
        }
        assert ctl.outcome_counts("t", "read") == {"rejected": 1}


# ---------------------------------------------------------------------------
# Service-level submit / admit_read
# ---------------------------------------------------------------------------


def _edges(n: int = 40) -> list[tuple[int, int]]:
    from repro.graphs.generators import barabasi_albert

    return barabasi_albert(n, 3, seed=9)


class TestServiceSubmit:
    def test_no_controller_admits_unconditionally(self):
        svc = CoreService("pldsopt", n_hint=64)
        decision = svc.submit(Batch(insertions=_edges()[:10]))
        assert decision.admitted
        assert decision.telemetry is not None
        assert svc.batches_applied == 1

    def test_rejected_batch_never_reaches_engine(self):
        svc = CoreService(
            "pldsopt",
            n_hint=64,
            admission=AdmissionController(
                default_quota=TenantQuota(rate=0.001, burst=1.0)
            ),
        )
        decision = svc.submit(Batch(insertions=_edges()[:10]), tenant="t")
        assert decision.outcome == "rejected"
        assert decision.telemetry is None
        assert svc.batches_applied == 0
        assert svc.num_edges == 0

    def test_degradation_ladder_tightens_admission(self):
        """When the audit fires, the refill rate drops by degraded_factor."""
        svc = CoreService(
            "plds",
            n_hint=1024,
            audit=AuditPolicy("every"),
            admission=AdmissionController(
                AdmissionPolicy(write_cost=4.0, degraded_factor=0.5),
                default_quota=TenantQuota(rate=1.0, burst=4.0),
            ),
        )
        edges = _edges(60)
        assert svc.submit(Batch(insertions=edges[:30]), now=0.0).admitted
        # Desynchronize the engine from the mirror behind the service's
        # back; the next audited apply degrades (ladder rung 1).
        svc._adapter.update(Batch(insertions=[(900, 901)]))
        assert svc.submit(Batch(insertions=edges[30:40]), now=4.0).admitted
        assert svc.degraded
        # Bucket is now empty; while degraded the deficit refills at half
        # rate, so the hint is twice the healthy wait.
        hint = svc.submit(Batch(insertions=edges[40:50]), now=4.0).retry_after
        assert hint == pytest.approx(8.0)  # 4 tokens at 0.5/s, not 4.0s

    def test_read_admission_accounted(self):
        svc = CoreService(
            "pldsopt",
            n_hint=64,
            admission=AdmissionController(
                default_quota=TenantQuota(rate=1.0, burst=1.0)
            ),
        )
        assert svc.admit_read("t", now=0.0).admitted
        assert svc.admit_read("t", now=0.0).outcome == "rejected"
        assert svc.admission.outcome_counts("t", "read") == {
            "admitted": 1, "rejected": 1,
        }


# ---------------------------------------------------------------------------
# Backpressure end to end: slow shard in, backpressure on, recovery out
# ---------------------------------------------------------------------------


class TestSlowShardBackpressure:
    def test_engages_and_releases(self):
        ctl = AdmissionController(
            AdmissionPolicy(lag_threshold=2000, release_after=2),
            default_quota=TenantQuota(rate=1000.0, burst=1000.0),
        )
        svc = CoreService("plds-sharded", n_hint=64, shards=4, admission=ctl)
        edges = _edges(60)
        chunks = [edges[i:i + 10] for i in range(0, 60, 10)]
        plan = faults.FaultPlan()
        with faults.active(plan):
            assert svc.submit(Batch(insertions=chunks[0]), now=0.0).admitted
            assert not ctl.backpressure
            # One shard per scatter now stalls: lag spikes past threshold.
            point = plan.stall(
                "shard.apply", 5000, every=svc.engine.num_shards
            )
            svc.submit(Batch(insertions=chunks[1]), now=1.0)
            assert ctl.backpressure
            assert ctl.engaged_count == 1
            assert svc.load_signals().shard_lag >= 2000
            # Slow shard recovers; hysteresis holds one batch, then lets go.
            plan.end_stall(point)
            svc.submit(Batch(insertions=chunks[2]), now=2.0)
            assert ctl.backpressure
            svc.submit(Batch(insertions=chunks[3]), now=3.0)
            assert not ctl.backpressure
        assert plan.stalled_hits >= 1
        assert ctl.pressure_time(now=3.0) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# SoakRunner: the SLO artifact and its acceptance gates
# ---------------------------------------------------------------------------


def _small_config(**overrides) -> SoakConfig:
    defaults = dict(
        mix=default_mix(2, rate=0.08),
        horizon=200.0,
        seed=4,
        label="test",
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestSoakRunner:
    def test_same_seed_bit_identical_artifact(self):
        a = SoakRunner(_small_config()).run()
        b = SoakRunner(_small_config()).run()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_differs(self):
        a = SoakRunner(_small_config()).run()
        b = SoakRunner(_small_config(seed=5)).run()
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_chaos_armed_run_stays_consistent(self):
        report = SoakRunner(_small_config(fault_rate=0.2, seed=2)).run()
        assert report["ok"]
        assert report["faults"]["fired"] >= 1
        cons = report["consistency"]
        assert cons["reads_probed"] > 0
        assert cons["reads_consistent"] == cons["reads_probed"]
        assert cons["max_staleness"] <= 1
        assert report["totals"]["errors"] == 0

    def test_quota_exhausted_tenant_is_isolated(self):
        starved = TenantSpec(
            name="starved",
            rate=0.1,
            read_fraction=0.0,
            quota=TenantQuota(rate=0.001, burst=1.0),  # burst < batch cost
        )
        healthy = TenantSpec(name="healthy", rate=0.05, read_fraction=0.3)
        report = SoakRunner(
            SoakConfig(
                mix=TrafficMix(tenants=(starved, healthy)),
                horizon=300.0,
                seed=1,
            )
        ).run()
        s = report["tenants"]["starved"]["writes"]
        h = report["tenants"]["healthy"]["writes"]
        assert s["admitted"] == 0
        assert s["rejected"] > 0
        assert h["admitted"] > 0 and h["rejected"] == 0
        assert report["accounting_ok"]
        assert report["ok"]

    def test_stall_window_engages_backpressure(self):
        report = SoakRunner(
            SoakConfig(
                mix=default_mix(2, rate=0.1),
                horizon=500.0,
                seed=11,
                shards=4,
                stall=StallWindow(start=100.0, end=400.0, depth=4000),
            )
        ).run()
        assert report["faults"]["stalled_hits"] >= 1
        assert report["backpressure"]["engaged_count"] >= 1
        assert report["ok"]

    def test_partial_report_is_marked_interrupted(self):
        runner = SoakRunner(_small_config())
        report = runner.report(True)
        assert report["interrupted"]
        assert not report["ok"]
        # Not yet run: the artifact is still structurally complete.
        assert set(report) >= {"tenants", "totals", "consistency", "config"}

    def test_artifact_has_no_wall_clock_fields(self):
        report = SoakRunner(_small_config(horizon=60.0)).run()
        text = json.dumps(report)
        assert "wall" not in text
