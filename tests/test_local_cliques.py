"""Tests for per-vertex (local) clique counting and clustering coefficients."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.framework import create_clique_driver
from repro.graphs.generators import erdos_renyi, planted_clique
from repro.graphs.streams import Batch


class TestLocalTriangleCounts:
    def test_single_triangle(self):
        driver, c = create_clique_driver(n_hint=10, k=3, track_local=True)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2), (2, 3)]))
        assert c.local_count(0) == 1
        assert c.local_count(2) == 1
        assert c.local_count(3) == 0

    def test_matches_networkx_under_churn(self):
        rng = random.Random(2)
        pool = erdos_renyi(40, 240, seed=2)
        driver, c = create_clique_driver(n_hint=50, k=3, track_local=True)
        current: set = set()
        for step in range(12):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(25, len(avail)))
            dels = rng.sample(sorted(current), min(12, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            G = nx.Graph(sorted(current))
            expected = nx.triangles(G)
            for v in G.nodes:
                assert c.local_count(v) == expected[v], (step, v)

    def test_local_recount_oracle_agrees(self):
        driver, c = create_clique_driver(n_hint=40, k=3, track_local=True)
        driver.update(Batch(insertions=erdos_renyi(30, 160, seed=3)))
        assert c.local_counts == c.local_recount()

    def test_sum_of_locals_is_k_times_count(self):
        driver, c = create_clique_driver(n_hint=40, k=3, track_local=True)
        driver.update(Batch(insertions=erdos_renyi(30, 160, seed=4)))
        assert sum(c.local_counts.values()) == 3 * c.count

    def test_k4_local_counts(self):
        edges = planted_clique(30, 40, 6, seed=5)
        driver, c = create_clique_driver(n_hint=40, k=4, track_local=True)
        for i in range(0, len(edges), 30):
            driver.update(Batch(insertions=edges[i : i + 30]))
        assert c.local_counts == c.local_recount()
        # every member of the planted K6 is in at least C(5,3)=10 K4s
        for v in range(6):
            assert c.local_count(v) >= 10

    def test_flip_heavy_workload_keeps_locals_exact(self):
        driver, c = create_clique_driver(n_hint=30, k=3, track_local=True)
        n = 10
        all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng = random.Random(7)
        rng.shuffle(all_edges)
        for i in range(0, len(all_edges), 9):
            driver.update(Batch(insertions=all_edges[i : i + 9]))
            assert c.local_counts == c.local_recount()


class TestClusteringCoefficient:
    def test_triangle_has_coefficient_one(self):
        driver, c = create_clique_driver(n_hint=10, k=3, track_local=True)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
        assert c.clustering_coefficient(0) == 1.0

    def test_star_center_zero(self):
        driver, c = create_clique_driver(n_hint=10, k=3, track_local=True)
        driver.update(Batch(insertions=[(0, 1), (0, 2), (0, 3)]))
        assert c.clustering_coefficient(0) == 0.0

    def test_degree_below_two_zero(self):
        driver, c = create_clique_driver(n_hint=10, k=3, track_local=True)
        driver.update(Batch(insertions=[(0, 1)]))
        assert c.clustering_coefficient(0) == 0.0

    def test_matches_networkx(self):
        edges = erdos_renyi(40, 200, seed=6)
        driver, c = create_clique_driver(n_hint=50, k=3, track_local=True)
        driver.update(Batch(insertions=edges))
        G = nx.Graph(edges)
        expected = nx.clustering(G)
        for v in G.nodes:
            assert c.clustering_coefficient(v) == pytest.approx(expected[v])

    def test_requires_k3(self):
        driver, c = create_clique_driver(n_hint=10, k=4, track_local=True)
        with pytest.raises(RuntimeError):
            c.clustering_coefficient(0)

    def test_requires_track_local(self):
        driver, c = create_clique_driver(n_hint=10, k=3)
        with pytest.raises(RuntimeError):
            c.local_count(0)
        with pytest.raises(RuntimeError):
            c.clustering_coefficient(0)
