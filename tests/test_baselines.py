"""Tests for the Sun/Hua/Zhang baseline reimplementations."""

from __future__ import annotations

import random

import pytest

from repro.baselines.hua import HuaExactBatchDynamic
from repro.baselines.sun import SunApproxDynamic
from repro.baselines.traversal import TraversalCoreMaintenance
from repro.baselines.zhang import ZhangExactDynamic
from repro.graphs.generators import barabasi_albert, erdos_renyi, ring_of_cliques
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness


class TestTraversalExactness:
    def test_insert_promotes_subcore(self):
        # Completing a triangle promotes all three vertices to core 2.
        t = TraversalCoreMaintenance()
        t.initialize([(0, 1), (1, 2)])
        assert t.coreness(0) == 1
        t.insert_edge(0, 2)
        assert [t.coreness(v) for v in (0, 1, 2)] == [2, 2, 2]

    def test_delete_demotes(self):
        t = TraversalCoreMaintenance()
        t.initialize([(0, 1), (1, 2), (0, 2)])
        t.delete_edge(0, 1)
        assert [t.coreness(v) for v in (0, 1, 2)] == [1, 1, 1]

    def test_cycle_adversary(self):
        # Paper Section 3: toggling one cycle edge flips every coreness.
        n = 40
        cyc = [(min(i, (i + 1) % n), max(i, (i + 1) % n)) for i in range(n)]
        t = TraversalCoreMaintenance()
        t.initialize(cyc)
        assert all(t.coreness(v) == 2 for v in range(n))
        t.delete_edge(*cyc[0])
        assert all(t.coreness(v) == 1 for v in range(n))
        t.insert_edge(*cyc[0])
        assert all(t.coreness(v) == 2 for v in range(n))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exact_under_random_churn(self, seed):
        rng = random.Random(seed)
        edges = erdos_renyi(60, 220, seed=seed)
        t = TraversalCoreMaintenance()
        t.initialize(edges[:110])
        current = set(edges[:110])
        pool = list(edges[110:])
        for step in range(120):
            if pool and (not current or rng.random() < 0.55):
                e = pool.pop()
                t.insert_edge(*e)
                current.add(e)
            else:
                e = rng.choice(sorted(current))
                current.discard(e)
                pool.append(e)
                t.delete_edge(*e)
            if step % 40 == 0:
                expected = exact_coreness(sorted(current))
                got = {v: t.coreness(v) for v in expected}
                assert got == expected, step

    def test_new_vertex_insertion(self):
        t = TraversalCoreMaintenance()
        t.initialize([(0, 1)])
        t.insert_edge(1, 99)
        assert t.coreness(99) == 1


class TestZhang:
    def test_batch_update_exact(self):
        edges = barabasi_albert(100, 3, seed=1)
        z = ZhangExactDynamic()
        z.initialize(edges[:150])
        z.update(Batch(insertions=edges[150:250], deletions=edges[:40]))
        expected = exact_coreness(edges[40:250])
        got = {v: z.coreness(v) for v in expected}
        assert got == expected

    def test_sequential_depth_equals_work(self):
        z = ZhangExactDynamic()
        z.initialize(erdos_renyi(50, 150, seed=2))
        z.update(Batch(insertions=[(0, 49)]))
        assert z.tracker.depth == z.tracker.work

    def test_space_positive(self):
        z = ZhangExactDynamic()
        z.initialize([(0, 1)])
        assert z.space_bytes() > 0


class TestHua:
    def test_batch_update_exact(self):
        edges = barabasi_albert(100, 3, seed=4)
        h = HuaExactBatchDynamic()
        h.initialize(edges[:150])
        h.update(Batch(insertions=edges[150:250], deletions=edges[:40]))
        expected = exact_coreness(edges[40:250])
        got = {v: h.coreness(v) for v in expected}
        assert got == expected

    def test_rounds_depth_below_work(self):
        h = HuaExactBatchDynamic()
        h.initialize(erdos_renyi(80, 320, seed=3))
        before = h.tracker.cost
        h.update(Batch(insertions=[(0, 79), (1, 78)]))
        delta_work = h.tracker.work - before.work
        delta_depth = h.tracker.depth - before.depth
        assert delta_depth <= delta_work

    def test_corenesses_dict(self):
        h = HuaExactBatchDynamic()
        h.initialize([(0, 1), (1, 2), (0, 2)])
        assert h.corenesses() == {0: 2, 1: 2, 2: 2}


class TestSun:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            SunApproxDynamic(10, eps=0)

    def test_estimates_bounded_error_insertions(self):
        edges = barabasi_albert(200, 4, seed=5)
        s = SunApproxDynamic(n_hint=200, eps=1.0, lam=1.0)
        s.initialize(edges[:400])
        for i in range(400, len(edges), 50):
            s.update(Batch(insertions=edges[i : i + 50]))
        exact = exact_coreness(edges)
        for v, k in exact.items():
            if k == 0:
                continue
            est = s.coreness_estimate(v)
            assert est > 0
            assert max(est / k, k / est) <= (2 + 1.0) * (1 + 1.0), (v, est, k)

    def test_estimates_bounded_error_deletions(self):
        edges = erdos_renyi(120, 500, seed=6)
        s = SunApproxDynamic(n_hint=120, eps=1.0, lam=1.0)
        s.initialize(edges)
        for i in range(0, 250, 50):
            s.update(Batch(deletions=edges[i : i + 50]))
        exact = exact_coreness(edges[250:])
        for v, k in exact.items():
            if k == 0:
                continue
            est = s.coreness_estimate(v)
            assert est > 0
            assert max(est / k, k / est) <= (2 + 1.0) * (1 + 1.0), (v, est, k)

    def test_repair_matches_full_simulation(self):
        # Incremental worklist repair must land on the same fixpoint the
        # from-scratch elimination simulation computes.
        edges = erdos_renyi(60, 220, seed=7)
        inc = SunApproxDynamic(n_hint=60, eps=1.0, lam=1.0)
        inc.initialize(edges[:110])
        for i in range(110, 220, 20):
            inc.update(Batch(insertions=edges[i : i + 20]))
        scratch = SunApproxDynamic(n_hint=60, eps=1.0, lam=1.0)
        scratch.initialize(edges)
        assert inc.coreness_estimates() == scratch.coreness_estimates()

    def test_isolated_vertex_zero(self):
        s = SunApproxDynamic(n_hint=10)
        s.initialize([(0, 1)])
        s.update(Batch(deletions=[(0, 1)]))
        assert s.coreness_estimate(0) == 0.0

    def test_sequential_depth_equals_work(self):
        s = SunApproxDynamic(n_hint=20)
        s.initialize(erdos_renyi(20, 40, seed=8))
        assert s.tracker.depth == s.tracker.work

    def test_space_positive(self):
        s = SunApproxDynamic(n_hint=20)
        s.initialize([(0, 1)])
        assert s.space_bytes() > 0
