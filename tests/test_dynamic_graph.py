"""Unit tests for the dynamic graph substrate."""

from __future__ import annotations

import pytest

from repro.graphs.dynamic_graph import DynamicGraph, canonical_edge


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_idempotent(self):
        assert canonical_edge(*canonical_edge(9, 1)) == (1, 9)


class TestEdges:
    def test_insert_and_query(self):
        g = DynamicGraph()
        g.insert_edge(1, 2)
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_construct_from_edges(self):
        g = DynamicGraph([(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_self_loop_rejected(self):
        g = DynamicGraph()
        with pytest.raises(ValueError):
            g.insert_edge(3, 3)

    def test_duplicate_rejected(self):
        g = DynamicGraph([(1, 2)])
        with pytest.raises(ValueError):
            g.insert_edge(2, 1)

    def test_delete(self):
        g = DynamicGraph([(1, 2)])
        g.delete_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 0

    def test_delete_missing_raises(self):
        g = DynamicGraph()
        with pytest.raises(ValueError):
            g.delete_edge(1, 2)

    def test_edges_iteration_canonical_unique(self):
        g = DynamicGraph([(2, 1), (3, 1)])
        assert sorted(g.edges()) == [(1, 2), (1, 3)]

    def test_degree_and_neighbors(self):
        g = DynamicGraph([(0, 1), (0, 2)])
        assert g.degree(0) == 2
        assert g.neighbors(0) == {1, 2}
        assert g.degree(99) == 0

    def test_max_degree(self):
        g = DynamicGraph([(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert DynamicGraph().max_degree() == 0


class TestVertices:
    def test_add_isolated_vertex(self):
        g = DynamicGraph()
        g.add_vertex(7)
        assert g.has_vertex(7)
        assert g.num_vertices == 1
        assert g.degree(7) == 0

    def test_add_vertex_idempotent(self):
        g = DynamicGraph([(7, 8)])
        g.add_vertex(7)
        assert g.degree(7) == 1

    def test_remove_vertex_returns_edges(self):
        g = DynamicGraph([(0, 1), (0, 2), (1, 2)])
        removed = g.remove_vertex(0)
        assert sorted(removed) == [(0, 1), (0, 2)]
        assert g.num_edges == 1
        assert not g.has_vertex(0)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            DynamicGraph().remove_vertex(1)


class TestCopy:
    def test_copy_is_independent(self):
        g = DynamicGraph([(0, 1)])
        h = g.copy()
        h.insert_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
