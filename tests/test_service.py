"""Tests for the batch-serving layer (`repro.service.CoreService`)."""

from __future__ import annotations

import pytest

from repro.core.plds import PLDS
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch, EdgeUpdate, insertion_batches
from repro.parallel.scheduler import BrentScheduler
from repro.service import CoreService, ServiceSnapshot
from repro.static_kcore.exact import exact_coreness

EDGES = barabasi_albert(120, 3, seed=5)
BATCHES = insertion_batches(EDGES, 60, seed=0)


def _loaded_service(algorithm: str = "plds", **kwargs) -> CoreService:
    svc = CoreService(algorithm, n_hint=130, **kwargs)
    for b in BATCHES:
        svc.apply_batch(b)
    return svc


class TestBatchApply:
    def test_round_trip_agrees_with_direct_plds(self):
        """Service-applied batches match a hand-driven PLDS bit-for-bit:
        same coreness estimates and same metered (work, depth) deltas."""
        svc = CoreService("plds", n_hint=130)
        plds = PLDS(n_hint=130)
        for batch in BATCHES:
            before = plds.tracker.cost
            plds.update(batch)
            delta = plds.tracker.delta(before)
            t = svc.apply_batch(batch)
            assert (t.work, t.depth) == (delta.work, delta.depth)
            assert svc.coreness_map() == plds.coreness_estimates()

    def test_mirror_tracks_graph(self):
        svc = _loaded_service()
        assert svc.num_edges == len(EDGES)
        assert svc.has_edge(*EDGES[0])
        svc.apply_batch(Batch(deletions=[EDGES[0]]))
        assert not svc.has_edge(*EDGES[0])
        assert svc.num_edges == len(EDGES) - 1

    def test_raw_updates_are_preprocessed(self):
        svc = CoreService("plds", n_hint=20)
        t = svc.apply_updates([
            EdgeUpdate(0, 1, True, timestamp=0),
            EdgeUpdate(1, 0, True, timestamp=1),    # duplicate edge: collapsed
            EdgeUpdate(2, 3, True, timestamp=0),
            EdgeUpdate(2, 3, False, timestamp=1),   # latest wins: no-op overall
            EdgeUpdate(4, 4, True, timestamp=0),    # self-loop: dropped
            EdgeUpdate(5, 6, False, timestamp=0),   # delete of absent edge
        ])
        assert (t.insertions, t.deletions) == (1, 0)
        assert svc.has_edge(0, 1) and not svc.has_edge(2, 3)

    def test_invalid_explicit_batch_leaves_state_untouched(self):
        svc = CoreService("plds", n_hint=20)
        svc.apply_batch(Batch(insertions=[(0, 1)]))
        with pytest.raises(ValueError):
            svc.apply_batch(Batch(insertions=[(0, 1)]))  # duplicate edge
        assert svc.num_edges == 1
        assert svc.batches_applied == 1


class TestTelemetry:
    def test_per_batch_fields(self):
        svc = _loaded_service(threads=60)
        assert len(svc.telemetry) == len(BATCHES)
        for i, t in enumerate(svc.telemetry, start=1):
            assert t.batch_id == i
            assert t.work > 0 and t.depth > 0
            assert t.wall_seconds >= 0
            assert t.threads == 60
            assert t.t_p == pytest.approx(t.work / 60 + t.depth)
        total = svc.total_cost
        assert total.work == sum(t.work for t in svc.telemetry)

    def test_sequential_engine_reads_time_at_one_thread(self):
        svc = CoreService("lds", n_hint=130, threads=60)
        t = svc.apply_batch(BATCHES[0])
        assert t.threads == 1
        assert t.t_p == pytest.approx(t.work + t.depth)

    def test_custom_scheduler(self):
        sched = BrentScheduler(hyperthread_cores=30, hyperthread_yield=0.5)
        svc = CoreService("plds", n_hint=130, threads=60, scheduler=sched)
        t = svc.apply_batch(BATCHES[0])
        assert t.t_p == pytest.approx(t.work / 45 + t.depth)


class TestQueries:
    def test_coreness_matches_map(self):
        svc = _loaded_service()
        cmap = svc.coreness_map()
        for v in list(cmap)[:10]:
            assert svc.coreness(v) == cmap[v]
        assert svc.coreness(10**9) == 0.0

    def test_core_members_superset_of_true_core(self):
        svc = _loaded_service()
        truth = exact_coreness(EDGES)
        k = max(truth.values())
        true_core = {v for v, c in truth.items() if c >= k}
        assert true_core <= svc.core_members(k)

    def test_core_subgraph_is_exact(self):
        svc = _loaded_service()
        truth = exact_coreness(EDGES)
        k = max(truth.values())
        vs, sub_edges = svc.core_subgraph(k)
        assert vs == {v for v, c in truth.items() if c >= k}
        assert all(u in vs and v in vs for u, v in sub_edges)

    def test_exact_engine_core_members(self):
        svc = _loaded_service("zhang")
        truth = exact_coreness(EDGES)
        assert svc.core_members(2) == {v for v, c in truth.items() if c >= 2}


class TestSnapshots:
    def test_snapshot_reads_stay_consistent_while_batches_apply(self):
        svc = CoreService("plds", n_hint=130)
        svc.apply_batch(BATCHES[0])
        snap = svc.snapshot()
        frozen = snap.coreness_map()
        for b in BATCHES[1:]:
            svc.apply_batch(b)
        assert snap.coreness_map() == frozen
        assert snap.batches_applied == 1
        assert len(snap.edges) == len(BATCHES[0].insertions)

    def test_restore_plds_is_bit_identical(self):
        svc = _loaded_service("plds")
        snap = svc.snapshot()
        assert snap.engine_state is not None  # exact structural snapshot
        svc.apply_batch(Batch(deletions=list(EDGES[:250])))
        assert svc.coreness_map() != snap.coreness_map()
        svc.restore(snap)
        assert svc.coreness_map() == snap.coreness_map()
        assert svc.num_edges == len(snap.edges)
        assert svc.batches_applied == snap.batches_applied
        # The restored engine's own snapshot reproduces the stored state.
        assert svc.snapshot().engine_state == snap.engine_state

    def test_restore_by_replay_for_exact_engine(self):
        svc = _loaded_service("zhang")
        snap = svc.snapshot()
        assert snap.engine_state is None  # no structural snapshot: replay
        svc.apply_batch(Batch(deletions=list(EDGES[:30])))
        svc.restore(snap)
        assert svc.coreness_map() == snap.coreness_map()

    def test_restore_rejects_foreign_snapshot(self):
        svc = CoreService("plds", n_hint=130)
        other = CoreService("zhang", n_hint=130)
        other.apply_batch(Batch(insertions=[(0, 1)]))
        with pytest.raises(ValueError, match="zhang"):
            svc.restore(other.snapshot())

    def test_snapshot_ids_increment(self):
        svc = CoreService("plds", n_hint=16)
        assert [svc.snapshot().snapshot_id for _ in range(3)] == [1, 2, 3]


class TestApplicationHosting:
    def test_matching_app_served(self):
        svc = CoreService(application="matching", n_hint=64)
        svc.apply_batch(Batch(insertions=[(0, 1), (1, 2), (3, 4)]))
        assert sorted(svc.application.matching()) == [(0, 1), (3, 4)]
        assert svc.coreness(0) >= 1.0
        assert svc.telemetry[0].work > 0

    def test_cliques_app_served(self):
        svc = CoreService(application="cliques", n_hint=64, k=3)
        svc.apply_batch(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
        assert svc.application.count == 1

    def test_application_restore_replays(self):
        svc = CoreService(application="matching", n_hint=64)
        svc.apply_batch(Batch(insertions=[(0, 1), (1, 2), (3, 4)]))
        snap = svc.snapshot()
        svc.apply_batch(Batch(insertions=[(5, 6)]))
        svc.restore(snap)
        assert svc.num_edges == 3
        # The replayed app is again a maximal matching of the same graph.
        matched = sorted(svc.application.matching())
        assert matched == [(0, 1), (3, 4)] or matched == [(1, 2), (3, 4)]


class TestGoldenDispatchParity:
    """The registry dispatch path is observationally identical to direct
    construction — the same guarantee tests/test_golden_parity.py pins
    for the structures themselves."""

    def test_adapter_and_direct_plds_costs_match(self):
        from repro.registry import make_adapter

        adapter = make_adapter("plds", n_hint=130)
        plds = PLDS(n_hint=130)
        for b in BATCHES:
            adapter.update(b)
            plds.update(b)
        assert adapter.estimates() == plds.coreness_estimates()
        assert adapter.cost == plds.tracker.cost
