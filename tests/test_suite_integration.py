"""Suite-wide integration: every framework app over every analog dataset.

The heavyweight cross-product smoke: for each of the 11 dataset analogs
(at a small scale), run a mixed churn through the PLDS and one framework
application, verifying correctness oracles at the end.  Catches
interactions that per-module tests miss (e.g. dense brain-analog levels
vs road-analog levels exercising different group ranges).
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.framework import (
    create_clique_driver,
    create_explicit_coloring_driver,
    create_matching_driver,
)
from repro.graphs.generators import dataset_suite
from repro.graphs.streams import Batch

SUITE = dataset_suite(scale=0.08, seed=7)


def churn(driver, edges, seed=0, rounds=4):
    rng = random.Random(seed)
    current: set = set()
    order = list(edges)
    rng.shuffle(order)
    step = max(1, len(order) // rounds)
    for i in range(0, len(order), step):
        ins = order[i : i + step]
        dels = rng.sample(sorted(current), min(len(current) // 4, step // 2))
        ins = [e for e in ins if e not in current]
        driver.update(Batch(insertions=ins, deletions=dels))
        current |= set(ins)
        current -= set(dels)
    return current


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.paper_name)
def test_matching_on_every_dataset(spec):
    driver, m = create_matching_driver(n_hint=spec.num_vertices + 1)
    churn(driver, spec.edges, seed=1)
    assert not m.violations(), spec.name
    assert not driver.plds.check_invariants(), spec.name


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.paper_name)
def test_triangles_on_every_dataset(spec):
    driver, c = create_clique_driver(n_hint=spec.num_vertices + 1, k=3)
    current = churn(driver, spec.edges, seed=2)
    G = nx.Graph(sorted(current))
    expected = sum(nx.triangles(G).values()) // 3
    assert c.count == expected, spec.name


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.paper_name)
def test_coloring_on_every_dataset(spec):
    driver, col = create_explicit_coloring_driver(n_hint=spec.num_vertices + 1)
    churn(driver, spec.edges, seed=3)
    assert not col.violations(), spec.name
