"""Tests for the sequential LDS baseline (paper Section 5.2)."""

from __future__ import annotations

from repro.core.invariants import approximation_violations
from repro.core.lds import LDS
from repro.graphs.generators import erdos_renyi, ring_of_cliques
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations


def build_lds(edges, **kwargs):
    lds = LDS(n_hint=max(max(e) for e in edges) + 1, **kwargs)
    for e in edges:
        lds.update(Batch(insertions=[e]))
    return lds


class TestLDSInvariants:
    def test_invariants_after_insertions(self):
        lds = build_lds(erdos_renyi(80, 320, seed=1))
        assert_no_violations(lds)

    def test_invariants_after_deletions(self):
        edges = erdos_renyi(80, 320, seed=1)
        lds = build_lds(edges)
        for e in edges[:160]:
            lds.update(Batch(deletions=[e]))
        assert_no_violations(lds)

    def test_batched_updates_accepted(self):
        # LDS accepts batches for interface parity; processes sequentially.
        edges = erdos_renyi(50, 150, seed=2)
        lds = LDS(n_hint=51)
        lds.update(Batch(insertions=edges))
        assert_no_violations(lds)
        assert lds.num_edges == 150


class TestLDSApproximation:
    def test_estimates_within_factor(self):
        edges = ring_of_cliques(6, 6)
        lds = build_lds(edges)
        exact = exact_coreness(edges)
        assert not approximation_violations(
            lds.coreness_estimates(), exact, lds.approximation_factor()
        )

    def test_matches_plds_estimates_on_same_input(self):
        # Same invariants, same estimate rule: LDS and PLDS may settle on
        # different levels, but both must satisfy the same guarantee.
        from .conftest import build_plds

        edges = erdos_renyi(80, 320, seed=3)
        exact = exact_coreness(edges)
        lds = build_lds(edges)
        plds = build_plds(edges)
        factor = lds.approximation_factor()
        assert not approximation_violations(lds.coreness_estimates(), exact, factor)
        assert not approximation_violations(plds.coreness_estimates(), exact, factor)


class TestLDSCost:
    def test_depth_equals_workish(self):
        # Sequential structure: metered depth tracks metered work closely.
        lds = build_lds(erdos_renyi(60, 240, seed=4))
        assert lds.tracker.depth > lds.tracker.work / 3

    def test_deletion_cascades_cost_more_than_plds(self):
        # Fig. 4's point: one-level-at-a-time cascades redo work that the
        # PLDS's single-shot desire-level moves avoid.
        from .conftest import build_plds

        edges = ring_of_cliques(10, 8)
        lds = build_lds(edges)
        plds = build_plds(edges, batch_size=len(edges))
        lds_before = lds.tracker.work
        plds_before = plds.tracker.work
        dels = edges[: len(edges) // 2]
        for e in dels:
            lds.update(Batch(deletions=[e]))
        plds.update(Batch(deletions=dels))
        lds_work = lds.tracker.work - lds_before
        plds_work = plds.tracker.work - plds_before
        assert plds_work < lds_work * 3  # PLDS is not asymptotically worse

    def test_orientation_supported(self):
        edges = erdos_renyi(40, 120, seed=5)
        lds = LDS(n_hint=41, track_orientation=True)
        res = lds.update(Batch(insertions=edges))
        assert len(res.oriented_insertions) == len(edges)
