"""Unit tests for update-stream generation and batch preprocessing."""

from __future__ import annotations

from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.streams import (
    Batch,
    EdgeUpdate,
    deletion_batches,
    insertion_batches,
    mixed_batch,
    preprocess_batch,
)

EDGES = erdos_renyi(60, 150, seed=3)


class TestInsertionBatches:
    def test_covers_all_edges_once(self):
        batches = insertion_batches(EDGES, 40, seed=1)
        flat = [e for b in batches for e in b.insertions]
        assert sorted(flat) == sorted(EDGES)

    def test_batch_sizes(self):
        batches = insertion_batches(EDGES, 40, seed=1)
        assert [len(b) for b in batches] == [40, 40, 40, 30]

    def test_temporal_preserves_order(self):
        batches = insertion_batches(EDGES, 50, temporal=True)
        flat = [e for b in batches for e in b.insertions]
        assert flat == list(EDGES)

    def test_shuffle_is_seeded(self):
        a = insertion_batches(EDGES, 40, seed=1)
        b = insertion_batches(EDGES, 40, seed=1)
        assert all(x.insertions == y.insertions for x, y in zip(a, b))

    def test_no_deletions(self):
        assert all(not b.deletions for b in insertion_batches(EDGES, 40))


class TestDeletionBatches:
    def test_covers_all_edges_once(self):
        batches = deletion_batches(EDGES, 33, seed=1)
        flat = [e for b in batches for e in b.deletions]
        assert sorted(flat) == sorted(EDGES)

    def test_no_insertions(self):
        assert all(not b.insertions for b in deletion_batches(EDGES, 33))


class TestMixedBatch:
    def test_half_and_half(self):
        initial, batch = mixed_batch(EDGES, 40, seed=1)
        assert len(batch.insertions) == 20
        assert len(batch.deletions) == 20

    def test_insertions_absent_from_initial(self):
        initial, batch = mixed_batch(EDGES, 40, seed=1)
        initial_set = set(initial)
        assert all(e not in initial_set for e in batch.insertions)

    def test_deletions_present_in_initial(self):
        initial, batch = mixed_batch(EDGES, 40, seed=1)
        initial_set = set(initial)
        assert all(e in initial_set for e in batch.deletions)

    def test_disjoint_insert_delete(self):
        _, batch = mixed_batch(EDGES, 40, seed=1)
        assert not (set(batch.insertions) & set(batch.deletions))


class TestPreprocessBatch:
    def test_latest_timestamp_wins(self):
        g = DynamicGraph()
        ups = [
            EdgeUpdate(1, 2, is_insert=True, timestamp=0),
            EdgeUpdate(2, 1, is_insert=False, timestamp=1),
        ]
        batch = preprocess_batch(g, ups)
        # final action is a delete of a non-existent edge -> dropped
        assert len(batch) == 0

    def test_insert_of_existing_edge_dropped(self):
        g = DynamicGraph([(1, 2)])
        batch = preprocess_batch(g, [EdgeUpdate(1, 2, True)])
        assert len(batch) == 0

    def test_delete_of_existing_edge_kept(self):
        g = DynamicGraph([(1, 2)])
        batch = preprocess_batch(g, [EdgeUpdate(2, 1, False)])
        assert batch.deletions == [(1, 2)]

    def test_valid_insert_kept(self):
        g = DynamicGraph()
        batch = preprocess_batch(g, [EdgeUpdate(3, 4, True)])
        assert batch.insertions == [(3, 4)]

    def test_duplicate_updates_collapse(self):
        g = DynamicGraph()
        ups = [
            EdgeUpdate(1, 2, True, timestamp=0),
            EdgeUpdate(1, 2, False, timestamp=1),
            EdgeUpdate(1, 2, True, timestamp=2),
        ]
        batch = preprocess_batch(g, ups)
        assert batch.insertions == [(1, 2)]
        assert not batch.deletions

    def test_batch_len(self):
        b = Batch(insertions=[(0, 1)], deletions=[(2, 3), (4, 5)])
        assert len(b) == 3

    def test_equal_timestamp_tie_breaks_on_submission_order(self):
        # Two updates for the same edge with the SAME timestamp: the one
        # submitted later must win, deterministically, in both orders.
        g = DynamicGraph()
        ins = EdgeUpdate(1, 2, True, timestamp=5)
        dele = EdgeUpdate(2, 1, False, timestamp=5)
        assert preprocess_batch(g, [dele, ins]).insertions == [(1, 2)]
        # insert then delete: final action deletes a non-existent edge
        assert len(preprocess_batch(g, [ins, dele])) == 0

    def test_equal_timestamp_tie_break_on_existing_edge(self):
        g = DynamicGraph([(1, 2)])
        ins = EdgeUpdate(1, 2, True, timestamp=3)
        dele = EdgeUpdate(1, 2, False, timestamp=3)
        assert preprocess_batch(g, [ins, dele]).deletions == [(1, 2)]
        assert len(preprocess_batch(g, [dele, ins])) == 0

    def test_generator_input_accepted(self):
        g = DynamicGraph()
        batch = preprocess_batch(
            g, (EdgeUpdate(i, i + 1, True, timestamp=i) for i in range(3))
        )
        assert sorted(batch.insertions) == [(0, 1), (1, 2), (2, 3)]
