"""Cross-module integration scenarios.

End-to-end runs combining generators, streams, the PLDS, baselines, and
the framework — the scenarios the paper's narrative leans on.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.bench.harness import make_adapter, run_protocol
from repro.bench.metrics import error_stats
from repro.core.invariants import approximation_violations
from repro.core.plds import PLDS
from repro.framework import create_clique_driver, create_matching_driver
from repro.graphs.generators import dataset_suite, erdos_renyi
from repro.graphs.streams import (
    Batch,
    deletion_batches,
    insertion_batches,
    mixed_batch,
)
from repro.parallel.scheduler import BrentScheduler
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations


class TestFullProtocolRuns:
    @pytest.mark.parametrize("protocol", ["ins", "del", "mix"])
    def test_plds_protocol_run_healthy(self, protocol):
        edges = erdos_renyi(100, 400, seed=1)
        res = run_protocol(
            lambda: make_adapter("plds", 110), edges, protocol, batch_size=80
        )
        assert res.batches
        if res.errors is not None and res.errors.vertices_measured:
            assert res.errors.maximum <= 4.2 + 1e-9

    def test_all_algorithms_agree_on_regime(self):
        # Approximate algorithms within their factors; exact ones exact.
        edges = erdos_renyi(80, 320, seed=2)
        exact = exact_coreness(edges)
        for key, factor in [
            ("plds", 4.2),
            ("lds", 4.2),
            ("sun", 9.0),
            ("hua", 1.0),
            ("zhang", 1.0),
        ]:
            adapter = make_adapter(key, 90)
            adapter.initialize(edges)
            stats = error_stats(adapter.estimates(), exact)
            assert stats.maximum <= factor + 1e-9, (key, stats)


class TestDatasetSuiteIntegration:
    def test_plds_handles_every_analog_dataset(self):
        for spec in dataset_suite(scale=0.12):
            edges = spec.edges
            plds = PLDS(n_hint=spec.num_vertices + 1)
            bs = max(1, len(edges) // 3)
            for i in range(0, len(edges), bs):
                plds.update(Batch(insertions=edges[i : i + bs]))
            assert_no_violations(plds, spec.name)
            exact = exact_coreness(edges)
            assert not approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            ), spec.name


class TestScalabilityNarrative:
    def test_plds_scales_better_than_sequential_baselines(self):
        # Simulated 16-thread time: PLDS should beat LDS and Zhang, as the
        # paper's Fig. 10 shows for real threads.
        edges = erdos_renyi(120, 500, seed=3)
        sched = BrentScheduler()
        times = {}
        for key in ("plds", "lds", "zhang"):
            res = run_protocol(
                lambda k=key: make_adapter(k, 130), edges, "ins", batch_size=250
            )
            p = 1 if key in ("lds", "zhang") else 16
            times[key] = sched.time(res.total_cost, p)
        assert times["plds"] < times["lds"]
        assert times["plds"] < times["zhang"]

    def test_hua_speedup_saturates_below_plds(self):
        # Paper Section 6.4: Hua self-relative speedup caps around 3.6x
        # while the PLDS keeps scaling.
        edges = erdos_renyi(120, 500, seed=4)
        sched = BrentScheduler()
        speedups = {}
        for key in ("plds", "hua"):
            res = run_protocol(
                lambda k=key: make_adapter(k, 130), edges, "ins", batch_size=500
            )
            speedups[key] = sched.speedup(res.total_cost, 60)
        assert speedups["plds"] > speedups["hua"]


class TestStreamsAgainstStructures:
    def test_ins_then_del_protocol_roundtrip(self):
        edges = erdos_renyi(70, 280, seed=5)
        plds = PLDS(n_hint=80)
        for b in insertion_batches(edges, 64, seed=1):
            plds.update(b)
        assert plds.num_edges == len(edges)
        for b in deletion_batches(edges, 64, seed=1):
            plds.update(b)
        assert plds.num_edges == 0
        assert_no_violations(plds)

    def test_mix_protocol_on_framework(self):
        edges = erdos_renyi(70, 280, seed=6)
        initial, batch = mixed_batch(edges, 60, seed=2)
        driver, m = create_matching_driver(n_hint=80)
        driver.update(Batch(insertions=initial))
        driver.update(batch)
        assert not m.violations()


class TestMultipleAppsOneGraphStream:
    def test_matching_and_cliques_share_update_stream(self):
        rng = random.Random(9)
        pool = erdos_renyi(50, 200, seed=7)
        d1, matching = create_matching_driver(n_hint=60)
        d2, cliques = create_clique_driver(n_hint=60, k=3)
        current: set = set()
        for _ in range(10):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(15, len(avail)))
            dels = rng.sample(sorted(current), min(7, len(current)))
            batch = Batch(insertions=ins, deletions=dels)
            d1.update(batch)
            d2.update(batch)
            current |= set(ins)
            current -= set(dels)
            assert not matching.violations()
        import networkx as nx

        G = nx.Graph(sorted(current))
        assert cliques.count == sum(nx.triangles(G).values()) // 3


class TestWorkBoundsNarrative:
    def test_plds_amortized_work_polylog(self):
        # Theorem 3.1: O(|B| log^2 n) amortized work per batch.
        edges = erdos_renyi(200, 800, seed=8)
        plds = PLDS(n_hint=210)
        batches = insertion_batches(edges, 100, seed=3)
        for b in batches:
            plds.update(b)
        log2n = math.log2(200) ** 2
        amortized = plds.tracker.work / len(edges)
        assert amortized <= 40 * log2n  # generous constant

    def test_depth_polylog_per_batch(self):
        edges = erdos_renyi(200, 800, seed=8)
        plds = PLDS(n_hint=210)
        worst_depth = 0
        for b in insertion_batches(edges, 100, seed=3):
            before = plds.tracker.depth
            plds.update(b)
            worst_depth = max(worst_depth, plds.tracker.depth - before)
        budget = 40 * math.log2(200) ** 2 * math.log2(math.log2(200) + 2)
        assert worst_depth <= budget
