"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.core.orientation import degeneracy
from repro.graphs.generators import (
    barabasi_albert,
    dataset_suite,
    dense_cluster_graph,
    erdos_renyi,
    grid_2d,
    planted_clique,
    ring_of_cliques,
    rmat,
    small_world,
)
from repro.static_kcore.exact import exact_coreness


def _valid(edges):
    seen = set()
    for u, v in edges:
        assert u < v, f"non-canonical edge ({u},{v})"
        assert (u, v) not in seen, f"duplicate edge ({u},{v})"
        seen.add((u, v))


class TestErdosRenyi:
    def test_edge_count_exact(self):
        assert len(erdos_renyi(50, 120, seed=1)) == 120

    def test_validity(self):
        _valid(erdos_renyi(50, 120, seed=1))

    def test_deterministic(self):
        assert erdos_renyi(40, 80, seed=7) == erdos_renyi(40, 80, seed=7)

    def test_different_seeds_differ(self):
        assert erdos_renyi(40, 80, seed=1) != erdos_renyi(40, 80, seed=2)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, 100)


class TestBarabasiAlbert:
    def test_validity(self):
        _valid(barabasi_albert(200, 3, seed=0))

    def test_power_law_hub_exists(self):
        edges = barabasi_albert(500, 3, seed=0)
        deg: dict[int, int] = {}
        for u, v in edges:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        assert max(deg.values()) > 10 * (2 * len(edges) / len(deg)) / 2

    def test_degeneracy_about_k(self):
        edges = barabasi_albert(300, 4, seed=1)
        assert 3 <= degeneracy(edges) <= 8

    def test_requires_n_gt_k(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestGrid:
    def test_edge_count(self):
        # rows*(cols-1) + (rows-1)*cols
        assert len(grid_2d(4, 5)) == 4 * 4 + 3 * 5

    def test_road_regime_max_core_2(self):
        core = exact_coreness(grid_2d(12, 12))
        assert max(core.values()) == 2

    def test_validity(self):
        _valid(grid_2d(7, 9))


class TestRingOfCliques:
    def test_known_coreness(self):
        core = exact_coreness(ring_of_cliques(6, 5))
        assert all(k == 4 for k in core.values())

    def test_validity(self):
        _valid(ring_of_cliques(6, 5))

    def test_vertex_count(self):
        edges = ring_of_cliques(4, 3)
        vs = {x for e in edges for x in e}
        assert len(vs) == 12


class TestDenseCluster:
    def test_high_degeneracy(self):
        edges = dense_cluster_graph(3, 15, 30, seed=0)
        assert degeneracy(edges) >= 14

    def test_validity(self):
        _valid(dense_cluster_graph(3, 10, 20, seed=0))


class TestSmallWorld:
    def test_validity(self):
        _valid(small_world(100, 4, 0.2, seed=0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            small_world(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            small_world(4, 4, 0.1)  # k >= n

    def test_rewire_zero_is_ring_lattice(self):
        edges = small_world(20, 4, 0.0, seed=0)
        assert len(edges) == 20 * 2


class TestRmat:
    def test_validity(self):
        _valid(rmat(7, 4, seed=0))

    def test_skewed_degrees(self):
        edges = rmat(9, 8, seed=0)
        deg: dict[int, int] = {}
        for u, v in edges:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        avg = sum(deg.values()) / len(deg)
        assert max(deg.values()) > 4 * avg


class TestPlantedClique:
    def test_clique_detected_by_coreness(self):
        edges = planted_clique(200, 300, 12, seed=0)
        core = exact_coreness(edges)
        for v in range(12):
            assert core[v] >= 11

    def test_validity(self):
        _valid(planted_clique(100, 150, 8, seed=1))


class TestDatasetSuite:
    def test_eleven_datasets(self):
        suite = dataset_suite(scale=0.2)
        assert len(suite) == 11

    def test_names_match_paper(self):
        papers = {d.paper_name for d in dataset_suite(scale=0.2)}
        assert papers == {
            "dblp", "brain", "wiki", "youtube", "stackoverflow",
            "livejournal", "orkut", "ctr", "usa", "twitter", "friendster",
        }

    def test_road_analogs_have_tiny_cores(self):
        suite = {d.paper_name: d for d in dataset_suite(scale=0.3)}
        for name in ("ctr", "usa"):
            assert degeneracy(suite[name].edges) <= 3

    def test_brain_analog_is_densest(self):
        suite = {d.paper_name: d for d in dataset_suite(scale=0.3)}
        brain_d = degeneracy(suite["brain"].edges)
        assert brain_d >= max(
            degeneracy(suite[n].edges) for n in ("dblp", "youtube", "usa")
        )

    def test_all_valid_and_nonempty(self):
        for d in dataset_suite(scale=0.2):
            assert d.num_edges > 0, d.name
            _valid(d.edges)

    def test_deterministic(self):
        a = dataset_suite(scale=0.2, seed=5)
        b = dataset_suite(scale=0.2, seed=5)
        assert all(x.edges == y.edges for x, y in zip(a, b))
