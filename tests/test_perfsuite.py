"""Perf-regression suite: BENCH json round-trip, comparison logic, CLI.

The perf harness (``repro bench``, :mod:`repro.bench.perfsuite`) is the
gate that keeps the hot-path optimizations honest across PRs, so its own
pieces need tests: the ``BENCH_<label>.json`` schema must survive a
write/load round trip, the regression comparison must classify
pass/regression/improvement/missing correctly around the tolerance band,
and the CLI path must produce a valid artifact end to end at tiny scale.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.bench.perfsuite import (
    BenchReport,
    PerfEntry,
    compare_bench,
    load_bench,
    run_suite,
    write_bench,
)
from repro.cli import main


def _report(label: str = "base", wall: float = 1.0) -> BenchReport:
    return BenchReport(
        label=label,
        scale=1.0,
        entries=[
            PerfEntry(
                workload="grid-mix",
                algo="pldsopt",
                wall_s=wall,
                work=1000,
                depth=50,
                space=4096,
            ),
            PerfEntry(
                workload="powerlaw-mix",
                algo="plds",
                wall_s=2 * wall,
                work=9000,
                depth=70,
                space=8192,
            ),
        ],
    )


# -- JSON schema round trip ---------------------------------------------


def test_bench_json_round_trip(tmp_path) -> None:
    report = _report()
    path = os.path.join(tmp_path, "BENCH_base.json")
    write_bench(path, report)
    loaded = load_bench(path)
    assert loaded == report

    # The on-disk shape is the documented schema, not an opaque pickle.
    with open(path, encoding="utf-8") as fh:
        raw = json.load(fh)
    assert raw["format"] == 1
    assert raw["label"] == "base"
    assert raw["scale"] == 1.0
    assert {e["workload"] for e in raw["entries"]} == {
        "grid-mix",
        "powerlaw-mix",
    }
    assert set(raw["entries"][0]) == {
        "workload",
        "algo",
        "wall_s",
        "work",
        "depth",
        "space",
    }


def test_bench_report_entry_lookup() -> None:
    report = _report()
    assert report.entry("grid-mix", "pldsopt").work == 1000
    assert report.entry("grid-mix", "lds") is None


# -- regression comparison logic ----------------------------------------


def test_compare_identical_runs_pass() -> None:
    cmp = compare_bench(_report("cur"), _report("base"), tolerance=0.25)
    assert cmp.ok
    assert not cmp.regressions
    assert not cmp.improvements
    assert not cmp.missing


def test_compare_within_tolerance_passes() -> None:
    # +25% on a 25% tolerance sits exactly on the boundary: allowed.
    cmp = compare_bench(
        _report("cur", wall=1.25), _report("base", wall=1.0), tolerance=0.25
    )
    assert cmp.ok
    assert not cmp.regressions


def test_compare_flags_regression_beyond_tolerance() -> None:
    cmp = compare_bench(
        _report("cur", wall=1.3), _report("base", wall=1.0), tolerance=0.25
    )
    assert not cmp.ok
    metrics = {(c.workload, c.algo, c.metric) for c in cmp.regressions}
    # Only the wall times moved; work/depth/space are unchanged.
    assert metrics == {
        ("grid-mix", "pldsopt", "wall_s"),
        ("powerlaw-mix", "plds", "wall_s"),
    }


def test_compare_wall_slack_absorbs_tiny_scale_noise() -> None:
    # 0.4 ms -> 0.6 ms is +50%, but far under the absolute wall slack:
    # tiny --scale runs must not fail the gate on timer noise.
    cmp = compare_bench(
        _report("cur", wall=0.0006), _report("base", wall=0.0004),
        tolerance=0.25,
    )
    assert cmp.ok
    assert not cmp.regressions


def test_compare_flags_improvement() -> None:
    cmp = compare_bench(
        _report("cur", wall=0.5), _report("base", wall=1.0), tolerance=0.25
    )
    assert cmp.ok  # an improvement is not a failure
    assert {(c.workload, c.metric) for c in cmp.improvements} == {
        ("grid-mix", "wall_s"),
        ("powerlaw-mix", "wall_s"),
    }


def test_compare_deterministic_metric_regression() -> None:
    # Work is deterministic: any growth beyond tolerance must be flagged
    # even when wall time is fine.
    current = _report("cur")
    current.entries[0] = dataclasses.replace(current.entries[0], work=2000)
    cmp = compare_bench(current, _report("base"), tolerance=0.25)
    assert not cmp.ok
    assert [(c.metric, c.baseline, c.current) for c in cmp.regressions] == [
        ("work", 1000.0, 2000.0)
    ]


def test_compare_reports_missing_entries() -> None:
    current = _report("cur")
    del current.entries[1]
    cmp = compare_bench(current, _report("base"), tolerance=0.25)
    assert cmp.missing == [("powerlaw-mix", "plds")]


def test_compare_rejects_negative_tolerance() -> None:
    with pytest.raises(ValueError):
        compare_bench(_report("cur"), _report("base"), tolerance=-0.1)


# -- the suite itself and the CLI path ----------------------------------


def test_run_suite_tiny_scale_is_deterministic() -> None:
    kwargs = dict(
        scale=0.05, algos=("pldsopt",), workloads=("grid-mix",), repeats=1
    )
    first = run_suite(**kwargs)
    second = run_suite(**kwargs)
    assert len(first) == 1
    assert first[0].work == second[0].work
    assert first[0].depth == second[0].depth
    assert first[0].space == second[0].space
    assert first[0].work > 0 and first[0].depth > 0


def test_cli_bench_writes_artifact(tmp_path) -> None:
    rc = main(
        [
            "bench",
            "--scale",
            "0.05",
            "--label",
            "t",
            "--repeats",
            "1",
            "--workloads",
            "grid-mix",
            "--algos",
            "pldsopt",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert rc == 0
    report = load_bench(os.path.join(tmp_path, "BENCH_t.json"))
    assert report.label == "t"
    assert report.scale == 0.05
    assert report.entry("grid-mix", "pldsopt") is not None


def test_cli_bench_baseline_gate(tmp_path) -> None:
    args = [
        "bench",
        "--scale",
        "0.05",
        "--repeats",
        "1",
        "--workloads",
        "grid-mix",
        "--algos",
        "pldsopt",
        "--output-dir",
        str(tmp_path),
    ]
    assert main(args + ["--label", "base"]) == 0
    base_path = os.path.join(tmp_path, "BENCH_base.json")

    # Same code vs itself: deterministic metrics match, walls are within
    # tolerance of each other — the gate passes.
    assert main(args + ["--label", "again", "--baseline", base_path]) == 0

    # Doctor the baseline so the rerun exceeds tolerance: gate fails.
    doctored = load_bench(base_path)
    doctored.entries = [
        dataclasses.replace(e, work=max(1, e.work // 10))
        for e in doctored.entries
    ]
    doctored_path = os.path.join(tmp_path, "BENCH_doctored.json")
    write_bench(doctored_path, doctored)
    assert main(args + ["--label", "gate", "--baseline", doctored_path]) == 1


def test_cli_bench_rejects_unknown_workload(tmp_path) -> None:
    with pytest.raises(SystemExit):
        main(
            [
                "bench",
                "--workloads",
                "no-such-workload",
                "--output-dir",
                str(tmp_path),
            ]
        )
