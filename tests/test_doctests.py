"""Run the executable examples embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.framework
import repro.parallel.engine

MODULES = [repro, repro.framework, repro.parallel.engine]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
