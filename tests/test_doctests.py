"""Run the executable examples embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.faults
import repro.framework
import repro.parallel.engine
import repro.service.core

MODULES = [
    repro,
    repro.faults,
    repro.framework,
    repro.parallel.engine,
    repro.service.core,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
