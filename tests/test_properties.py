"""Property-based tests (hypothesis) on the core invariants.

These encode the paper's guarantees as properties over arbitrary update
sequences: PLDS Invariants 1–2, the (2+ε) approximation, orientation
acyclicity, matching maximality, exact clique counts, proper colorings,
and primitive/reference agreement.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.invariants import approximation_violations
from repro.core.orientation import is_acyclic_orientation
from repro.core.plds import PLDS
from repro.framework import (
    create_clique_driver,
    create_explicit_coloring_driver,
    create_matching_driver,
)
from repro.graphs.dynamic_graph import canonical_edge
from repro.graphs.streams import Batch
from repro.parallel.engine import WorkDepthTracker
from repro.parallel.primitives import (
    parallel_filter,
    parallel_prefix_sum,
    parallel_semisort,
    parallel_sort,
)
from repro.static_kcore.approx import approx_coreness_static
from repro.static_kcore.exact import ParallelExactKCore, exact_coreness

N_VERTICES = 16

edge_strategy = st.tuples(
    st.integers(0, N_VERTICES - 1), st.integers(0, N_VERTICES - 1)
).filter(lambda e: e[0] != e[1]).map(lambda e: canonical_edge(*e))

# A script is a list of per-step edge sets; at each step, listed edges are
# toggled (inserted if absent, deleted if present).
script_strategy = st.lists(
    st.lists(edge_strategy, min_size=1, max_size=12, unique=True),
    min_size=1,
    max_size=8,
)

LOOSE = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def apply_script(script, on_batch):
    """Toggle-apply a script, calling ``on_batch(current_edges)`` per step."""
    current: set = set()
    for step in script:
        ins = [e for e in set(step) if e not in current]
        dels = [e for e in set(step) if e in current]
        batch = Batch(insertions=ins, deletions=dels)
        current |= set(ins)
        current -= set(dels)
        on_batch(batch, set(current))
    return current


class TestPLDSProperties:
    @LOOSE
    @given(script_strategy)
    def test_invariants_hold_after_any_script(self, script):
        plds = PLDS(n_hint=N_VERTICES)

        def step(batch, current):
            plds.update(batch)
            assert not plds.check_invariants()
            assert set(plds.edges()) == current

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_approximation_holds_after_any_script(self, script):
        plds = PLDS(n_hint=N_VERTICES)

        def step(batch, current):
            plds.update(batch)
            exact = exact_coreness(sorted(current))
            assert not approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_orientation_acyclic_after_any_script(self, script):
        plds = PLDS(n_hint=N_VERTICES, track_orientation=True)

        def step(batch, current):
            plds.update(batch)
            assert is_acyclic_orientation(list(plds.oriented_edges()))

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_jump_strategy_invariants(self, script):
        plds = PLDS(n_hint=N_VERTICES, insertion_strategy="jump")

        def step(batch, current):
            plds.update(batch)
            assert not plds.check_invariants()
            exact = exact_coreness(sorted(current))
            assert not approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_structure_variants_identical_results(self, script):
        variants = [
            PLDS(n_hint=N_VERTICES, structure=s)
            for s in ("randomized", "deterministic", "space_efficient")
        ]

        def step(batch, current):
            results = []
            for p in variants:
                p.update(
                    Batch(
                        insertions=list(batch.insertions),
                        deletions=list(batch.deletions),
                    )
                )
                results.append(p.coreness_estimates())
            assert results[0] == results[1] == results[2]

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_snapshot_roundtrip_after_any_script(self, script):
        plds = PLDS(n_hint=N_VERTICES, track_orientation=True)

        def step(batch, current):
            plds.update(batch)

        apply_script(script, step)
        restored = PLDS.from_snapshot(plds.to_snapshot())
        assert restored.coreness_estimates() == plds.coreness_estimates()
        assert sorted(restored.edges()) == sorted(plds.edges())
        assert not restored.check_invariants()

    @LOOSE
    @given(script_strategy)
    def test_batching_equivalence_of_guarantees(self, script):
        # Single-edge batches and full batches may land on different
        # levels, but both must satisfy the invariants and the bound.
        singles = PLDS(n_hint=N_VERTICES)

        def step(batch, current):
            for e in batch.insertions:
                singles.update(Batch(insertions=[e]))
            for e in batch.deletions:
                singles.update(Batch(deletions=[e]))
            assert not singles.check_invariants()

        apply_script(script, step)


class TestFrameworkProperties:
    @LOOSE
    @given(script_strategy)
    def test_matching_always_maximal(self, script):
        driver, m = create_matching_driver(n_hint=N_VERTICES)

        def step(batch, current):
            driver.update(batch)
            assert not m.violations()

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_triangle_count_always_exact(self, script):
        driver, c = create_clique_driver(n_hint=N_VERTICES, k=3)

        def step(batch, current):
            driver.update(batch)
            G = nx.Graph(sorted(current))
            expected = sum(nx.triangles(G).values()) // 3
            assert c.count == expected

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_table_counter_matches_enumeration_counter(self, script):
        from repro.framework import (
            create_clique_driver,
            create_clique_tables_driver,
        )

        d1, tables = create_clique_tables_driver(n_hint=N_VERTICES, k=3)
        d2, enum = create_clique_driver(n_hint=N_VERTICES, k=3)

        def step(batch, current):
            d1.update(Batch(list(batch.insertions), list(batch.deletions)))
            d2.update(Batch(list(batch.insertions), list(batch.deletions)))
            G = nx.Graph(sorted(current))
            expected = sum(nx.triangles(G).values()) // 3
            assert tables.count == enum.count == expected

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_coloring_always_proper(self, script):
        driver, col = create_explicit_coloring_driver(n_hint=N_VERTICES)

        def step(batch, current):
            driver.update(batch)
            assert not col.violations()

        apply_script(script, step)


class TestBaselineProperties:
    @LOOSE
    @given(script_strategy)
    def test_traversal_always_exact(self, script):
        from repro.baselines.traversal import TraversalCoreMaintenance

        t = TraversalCoreMaintenance()
        t.initialize([])

        def step(batch, current):
            for e in batch.insertions:
                t.insert_edge(*e)
            for e in batch.deletions:
                t.delete_edge(*e)
            expected = exact_coreness(sorted(current))
            got = {v: t.coreness(v) for v in expected}
            assert got == expected

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_sun_repair_matches_resimulation(self, script):
        from repro.baselines.sun import SunApproxDynamic

        incremental = SunApproxDynamic(n_hint=N_VERTICES, eps=1.0, lam=1.0)
        incremental.initialize([])

        def step(batch, current):
            incremental.update(batch)
            scratch = SunApproxDynamic(n_hint=N_VERTICES, eps=1.0, lam=1.0)
            scratch.initialize(sorted(current))
            inc = incremental.coreness_estimates()
            ref = scratch.coreness_estimates()
            # The incremental structure remembers now-isolated vertices
            # (estimate 0); compare on the union with default 0.
            for v in set(inc) | set(ref):
                assert inc.get(v, 0.0) == ref.get(v, 0.0), v

        apply_script(script, step)

    @LOOSE
    @given(script_strategy)
    def test_hua_matches_zhang(self, script):
        from repro.baselines.hua import HuaExactBatchDynamic
        from repro.baselines.zhang import ZhangExactDynamic

        hua = HuaExactBatchDynamic()
        hua.initialize([])
        zhang = ZhangExactDynamic()
        zhang.initialize([])

        def step(batch, current):
            hua.update(
                Batch(list(batch.insertions), list(batch.deletions))
            )
            zhang.update(batch)
            vs = {x for e in current for x in e}
            assert {v: hua.coreness(v) for v in vs} == {
                v: zhang.coreness(v) for v in vs
            }

        apply_script(script, step)


class TestStaticProperties:
    @LOOSE
    @given(st.lists(edge_strategy, min_size=1, max_size=40, unique=True))
    def test_parallel_exact_matches_networkx(self, edges):
        expected = dict(nx.core_number(nx.Graph(edges)))
        assert ParallelExactKCore().run(edges).coreness == expected

    @LOOSE
    @given(st.lists(edge_strategy, min_size=1, max_size=40, unique=True))
    def test_static_approx_factor(self, edges):
        exact = exact_coreness(edges)
        res = approx_coreness_static(edges, eps=0.5, delta=0.5)
        bound = 2.5 * 1.5
        for v, k in exact.items():
            if k == 0:
                continue
            est = res.estimates[v]
            assert est > 0
            assert max(est / k, k / est) <= bound + 1e-9


class TestPrimitiveProperties:
    @given(st.lists(st.integers(-100, 100)))
    def test_prefix_sum_matches_reference(self, xs):
        t = WorkDepthTracker()
        out = parallel_prefix_sum(t, xs)
        acc, ref = 0, []
        for x in xs:
            ref.append(acc)
            acc += x
        assert out == ref

    @given(st.lists(st.integers(-100, 100)))
    def test_sort_matches_sorted(self, xs):
        assert parallel_sort(WorkDepthTracker(), xs) == sorted(xs)

    @given(st.lists(st.integers(-100, 100)))
    def test_filter_matches_comprehension(self, xs):
        t = WorkDepthTracker()
        assert parallel_filter(t, xs, lambda v: v % 3 == 0) == [
            v for v in xs if v % 3 == 0
        ]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers())))
    def test_semisort_partitions_input(self, pairs):
        t = WorkDepthTracker()
        groups = parallel_semisort(t, pairs)
        flattened = [(k, v) for k, vs in groups.items() for v in vs]
        assert sorted(flattened) == sorted(pairs)
