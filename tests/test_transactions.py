"""Transactional serving: journal, rollback, retry, audit, degradation.

Exercises the crash-safe half of :class:`repro.service.CoreService`:
write-ahead journaling with replayable committed prefixes, rollback to
the exact pre-batch state on failure, bounded deterministic retries,
invariant auditing, and the graceful-degradation ladder (rebuild →
exact static recompute).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultPoint, InjectedFault
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import (
    Batch,
    EdgeUpdate,
    UpdateJournal,
    deletion_batches,
    insertion_batches,
    mixed_batch,
)
from repro.service import AuditPolicy, CoreService, RetryPolicy
from repro.static_kcore.exact import exact_coreness

EDGES = barabasi_albert(100, 3, seed=11)


def _mixed_stream():
    doomed = EDGES[: len(EDGES) // 2]
    return insertion_batches(EDGES, 40, seed=1) + deletion_batches(
        doomed, 40, seed=1
    )


# ---------------------------------------------------------------------------
# Negative vertex-id validation (consistent across both entry points)
# ---------------------------------------------------------------------------


def test_edge_update_rejects_negative_ids_at_construction():
    with pytest.raises(ValueError, match=r"negative vertex id.*-3"):
        EdgeUpdate(-3, 2, True)


def test_apply_batch_rejects_negative_insertion_and_names_it():
    svc = CoreService("plds", n_hint=16)
    with pytest.raises(ValueError, match=r"insertion \(1,-2\)"):
        svc.apply_batch(Batch(insertions=[(0, 1), (1, -2)]))
    # Rejected before journaling or engine work: state fully untouched.
    assert svc.num_edges == 0
    assert svc.batches_applied == 0
    assert len(svc.journal) == 0


def test_apply_batch_rejects_negative_deletion_and_names_it():
    svc = CoreService("plds", n_hint=16)
    with pytest.raises(ValueError, match=r"deletion \(-1,5\)"):
        svc.apply_batch(Batch(deletions=[(-1, 5)]))


def test_apply_updates_rejects_negative_ids_consistently():
    # The raw-stream entry point rejects at EdgeUpdate construction; the
    # Batch entry point rejects in apply_batch — same error, same layer.
    # (PLDS itself deliberately supports arbitrary vertex ids; see
    # tests/test_hardening.py.)
    svc = CoreService("plds", n_hint=16)
    with pytest.raises(ValueError, match="negative vertex id"):
        svc.apply_updates([EdgeUpdate(0, 1, True), EdgeUpdate(2, -7, True)])
    assert svc.num_edges == 0 and svc.batches_applied == 0


# ---------------------------------------------------------------------------
# Write-ahead journal
# ---------------------------------------------------------------------------


def test_journal_write_ahead_lifecycle():
    journal = UpdateJournal()
    record = journal.begin(Batch(insertions=[(0, 1)]))
    assert record.status == "pending"          # written before the engine runs
    journal.commit(record)
    assert record.status == "committed"
    aborted = journal.begin(Batch(deletions=[(0, 1)]))
    journal.abort(aborted)
    committed = journal.committed_batches()
    assert len(committed) == 1
    assert committed[0].insertions == [(0, 1)]


def test_journal_json_round_trip(tmp_path):
    journal = UpdateJournal()
    journal.commit(journal.begin(Batch(insertions=[(0, 1), (1, 2)])))
    journal.abort(journal.begin(Batch(deletions=[(0, 1)])))
    path = tmp_path / "journal.json"
    journal.dump(str(path))
    loaded = UpdateJournal.load(str(path))
    assert [r.status for r in loaded.records] == ["committed", "aborted"]
    assert loaded.records[0].insertions == ((0, 1), (1, 2))


def test_journal_rejects_bad_format_and_status():
    with pytest.raises(ValueError, match="unsupported journal format"):
        UpdateJournal.from_json_dict({"format": 99, "records": []})
    bad = {
        "format": 1,
        "records": [
            {"seq": 1, "insertions": [], "deletions": [], "status": "weird"}
        ],
    }
    with pytest.raises(ValueError, match="unknown journal status"):
        UpdateJournal.from_json_dict(bad)


def _dump_truncated(tmp_path, cut: int) -> str:
    """Dump a 3-record journal and chop the file after ``cut`` bytes."""
    journal = UpdateJournal()
    journal.commit(journal.begin(Batch(insertions=[(0, 1), (1, 2)])))
    journal.commit(journal.begin(Batch(insertions=[(2, 3)])))
    journal.abort(journal.begin(Batch(deletions=[(0, 1)])))
    path = tmp_path / "journal.json"
    journal.dump(str(path))
    text = path.read_text()
    path.write_text(text[:cut])
    return str(path)


def test_truncated_journal_strict_load_names_cut_point(tmp_path):
    # Cut mid-way through the last record: a crash mid-dump.
    path = _dump_truncated(tmp_path, cut=320)
    with pytest.raises(ValueError) as excinfo:
        UpdateJournal.load(path)
    message = str(excinfo.value)
    assert "corrupt at line" in message and "column" in message
    assert "recover=True" in message
    # The error is a clean ValueError, not a traceback through json.
    assert excinfo.value.__cause__ is None


def test_truncated_journal_recovers_intact_prefix(tmp_path):
    path = _dump_truncated(tmp_path, cut=320)
    journal = UpdateJournal.load(path, recover=True)
    assert journal.truncation is not None
    assert journal.truncation.records == len(journal.records)
    assert journal.truncation.line >= 1 and journal.truncation.column >= 1
    # Every recovered record is fully intact and replayable.
    assert all(
        r.status in ("committed", "aborted", "pending")
        for r in journal.records
    )
    recovered = CoreService.from_journal(journal, "plds", n_hint=16)
    assert recovered.batches_applied == sum(
        1 for r in journal.records if r.status == "committed"
    )


def test_truncation_cut_points_are_monotone(tmp_path):
    """Cutting earlier never recovers more records, and never crashes."""
    full = _dump_truncated(tmp_path, cut=10**9)
    size = len(open(full).read())
    last = None
    for cut in range(size, 0, -37):
        path = _dump_truncated(tmp_path, cut=cut)
        journal = UpdateJournal.load(path, recover=True)
        if last is not None:
            assert len(journal.records) <= last
        last = len(journal.records)
    assert last == 0  # a 1-byte file recovers nothing, quietly


def test_intact_journal_recover_flag_is_noop(tmp_path):
    journal = UpdateJournal()
    journal.commit(journal.begin(Batch(insertions=[(0, 1)])))
    path = tmp_path / "journal.json"
    journal.dump(str(path))
    loaded = UpdateJournal.load(str(path), recover=True)
    assert loaded.truncation is None
    assert [r.status for r in loaded.records] == ["committed"]


def test_from_journal_replays_committed_prefix_bit_identically(tmp_path):
    svc = CoreService("pldsopt", n_hint=128)
    for batch in _mixed_stream():
        svc.apply_batch(batch)
    path = tmp_path / "journal.json"
    svc.journal.dump(str(path))

    recovered = CoreService.from_journal(
        UpdateJournal.load(str(path)), "pldsopt", n_hint=128
    )
    assert recovered.coreness_map() == svc.coreness_map()
    assert recovered.num_edges == svc.num_edges
    assert recovered.snapshot().engine_state == svc.snapshot().engine_state


def test_from_journal_skips_pending_and_aborted_records():
    journal = UpdateJournal()
    journal.commit(journal.begin(Batch(insertions=[(0, 1), (1, 2)])))
    journal.abort(journal.begin(Batch(insertions=[(7, 8)])))
    journal.begin(Batch(insertions=[(8, 9)]))  # pending: crashed mid-apply
    svc = CoreService.from_journal(journal, "plds", n_hint=16)
    assert svc.num_edges == 2
    assert not svc.has_edge(7, 8)
    assert not svc.has_edge(8, 9)


# ---------------------------------------------------------------------------
# Rollback and retry
# ---------------------------------------------------------------------------


def test_transient_fault_is_retried_and_committed():
    svc = CoreService("pldsopt", n_hint=128, retry=RetryPolicy(max_attempts=3))
    plan = FaultPlan([FaultPoint("service.apply", 2)])
    with faults.active(plan):
        for batch in insertion_batches(EDGES, 50, seed=2):
            svc.apply_batch(batch)
    failed = [t for t in svc.telemetry if t.rolled_back]
    assert len(failed) == 1
    assert failed[0].attempts == 2
    assert all(r.status == "committed" for r in svc.journal.records)
    # Parity with an unfaulted run of the same stream.
    clean = CoreService("pldsopt", n_hint=128)
    for batch in insertion_batches(EDGES, 50, seed=2):
        clean.apply_batch(batch)
    assert svc.coreness_map() == clean.coreness_map()


def test_exhausted_retries_reraise_with_state_rolled_back():
    svc = CoreService("plds", n_hint=128, retry=RetryPolicy(max_attempts=2))
    first = insertion_batches(EDGES, 60, seed=3)[0]
    svc.apply_batch(first)
    pre = svc.snapshot()
    # Both attempts of the next batch crash (the plan is activated after
    # the first batch, so its attempts are hits 1 and 2).
    plan = FaultPlan([FaultPoint("service.apply", 1), FaultPoint("service.apply", 2)])
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            svc.apply_batch(insertion_batches(EDGES, 60, seed=3)[1])
    assert svc.journal.records[-1].status == "aborted"
    assert svc.batches_applied == 1
    assert svc.snapshot().engine_state == pre.engine_state
    assert svc.coreness_map() == pre.coreness_map()
    # The service still serves: the batch succeeds once faults are gone.
    svc.apply_batch(insertion_batches(EDGES, 60, seed=3)[1])


def test_nonretryable_error_aborts_without_retry():
    svc = CoreService("plds", n_hint=16, retry=RetryPolicy(max_attempts=5))
    svc.apply_batch(Batch(insertions=[(0, 1)]))
    with pytest.raises(ValueError):
        svc.apply_batch(Batch(insertions=[(0, 1)]))  # duplicate: invalid
    assert svc.journal.records[-1].status == "aborted"
    assert svc.num_edges == 1
    assert len(svc.telemetry) == 1  # no telemetry row for the aborted batch


def test_non_transactional_mode_fails_fast():
    svc = CoreService(
        "plds", n_hint=64, transactional=False, retry=RetryPolicy(max_attempts=3)
    )
    plan = FaultPlan([FaultPoint("service.apply", 1)])
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            svc.apply_batch(Batch(insertions=[(0, 1)]))
    assert svc.journal.records[-1].status == "aborted"


def test_backoff_is_metered_as_depth_not_slept():
    policy = RetryPolicy(max_attempts=4, backoff_depth=8)
    assert [policy.backoff_for(k) for k in (1, 2, 3)] == [8, 16, 32]
    svc = CoreService("plds", n_hint=64, retry=policy)
    plan = FaultPlan([FaultPoint("service.apply", 1)])
    before = svc.total_cost
    with faults.active(plan):
        t = svc.apply_batch(Batch(insertions=[(0, 1), (1, 2)]))
    assert t.attempts == 2
    # The retry's backoff (8 depth units) is charged to the engine tracker.
    assert svc.total_cost.depth - before.depth >= 8


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_depth=-1)
    with pytest.raises(ValueError):
        AuditPolicy(mode="sometimes")
    with pytest.raises(ValueError):
        AuditPolicy(mode="every", every_n=0)


# ---------------------------------------------------------------------------
# Snapshot restore across engine families
# ---------------------------------------------------------------------------

FAMILIES = ["plds", "pldsopt", "lds", "sun", "zhang", "hua"]


@pytest.mark.parametrize("algorithm", FAMILIES)
def test_restore_under_deletion_heavy_stream(algorithm):
    svc = CoreService(algorithm, n_hint=128)
    for batch in insertion_batches(EDGES, 50, seed=4):
        svc.apply_batch(batch)
    snap = svc.snapshot()
    for batch in deletion_batches(EDGES[: len(EDGES) // 2], 25, seed=4):
        svc.apply_batch(batch)
    svc.restore(snap)
    assert svc.num_edges == len(snap.edges)
    assert svc.batches_applied == snap.batches_applied
    if svc.spec.snapshot:
        # PLDS family restores are bit-identical, not merely equivalent.
        assert svc.snapshot().engine_state == snap.engine_state
        assert svc.coreness_map() == snap.coreness_map()
    elif svc.spec.exact:
        assert svc.coreness_map() == snap.coreness_map()


@pytest.mark.parametrize("algorithm", ["plds", "pldsopt", "lds"])
def test_restore_under_mixed_batch(algorithm):
    initial, batch = mixed_batch(EDGES, 40, seed=6)
    svc = CoreService(algorithm, n_hint=128)
    svc.apply_batch(Batch(insertions=list(initial)))
    snap = svc.snapshot()
    svc.apply_batch(batch)
    assert svc.snapshot().edges != snap.edges
    svc.restore(snap)
    assert svc.snapshot().engine_state == snap.engine_state
    assert svc.coreness_map() == snap.coreness_map()


def test_restore_after_failed_batch():
    svc = CoreService("pldsopt", n_hint=128, retry=RetryPolicy(max_attempts=1))
    for batch in insertion_batches(EDGES, 60, seed=7)[:3]:
        svc.apply_batch(batch)
    snap = svc.snapshot()
    plan = FaultPlan([FaultPoint("plds.rise", 1)])
    with faults.active(plan):
        with pytest.raises(InjectedFault):
            svc.apply_batch(insertion_batches(EDGES, 60, seed=7)[3])
    svc.restore(snap)
    assert svc.snapshot().engine_state == snap.engine_state
    assert svc.coreness_map() == snap.coreness_map()


def test_restore_rejects_algorithm_mismatch():
    svc_a = CoreService("plds", n_hint=16)
    svc_b = CoreService("lds", n_hint=16)
    with pytest.raises(ValueError, match="snapshot was taken from"):
        svc_b.restore(svc_a.snapshot())


# ---------------------------------------------------------------------------
# Auditing and graceful degradation
# ---------------------------------------------------------------------------


def _corrupt(svc: CoreService) -> None:
    """Desynchronize the engine from the mirror behind the service's back."""
    svc._adapter.update(Batch(insertions=[(900, 901)]))


def test_audit_detects_corrupted_engine():
    svc = CoreService("plds", n_hint=1024)
    svc.apply_batch(Batch(insertions=EDGES[:50]))
    assert svc.audit() == []
    _corrupt(svc)
    problems = svc.audit()
    assert problems and any("extra edges" in p for p in problems)


def test_failed_audit_degrades_and_keeps_answering():
    svc = CoreService("plds", n_hint=1024, audit=AuditPolicy("every"))
    svc.apply_batch(Batch(insertions=EDGES[:60]))
    _corrupt(svc)
    telemetry = svc.apply_batch(Batch(insertions=EDGES[60:90]))
    assert telemetry.degraded
    assert svc.degraded
    assert svc.degraded_to == "plds"       # rung 1: same-algorithm rebuild
    assert svc.quarantined is not None
    assert len(svc.audit_failures) == 1
    # The rebuilt engine is healthy and answers within the (2+eps) bound.
    assert svc.audit() == []
    exact = exact_coreness(sorted(svc._graph.edges()))
    factor = (2 + 3 / 3.0) * (1 + 0.4)  # (2 + 3/lam)(1 + delta), defaults
    for v, k in exact.items():
        if k > 0:
            assert svc.coreness(v) <= k * factor + 1e-9
            assert svc.coreness(v) >= k / factor - 1e-9


def test_degradation_last_resort_is_exact_static(monkeypatch):
    from repro.service import core as service_core

    svc = CoreService("plds", n_hint=1024, audit=AuditPolicy("every"))
    svc.apply_batch(Batch(insertions=EDGES[:60]))
    _corrupt(svc)
    real_rebuild = service_core.rebuild_adapter

    def failing_rebuild(key, n_hint, edges, **kwargs):
        if key == "plds":
            raise RuntimeError("rebuild path also corrupted")
        return real_rebuild(key, n_hint, edges, **kwargs)

    monkeypatch.setattr(service_core, "rebuild_adapter", failing_rebuild)
    svc.apply_batch(Batch(insertions=EDGES[60:90]))
    assert svc.degraded_to == "exactkcore"
    assert svc.algorithm == "exactkcore"
    # Last-resort answers are exact.
    exact = exact_coreness(sorted(svc._graph.edges()))
    assert all(svc.coreness(v) == float(k) for v, k in exact.items())
    # And the degraded service keeps serving subsequent batches.
    svc.apply_batch(Batch(insertions=EDGES[90:100]))


def test_on_recovery_audit_runs_only_after_rollback():
    svc = CoreService(
        "plds", n_hint=1024, audit=AuditPolicy("on-recovery")
    )
    svc.apply_batch(Batch(insertions=EDGES[:40]))
    _corrupt(svc)
    # No rollback happened, so the corruption goes unnoticed...
    svc.apply_batch(Batch(insertions=EDGES[40:60]))
    assert not svc.degraded
    # ...until a batch needs recovery, which triggers the audit.
    plan = FaultPlan([FaultPoint("service.apply", 1)])
    with faults.active(plan):
        t = svc.apply_batch(Batch(insertions=EDGES[60:80]))
    assert t.rolled_back and t.degraded
    assert svc.degraded and svc.audit() == []


def test_hosted_application_recovers_from_fault():
    svc = CoreService(
        n_hint=128, application="matching", retry=RetryPolicy(max_attempts=3)
    )
    batches = insertion_batches(EDGES, 50, seed=8)
    plan = FaultPlan([FaultPoint("service.apply", 2)])
    with faults.active(plan):
        for batch in batches:
            svc.apply_batch(batch)
    assert any(t.rolled_back for t in svc.telemetry)
    assert svc.num_edges == len(EDGES)
    assert svc.audit() == []              # driver PLDS healthy post-recovery
    assert svc.application is not None    # the app survived the rebuild
