"""Tests for the continuous-telemetry layer: timelines, the flight
recorder, per-worker pool visibility, and the declarative SLO engine.

Determinism is the backbone of every check here: same-seed replays must
produce byte-identical ``timeline`` sections and ``FLIGHT`` dumps, the
worker-tally merge must be order-independent, and SLO verdicts are pure
functions of the artifact JSON.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch, insertion_batches
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs_recorder
from repro.obs import timeline as obs_timeline
from repro.obs.export import timeline_counter_events, to_chrome_trace
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.recorder import TRIGGERS, FlightRecorder, recording
from repro.obs.slo import (
    DEFAULT_RULES,
    SLOReport,
    SLORule,
    SLOVerdict,
    evaluate_artifact,
    gate_report,
)
from repro.obs.timeline import (
    Timeline,
    counter_totals,
    gauge_track,
    sampling,
    series_key,
    split_series_key,
)
from repro.service import AuditPolicy, CoreService
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    LoadSignals,
)

pytestmark = pytest.mark.slo

EDGES = barabasi_albert(80, 3, seed=9)


def serve_batches(vertices=60, batch_size=40, seed=3):
    svc = CoreService("pldsopt", n_hint=vertices + 1)
    batches = insertion_batches(
        barabasi_albert(vertices, 3, seed=seed), batch_size, seed=seed
    )
    return svc, batches


# ---------------------------------------------------------------------------
# Timeline
# ---------------------------------------------------------------------------


class TestSeriesKey:
    def test_roundtrip(self):
        key = series_key("service.admission",
                         (("kind", "write"), ("tenant", "t0")))
        assert key == "service.admission{kind=write,tenant=t0}"
        assert split_series_key(key) == (
            "service.admission", (("kind", "write"), ("tenant", "t0"))
        )

    def test_plain_name(self):
        assert series_key("service.batches") == "service.batches"
        assert split_series_key("service.batches") == ("service.batches", ())

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            split_series_key("x{garbage}")


class TestTimeline:
    def test_sample_without_registry_is_none(self):
        assert obs_metrics.ACTIVE is None
        assert Timeline().sample(1) is None

    def test_delta_encoding(self):
        reg = MetricsRegistry()
        t = Timeline(reg)
        reg.inc("c", 3)
        reg.gauge("g", 7)
        reg.observe("h", 2.0)
        s1 = t.sample(1, kind="batch")
        assert s1["counters"] == {"c": 3}
        assert s1["gauges"] == {"g": 7}
        assert s1["histograms"] == {"h": {"count": 1, "sum": 2.0}}
        reg.inc("c", 2)
        s2 = t.sample(2)
        # Only the movement since sample 1; the unchanged gauge and the
        # quiet histogram are omitted entirely.
        assert s2 == {"tick": 2, "kind": "tick", "counters": {"c": 2}}
        reg.gauge("g", 8)
        s3 = t.sample(3)
        assert s3 == {"tick": 3, "kind": "tick", "gauges": {"g": 8}}

    def test_counter_totals_inverts_deltas(self):
        reg = MetricsRegistry()
        t = Timeline(reg)
        for i in range(5):
            reg.inc("c")
            reg.inc("d", i)
            t.sample(i)
        totals = counter_totals(t.samples)
        assert totals["c"] == reg.counter_value("c") == 5
        assert totals["d"] == reg.counter_value("d") == 10

    def test_gauge_track_step_function(self):
        reg = MetricsRegistry()
        t = Timeline(reg)
        for tick, value in ((1, 5), (2, 5), (3, 9)):
            reg.gauge("g", value)
            t.sample(tick)
        assert gauge_track(t.samples, "g") == [(1, 5), (3, 9)]

    def test_max_samples_drops_oldest(self):
        reg = MetricsRegistry()
        t = Timeline(reg, max_samples=3)
        for i in range(7):
            reg.inc("c")
            t.sample(i)
        assert len(t.samples) == 3 and t.dropped == 4
        assert [s["tick"] for s in t.samples] == [4, 5, 6]
        assert t.to_json_dict()["dropped"] == 4
        with pytest.raises(ValueError):
            Timeline(max_samples=0)

    def test_service_samples_per_batch(self):
        svc, batches = serve_batches()
        with collecting(), sampling() as t:
            for b in batches:
                svc.apply_batch(b)
        assert len(t.samples) == len(batches)
        assert all(s["kind"] == "batch" for s in t.samples)
        assert [s["tick"] for s in t.samples] == list(
            range(1, len(batches) + 1)
        )
        # Summed deltas equal the registry totals (one series spot check).
        totals = counter_totals(t.samples)
        assert totals["service.batches"] == len(batches)

    def test_no_sampling_without_timeline(self):
        svc, batches = serve_batches()
        assert obs_timeline.ACTIVE is None
        with collecting() as reg:
            for b in batches:
                svc.apply_batch(b)
        assert reg.counter_value("service.batches") == len(batches)

    def test_sampling_scope_restores_previous(self):
        outer = Timeline()
        with sampling(outer):
            assert obs_timeline.ACTIVE is outer
            with sampling() as inner:
                assert obs_timeline.ACTIVE is inner
            assert obs_timeline.ACTIVE is outer
        assert obs_timeline.ACTIVE is None

    def test_same_seed_timeline_byte_identical(self):
        def run():
            svc, batches = serve_batches(seed=5)
            with collecting(), sampling() as t:
                for b in batches:
                    svc.apply_batch(b)
            return json.dumps(t.to_json_dict(), sort_keys=True)

        assert run() == run()


class TestTimelineExport:
    def _samples(self):
        reg = MetricsRegistry()
        t = Timeline(reg)
        reg.inc("c", 3)
        reg.gauge("g", 7)
        t.sample(1)
        reg.inc("c", 2)
        reg.gauge("g", 4)
        t.sample(2)
        return t.samples

    def test_counter_events_cumulative(self):
        events = timeline_counter_events(self._samples())
        assert all(e["ph"] == "C" for e in events)
        c_values = [e["args"]["value"] for e in events if e["name"] == "c"]
        g_values = [e["args"]["value"] for e in events if e["name"] == "g"]
        # Counters render cumulatively, gauges at their sampled value —
        # the last counter event round-trips back to the series total.
        assert c_values == [3, 5]
        assert c_values[-1] == counter_totals(self._samples())["c"]
        assert g_values == [7, 4]
        assert [e["ts"] for e in events] == [1e6, 1e6, 2e6, 2e6]

    def test_chrome_trace_carries_counter_track(self):
        trace = to_chrome_trace([], timeline=self._samples())
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert phases[0] == "M" and "C" in phases


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


def _corrupt(svc: CoreService) -> None:
    """Desynchronize the engine from the mirror behind the service's back."""
    svc._adapter.update(Batch(insertions=[(900, 901)]))


class TestFlightRecorder:
    def test_ring_capacity_bounds_events(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.note("e", i=i)
        assert len(rec.events) == 4
        assert [e["i"] for e in rec.events] == [6, 7, 8, 9]
        assert [e["seq"] for e in rec.events] == [7, 8, 9, 10]

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(triggers=("fault", "nope"))
        with pytest.raises(ValueError):
            with recording(FlightRecorder(), capacity=4):
                pass

    def test_unarmed_trigger_notes_but_does_not_dump(self):
        rec = FlightRecorder(triggers=("fault",))
        assert rec.trip("backpressure", depth=9) is None
        assert not rec.dumps
        assert rec.events[-1]["kind"] == "trigger.backpressure"
        assert rec.trip("fault", site="x") is not None
        assert len(rec.dumps) == 1

    def test_dump_file_layout(self, tmp_path):
        rec = FlightRecorder(label="t", out_dir=str(tmp_path))
        rec.note("warmup", n=1)
        dump = rec.trip("fault", site="plds.rise", hit=2)
        assert dump["kind"] == "flight" and dump["sequence"] == 1
        assert dump["trigger"] == "fault"
        assert dump["detail"] == {"site": "plds.rise", "hit": 2}
        (path,) = rec.dump_paths
        assert path.endswith("FLIGHT_t_001_fault.json")
        assert json.loads((tmp_path / "FLIGHT_t_001_fault.json").read_text()) == dump

    def test_fault_fire_trips_recorder(self):
        from repro.bench.chaos import chaos_workload

        svc = CoreService("pldsopt", n_hint=61)
        batches = chaos_workload(60, 40, seed=3)
        plan = faults.FaultPlan([faults.FaultPoint("plds.rise", 5)])
        with recording() as rec, faults.active(plan):
            for b in batches:
                svc.apply_batch(b)
        assert plan.fired
        (dump,) = [d for d in rec.dumps if d["trigger"] == "fault"]
        assert dump["detail"]["site"] == "plds.rise"
        # The fault was retried and the run recovered; the ring recorded
        # the rollback and the batches around the crash.
        kinds = {e["kind"] for e in rec.events}
        assert "service.rollback" in kinds and "service.batch" in kinds

    def test_backpressure_engage_trips_recorder(self):
        ctl = AdmissionController(AdmissionPolicy(lag_threshold=10))
        with recording() as rec:
            ctl.observe(LoadSignals(shard_lag=50), now=1.0)
            ctl.observe(LoadSignals(shard_lag=60), now=2.0)  # still engaged
            for now in (3.0, 4.0, 5.0):
                ctl.observe(LoadSignals(), now=now)
        (dump,) = rec.dumps
        assert dump["trigger"] == "backpressure"
        assert dump["detail"]["shard_lag"] == 50
        assert rec.events[-1]["kind"] == "backpressure.released"

    def _degrading_run(self, out_dir, fail_rebuild, monkeypatch=None):
        rec = FlightRecorder(label="ladder", out_dir=out_dir)
        with recording(rec), collecting():
            svc = CoreService("plds", n_hint=1024, audit=AuditPolicy("every"))
            svc.apply_batch(Batch(insertions=EDGES[:60]))
            _corrupt(svc)
            if fail_rebuild:
                from repro.service import core as service_core

                real = service_core.rebuild_adapter

                def failing(key, n_hint, edges, **kwargs):
                    if key == "plds":
                        raise RuntimeError("rebuild path also corrupted")
                    return real(key, n_hint, edges, **kwargs)

                monkeypatch.setattr(
                    service_core, "rebuild_adapter", failing
                )
            svc.apply_batch(Batch(insertions=EDGES[60:90]))
        return rec, svc

    def test_ladder_rungs_quarantine_and_rebuild(self, tmp_path):
        rec, svc = self._degrading_run(str(tmp_path), fail_rebuild=False)
        assert svc.degraded_to == "plds"
        triggers = [(d["trigger"], d["detail"].get("rung")) for d in rec.dumps]
        assert ("audit", None) in triggers
        assert ("degrade", "quarantine") in triggers
        assert ("degrade", "rebuild") in triggers
        assert len(rec.dump_paths) == len(rec.dumps)

    def test_ladder_last_resort_rung(self, tmp_path, monkeypatch):
        rec, svc = self._degrading_run(
            str(tmp_path), fail_rebuild=True, monkeypatch=monkeypatch
        )
        assert svc.degraded_to == "exactkcore"
        rungs = [
            d["detail"].get("rung")
            for d in rec.dumps
            if d["trigger"] == "degrade"
        ]
        assert rungs == ["quarantine", "exactkcore"]

    def test_ladder_dumps_bit_identical_across_replays(
        self, tmp_path, monkeypatch
    ):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(), b.mkdir()
        rec_a, _ = self._degrading_run(
            str(a), fail_rebuild=True, monkeypatch=monkeypatch
        )
        rec_b, _ = self._degrading_run(
            str(b), fail_rebuild=True, monkeypatch=monkeypatch
        )
        assert len(rec_a.dump_paths) == len(rec_b.dump_paths) >= 3
        for pa, pb in zip(rec_a.dump_paths, rec_b.dump_paths):
            assert (a / pa.split("/")[-1]).read_bytes() == (
                b / pb.split("/")[-1]
            ).read_bytes()

    def test_recording_scope_restores_previous(self):
        outer = FlightRecorder()
        with recording(outer):
            assert obs_recorder.ACTIVE is outer
            with recording() as inner:
                assert obs_recorder.ACTIVE is inner
            assert obs_recorder.ACTIVE is outer
        assert obs_recorder.ACTIVE is None


# ---------------------------------------------------------------------------
# Pool worker visibility
# ---------------------------------------------------------------------------


class TestWorkerTallies:
    TALLIES = [
        (1, 4, 8, 4, 40),
        (0, 0, 4, 4, 70),
        (2, 8, 10, 2, 15),
    ]

    def test_merge_order_independent(self):
        from repro.parallel.pool import merge_worker_tallies

        a, b = MetricsRegistry(), MetricsRegistry()
        merge_worker_tallies(a, self.TALLIES)
        merge_worker_tallies(b, list(reversed(self.TALLIES)))
        assert a.flat_series() == b.flat_series()
        assert a.counter_value("engine.pool.tasks", worker=0) == 4
        assert a.counter_value("engine.pool.work", worker=1) == 40
        assert a.gauge_value("engine.pool.slot_lo", worker=2) == 8
        assert a.gauge_value("engine.pool.slot_hi", worker=2) == 10

    def test_merge_emits_sorted_worker_series(self):
        from repro.parallel.pool import merge_worker_tallies

        reg = MetricsRegistry()
        merge_worker_tallies(reg, list(reversed(self.TALLIES)))
        counters, _, _ = reg.flat_series()
        workers = [
            dict(split_series_key(k)[1])["worker"]
            for k in counters
            if k.startswith("engine.pool.tasks")
        ]
        assert workers == sorted(workers)


# ---------------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------------


def make_artifact(**overrides):
    """A minimal healthy soak-shaped artifact the rules can evaluate."""
    artifact = {
        "kind": "soak",
        "label": "t",
        "clock": {"end": 100.0},
        "totals": {"write_events": 100, "rejected": 5, "shed": 5},
        "consistency": {
            "reads_probed": 20, "reads_consistent": 20, "max_staleness": 1,
        },
        "degraded": {"time": 0.0},
        "tenants": {
            "t0": {
                "writes": {"events": 60, "admitted": 55, "rejected": 3,
                           "shed": 2, "p99_latency": 400.0},
                "reads": {"events": 12, "max_staleness": 1},
            },
            "t1": {
                "writes": {"events": 40, "admitted": 35, "rejected": 2,
                           "shed": 3, "p99_latency": None},
                "reads": {"events": 8, "max_staleness": 0},
            },
        },
    }
    artifact.update(overrides)
    return artifact


def rollback_timeline(bursts):
    """A timeline whose ``service.rollbacks`` deltas follow ``bursts``."""
    return {
        "format": 1,
        "dropped": 0,
        "samples": [
            {"tick": i + 1, "kind": "batch",
             "counters": {"service.rollbacks": b} if b else {}}
            for i, b in enumerate(bursts)
        ],
    }


class TestSLORules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            SLORule("x", "not-a-kind", threshold=1)
        with pytest.raises(ValueError):
            SLORule("x", "max_staleness", threshold=1, window=-1)
        with pytest.raises(ValueError):
            SLORule("x", "max_staleness", threshold=1, burn_rate=0)
        with pytest.raises(ValueError):
            SLORule("x", "counter_burn", threshold=1, window=4)  # no series
        with pytest.raises(ValueError):
            SLORule("x", "counter_burn", threshold=1, series="s")  # no window

    def test_healthy_artifact_passes_defaults(self):
        report = evaluate_artifact(make_artifact())
        assert report.ok and not report.breaches
        assert {v.rule for v in report.verdicts} == {
            r.name for r in DEFAULT_RULES
        }

    def test_staleness_breach(self):
        artifact = make_artifact()
        artifact["tenants"]["t1"]["reads"]["max_staleness"] = 4
        report = evaluate_artifact(artifact)
        (breach,) = report.breaches
        assert breach.rule == "read-staleness" and breach.observed == 4

    def test_p99_breach_and_missing_latencies(self):
        artifact = make_artifact()
        artifact["tenants"]["t0"]["writes"]["p99_latency"] = 99999.0
        assert not evaluate_artifact(artifact).ok
        for t in artifact["tenants"].values():
            t["writes"]["p99_latency"] = None
        verdict = {
            v.rule: v for v in evaluate_artifact(artifact).verdicts
        }["write-p99"]
        assert verdict.ok and verdict.observed is None
        assert verdict.detail == "no write latencies"

    def test_consistency_breach(self):
        artifact = make_artifact(
            consistency={
                "reads_probed": 20, "reads_consistent": 19, "max_staleness": 1,
            }
        )
        (breach,) = evaluate_artifact(artifact).breaches
        assert breach.rule == "consistency" and breach.observed == 1

    def test_degraded_fraction_breach(self):
        artifact = make_artifact(degraded={"time": 80.0})
        (breach,) = evaluate_artifact(artifact).breaches
        assert breach.rule == "degraded-fraction"
        assert breach.observed == pytest.approx(0.8)

    def test_whole_run_rejection_breach(self):
        artifact = make_artifact(
            totals={"write_events": 100, "rejected": 60, "shed": 39}
        )
        (breach,) = evaluate_artifact(artifact).breaches
        assert breach.rule == "rejection-rate"
        assert breach.window == "whole-run"

    def test_windowed_rejection_storm_breaches(self):
        # Whole-run rate is tiny, but one 16-sample window is 100% refusals.
        quiet = {"tick": 0, "kind": "tick", "counters": {
            series_key("service.admission",
                       (("kind", "write"), ("outcome", "admitted"),
                        ("tenant", "t0"))): 50,
        }}
        storm = {"tick": 0, "kind": "tick", "counters": {
            series_key("service.admission",
                       (("kind", "write"), ("outcome", "shed"),
                        ("tenant", "t0"))): 5,
        }}
        samples = [dict(quiet, tick=i) for i in range(20)]
        samples += [dict(storm, tick=20 + i) for i in range(16)]
        artifact = make_artifact(
            totals={"write_events": 1080, "rejected": 0, "shed": 80},
            timeline={"format": 1, "dropped": 0, "samples": samples},
        )
        rule = SLORule("storm", "rejection_rate", threshold=0.5, window=16,
                       burn_rate=1.2)
        (breach,) = evaluate_artifact(artifact, rules=(rule,)).breaches
        assert breach.observed == 1.0
        assert breach.allowed == pytest.approx(0.6)
        assert breach.window.startswith("samples[20:36]")

    def test_counter_burn_window(self):
        rule = SLORule("burn", "counter_burn", threshold=10, window=4,
                       burn_rate=1.0, series="service.rollbacks")
        quiet = make_artifact(
            timeline=rollback_timeline([1, 2, 0, 1, 2, 1, 0, 0])
        )
        assert evaluate_artifact(quiet, rules=(rule,)).ok
        bursty = make_artifact(
            timeline=rollback_timeline([1, 2, 0, 1, 9, 3, 0, 0])
        )
        (breach,) = evaluate_artifact(bursty, rules=(rule,)).breaches
        assert breach.observed == 13  # worst 4-sample window: 1+9+3+0
        assert "samples[" in breach.window

    def test_counter_burn_vacuous_without_timeline(self):
        rule = SLORule("burn", "counter_burn", threshold=10, window=4,
                       series="service.rollbacks")
        verdict = evaluate_artifact(make_artifact(), rules=(rule,)).verdicts[0]
        assert verdict.ok and verdict.observed is None
        assert "no timeline" in verdict.detail
        short = make_artifact(timeline=rollback_timeline([1, 2]))
        verdict = evaluate_artifact(short, rules=(rule,)).verdicts[0]
        assert verdict.ok and "shorter than window" in verdict.detail

    def test_gate_report_names_rule_and_window(self):
        artifact = make_artifact(degraded={"time": 80.0})
        report = evaluate_artifact(artifact)
        with pytest.raises(ValueError, match=r"degraded-fraction.*whole-run"):
            gate_report(report)
        gate_report(evaluate_artifact(make_artifact()))  # no-op when ok

    def test_breach_trips_recorder_slo_trigger(self):
        artifact = make_artifact(degraded={"time": 80.0})
        with recording() as rec:
            evaluate_artifact(artifact)
        (dump,) = rec.dumps
        assert dump["trigger"] == "slo"
        assert dump["detail"]["rule"] == "degraded-fraction"

    def test_report_json_deterministic(self):
        artifact = make_artifact(degraded={"time": 80.0})
        a = json.dumps(evaluate_artifact(artifact).to_json_dict(),
                       sort_keys=True)
        b = json.dumps(evaluate_artifact(artifact).to_json_dict(),
                       sort_keys=True)
        assert a == b
        data = json.loads(a)
        assert data["kind"] == "slo" and data["breaches"] == 1

    def test_report_shape(self):
        report = SLOReport(
            label="x",
            verdicts=(
                SLOVerdict("a", "consistency", True, 0.0, 0.0, "whole-run"),
                SLOVerdict("b", "consistency", False, 2.0, 0.0, "whole-run"),
            ),
        )
        assert not report.ok
        assert [v.rule for v in report.breaches] == ["b"]


# ---------------------------------------------------------------------------
# Soak artifact + CLI integration
# ---------------------------------------------------------------------------


class TestSoakTimelineIntegration:
    def _config(self, sample_every=25.0, seed=4):
        from repro.traffic import SoakConfig, default_mix

        return SoakConfig(
            mix=default_mix(2, rate=0.05),
            horizon=200.0,
            seed=seed,
            sample_every=sample_every,
        )

    def test_soak_artifact_has_timeline_section(self):
        from repro.traffic import SoakRunner

        runner = SoakRunner(self._config())
        runner.run()
        artifact = runner.report()
        timeline = artifact["timeline"]
        assert timeline["format"] == 1
        kinds = {s["kind"] for s in timeline["samples"]}
        assert "end" in kinds and ("tick" in kinds or "batch" in kinds)
        assert artifact["config"]["sample_every"] == 25.0

    def test_sample_every_zero_disables(self):
        from repro.traffic import SoakRunner

        runner = SoakRunner(self._config(sample_every=0.0))
        runner.run()
        assert "timeline" not in runner.report()
        with pytest.raises(ValueError):
            self._config(sample_every=-1.0)

    def test_same_seed_soak_artifact_byte_identical(self):
        from repro.traffic import SoakRunner

        def run():
            runner = SoakRunner(self._config(seed=6))
            runner.run()
            return json.dumps(runner.report(), sort_keys=True)

        assert run() == run()


class TestSLOCli:
    def _artifact_path(self, tmp_path, **overrides):
        path = tmp_path / "SOAK_x.json"
        path.write_text(json.dumps(make_artifact(**overrides)))
        return str(path)

    def run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_slo_pass_and_report_out(self, tmp_path, capsys):
        out = tmp_path / "slo.json"
        code = self.run(
            "slo", self._artifact_path(tmp_path), "--out", str(out)
        )
        assert code == 0
        assert "slo check: OK" in capsys.readouterr().out
        assert json.loads(out.read_text())["ok"] is True

    def test_slo_breach_exit_1_without_gate(self, tmp_path, capsys):
        path = self._artifact_path(tmp_path, degraded={"time": 80.0})
        assert self.run("slo", path) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_slo_gate_exit_2_names_rule_window_site(self, tmp_path, capsys):
        path = self._artifact_path(tmp_path, degraded={"time": 80.0})
        code = self.run("slo", path, "--gate")
        err = capsys.readouterr().err
        assert code == 2
        assert "SLO breach: degraded-fraction over whole-run" in err
        assert ".py:" in err

    def test_slo_threshold_overrides(self, tmp_path, capsys):
        path = self._artifact_path(tmp_path)
        # Healthy artifact, absurdly tight override => injected breach.
        assert self.run("slo", path, "--gate", "--max-staleness", "0") == 2
        assert "read-staleness" in capsys.readouterr().err
        assert self.run("slo", path, "--degraded-fraction", "0.9") == 0

    def test_dash_renders_sections(self, tmp_path, capsys):
        path = self._artifact_path(
            tmp_path, timeline=rollback_timeline([1, 0, 2, 1])
        )
        assert self.run("dash", path) == 0
        out = capsys.readouterr().out
        assert "service counters" in out
        assert "service.rollbacks" in out
        assert "tenant" in out  # the per-tenant table

    def test_dash_without_timeline_exits_2(self, tmp_path, capsys):
        assert self.run("dash", self._artifact_path(tmp_path)) == 2
        assert "timeline" in capsys.readouterr().err

    def test_soak_cli_flight_dir_and_slo_gate(self, tmp_path, capsys):
        code = self.run(
            "soak",
            "--tenants", "2",
            "--horizon", "200",
            "--seed", "4",
            "--fault-rate", "0.1",
            "--label", "t",
            "--output-dir", str(tmp_path),
            "--flight-dir", str(tmp_path / "flight"),
        )
        assert code == 0
        capsys.readouterr()
        artifact = tmp_path / "SOAK_t.json"
        assert "timeline" in json.loads(artifact.read_text())
        assert self.run("slo", str(artifact), "--gate") == 0
