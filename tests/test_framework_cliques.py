"""Tests for batch-dynamic k-clique counting (Section 10)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.framework import create_clique_driver
from repro.graphs.generators import erdos_renyi, planted_clique, ring_of_cliques
from repro.graphs.streams import Batch


def clique_count(edges, k):
    G = nx.Graph(list(edges))
    if k == 2:
        return G.number_of_edges()
    return sum(1 for c in nx.enumerate_all_cliques(G) if len(c) == k)


class TestTriangleCounting:
    def test_single_triangle(self):
        driver, c = create_clique_driver(n_hint=10, k=3)
        driver.update(Batch(insertions=[(0, 1), (1, 2)]))
        assert c.count == 0
        driver.update(Batch(insertions=[(0, 2)]))
        assert c.count == 1

    def test_delete_breaks_triangle(self):
        driver, c = create_clique_driver(n_hint=10, k=3)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
        driver.update(Batch(deletions=[(1, 2)]))
        assert c.count == 0

    def test_batch_with_shared_edges_counts_once(self):
        # K4 inserted in one batch: 4 triangles, each spanning 3 new edges.
        driver, c = create_clique_driver(n_hint=10, k=3)
        k4 = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        driver.update(Batch(insertions=k4))
        assert c.count == 4

    def test_mixed_batch(self):
        driver, c = create_clique_driver(n_hint=10, k=3)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2), (2, 3)]))
        driver.update(Batch(insertions=[(1, 3)], deletions=[(0, 1)]))
        # remaining: {1,2},{0,2},{2,3},{1,3}; triangles: {1,2,3}
        assert c.count == 1

    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_churn_matches_networkx(self, seed):
        rng = random.Random(seed)
        pool = erdos_renyi(40, 250, seed=seed)
        driver, c = create_clique_driver(n_hint=50, k=3)
        current: set = set()
        for step in range(15):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(25, len(avail)))
            dels = rng.sample(sorted(current), min(12, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert c.count == clique_count(current, 3), step

    def test_recount_oracle_agrees(self):
        driver, c = create_clique_driver(n_hint=40, k=3)
        driver.update(Batch(insertions=erdos_renyi(30, 150, seed=3)))
        assert c.count == c.recount()


class TestLargerCliques:
    def test_k4_counting_on_planted_clique(self):
        edges = planted_clique(40, 60, 6, seed=1)
        driver, c = create_clique_driver(n_hint=50, k=4)
        for i in range(0, len(edges), 40):
            driver.update(Batch(insertions=edges[i : i + 40]))
        assert c.count == clique_count(edges, 4)
        # the planted K6 alone contributes C(6,4) = 15
        assert c.count >= 15

    def test_k4_deletion_churn(self):
        edges = planted_clique(30, 40, 6, seed=2)
        driver, c = create_clique_driver(n_hint=40, k=4)
        driver.update(Batch(insertions=edges))
        rng = random.Random(0)
        current = set(edges)
        for step in range(6):
            dels = rng.sample(sorted(current), 8)
            driver.update(Batch(deletions=dels))
            current -= set(dels)
            assert c.count == clique_count(current, 4), step

    def test_k5_on_ring_of_cliques(self):
        edges = ring_of_cliques(4, 6)
        driver, c = create_clique_driver(n_hint=30, k=5)
        driver.update(Batch(insertions=edges))
        # each 6-clique holds C(6,5) = 6 5-cliques
        assert c.count == 4 * 6

    def test_k2_counts_edges(self):
        driver, c = create_clique_driver(n_hint=10, k=2)
        driver.update(Batch(insertions=[(0, 1), (1, 2)]))
        assert c.count == 2
        driver.update(Batch(deletions=[(0, 1)]))
        assert c.count == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            create_clique_driver(n_hint=10, k=1)


class TestFlipRobustness:
    def test_count_survives_heavy_level_movement(self):
        # Growing a clique forces many level moves and orientation flips;
        # the count must stay exact throughout.
        driver, c = create_clique_driver(n_hint=30, k=3)
        n = 12
        all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng = random.Random(7)
        rng.shuffle(all_edges)
        current: set = set()
        for i in range(0, len(all_edges), 10):
            batch = all_edges[i : i + 10]
            driver.update(Batch(insertions=batch))
            current |= set(batch)
            assert c.count == clique_count(current, 3)
        # now unbuild it
        rng.shuffle(all_edges)
        for i in range(0, len(all_edges), 10):
            batch = all_edges[i : i + 10]
            driver.update(Batch(deletions=batch))
            current -= set(batch)
            assert c.count == clique_count(current, 3)
        assert c.count == 0

    def test_space_positive(self):
        driver, c = create_clique_driver(n_hint=10, k=3)
        driver.update(Batch(insertions=[(0, 1), (0, 2)]))
        assert c.space_bytes() > 0
