"""Tests for observability APIs, vertex-update rebuilds, sliding windows,
and error percentiles — the extension surface beyond the paper's core."""

from __future__ import annotations

import pytest

from repro.bench.metrics import error_percentiles, error_stats
from repro.core.plds import PLDS
from repro.graphs.generators import erdos_renyi
from repro.graphs.streams import Batch, sliding_window_batches
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations, build_plds


class TestPLDSStats:
    def test_level_histogram_counts_all_vertices(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        hist = plds.level_histogram()
        assert sum(hist.values()) == plds.num_vertices
        assert all(0 <= l < plds.num_levels for l in hist)

    def test_group_histogram_consistent_with_levels(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        lv = plds.level_histogram()
        gr = plds.group_histogram()
        assert sum(gr.values()) == sum(lv.values())
        regrouped: dict[int, int] = {}
        for level, c in lv.items():
            g = plds.group_number(level)
            regrouped[g] = regrouped.get(g, 0) + c
        assert regrouped == gr

    def test_stats_snapshot_fields(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        s = plds.stats()
        assert s["num_vertices"] == 60
        assert s["num_edges"] == 240
        assert s["work"] > 0
        assert s["max_level_in_use"] <= s["num_levels"]
        assert 0 < s["mean_level"] <= s["max_level_in_use"]

    def test_stats_on_empty_structure(self):
        s = PLDS(n_hint=10).stats()
        assert s["num_vertices"] == 0
        assert s["mean_level"] == 0.0


class TestVertexUpdateRebuild:
    def test_rebuild_counter_triggers(self):
        plds = PLDS(n_hint=40)
        edges = erdos_renyi(30, 80, seed=2)
        plds.update(Batch(insertions=edges))
        k_before = plds.num_levels
        # Churn vertices well past n/2 updates: isolated adds + removes.
        for i in range(5):
            plds.insert_vertices(range(100 + i * 10, 110 + i * 10))
        plds.delete_vertices(range(100, 150))
        assert plds._vertex_updates <= max(plds.n_hint // 2, 8)
        assert_no_violations(plds)
        assert set(plds.edges()) == set(edges)

    def test_structure_shrinks_after_mass_vertex_deletion(self):
        plds = PLDS(n_hint=20)
        plds.insert_vertices(range(500))  # forces growth rebuilds
        grown_hint = plds.n_hint
        assert grown_hint >= 500
        plds.delete_vertices(range(500))
        assert plds.n_hint < grown_hint
        assert plds.num_vertices == 0

    def test_estimates_survive_rebuild(self):
        edges = erdos_renyi(50, 200, seed=3)
        plds = PLDS(n_hint=8)
        plds.update(Batch(insertions=edges))
        exact = exact_coreness(edges)
        for v, k in exact.items():
            if k == 0:
                continue
            est = plds.coreness_estimate(v)
            assert est > 0
            assert max(est / k, k / est) <= plds.approximation_factor() + 1e-9


class TestSlidingWindow:
    def test_window_size_respected(self):
        edges = erdos_renyi(80, 300, seed=4)
        batches = sliding_window_batches(edges, window=100, batch_size=40)
        live: set = set()
        for b in batches:
            live |= set(b.insertions)
            live -= set(b.deletions)
            assert len(live) <= 100

    def test_all_edges_eventually_inserted(self):
        edges = erdos_renyi(80, 300, seed=4)
        batches = sliding_window_batches(edges, window=100, batch_size=40)
        inserted = [e for b in batches for e in b.insertions]
        # cancelled pairs excepted, every edge appears at most once
        assert len(inserted) == len(set(inserted))

    def test_no_same_batch_insert_delete_conflicts(self):
        edges = erdos_renyi(80, 300, seed=4)
        for b in sliding_window_batches(edges, window=10, batch_size=40):
            assert not set(b.insertions) & set(b.deletions)

    def test_plds_consumes_sliding_window(self):
        edges = erdos_renyi(80, 300, seed=5)
        plds = PLDS(n_hint=90)
        live: set = set()
        for b in sliding_window_batches(edges, window=120, batch_size=30):
            plds.update(b)
            live |= set(b.insertions)
            live -= set(b.deletions)
            assert_no_violations(plds)
        assert set(plds.edges()) == live

    def test_param_validation(self):
        with pytest.raises(ValueError):
            sliding_window_batches([(0, 1)], window=0, batch_size=1)
        with pytest.raises(ValueError):
            sliding_window_batches([(0, 1)], window=5, batch_size=0)


class TestErrorPercentiles:
    def test_monotone_in_percentile(self):
        est = {i: float(i % 4 + 1) for i in range(100)}
        exact = {i: 2 for i in range(100)}
        pct = error_percentiles(est, exact)
        values = [pct[p] for p in sorted(pct)]
        assert values == sorted(values)

    def test_p100_equals_max(self):
        est = {1: 1.0, 2: 8.0}
        exact = {1: 1, 2: 2}
        stats = error_stats(est, exact)
        pct = error_percentiles(est, exact)
        assert pct[100.0] == stats.maximum == 4.0

    def test_skips_zero_cores(self):
        pct = error_percentiles({1: 5.0}, {1: 0})
        assert pct[100.0] == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            error_percentiles({1: 1.0}, {1: 1}, percentiles=(150.0,))

    def test_median_of_uniform_distribution(self):
        est = {i: 2.0 for i in range(10)}
        exact = {i: 2 for i in range(10)}
        assert error_percentiles(est, exact)[50.0] == 1.0
