"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestDatasets:
    def test_lists_eleven(self, capsys):
        code, out = run_cli(capsys, "datasets", "--scale", "0.15")
        assert code == 0
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 12  # header + 11 datasets
        assert "dblp" in out and "friendster" in out

    def test_scale_changes_sizes(self, capsys):
        _, small = run_cli(capsys, "datasets", "--scale", "0.15")
        _, large = run_cli(capsys, "datasets", "--scale", "0.3")
        assert small != large


class TestKcore:
    def test_runs_on_dataset(self, capsys):
        code, out = run_cli(
            capsys, "kcore", "--dataset", "dblp", "--scale", "0.15",
            "--algorithm", "pldsopt", "--protocol", "ins",
        )
        assert code == 0
        assert "avg work / batch" in out
        assert "error ratio" in out

    @pytest.mark.parametrize("proto", ["ins", "del", "mix"])
    def test_all_protocols(self, capsys, proto):
        code, out = run_cli(
            capsys, "kcore", "--dataset", "ctr", "--scale", "0.15",
            "--protocol", proto,
        )
        assert code == 0
        assert "batches processed" in out

    def test_runs_on_edge_file(self, capsys, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n0 2\n2 3\n")
        code, out = run_cli(capsys, "kcore", "--edges", str(path))
        assert code == 0
        assert "4 edges" in out

    def test_unknown_dataset_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["kcore", "--dataset", "nope"])

    def test_custom_parameters(self, capsys):
        code, out = run_cli(
            capsys, "kcore", "--dataset", "usa", "--scale", "0.15",
            "--algorithm", "plds", "--delta", "0.8", "--lam", "6",
            "--batch-size", "50", "--max-batches", "2",
        )
        assert code == 0
        assert "batches processed : 2" in out


class TestCompare:
    def test_all_algorithms_listed(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--dataset", "ctr", "--scale", "0.15",
            "--max-batches", "2",
        )
        assert code == 0
        for key in ("plds", "pldsopt", "lds", "sun", "hua", "zhang"):
            assert key in out


class TestScalability:
    def test_speedup_table(self, capsys):
        code, out = run_cli(
            capsys, "scalability", "--dataset", "usa", "--scale", "0.15"
        )
        assert code == 0
        assert "threads" in out
        assert "60" in out


class TestStatic:
    def test_static_comparison(self, capsys):
        code, out = run_cli(capsys, "static", "--dataset", "dblp", "--scale", "0.15")
        assert code == 0
        assert "ExactKCore" in out
        assert "ApproxKCore" in out
        assert "max error ratio" in out


class TestAdversary:
    @pytest.mark.parametrize("workload", ["cycle", "cascade", "clique", "star"])
    def test_workloads_run(self, capsys, workload):
        code, out = run_cli(
            capsys, "adversary", "--workload", workload,
            "--size", "20", "--rounds", "2",
        )
        assert code == 0
        assert "invariants OK" in out
        assert "Zhang" in out

    def test_cycle_contrast_visible(self, capsys):
        code, out = run_cli(
            capsys, "adversary", "--workload", "cycle",
            "--size", "120", "--rounds", "3",
        )
        lines = {l.split(":")[0].strip(): l for l in out.splitlines() if ":" in l}
        plds_w = float(lines["PLDS  work/batch"].split(":")[1].split()[0])
        zhang_w = float(lines["Zhang work/batch"].split(":")[1].split()[0])
        assert zhang_w > 10 * plds_w


class TestWindow:
    def test_window_monitor_runs(self, capsys):
        code, out = run_cli(
            capsys, "window", "--dataset", "ctr", "--scale", "0.15",
        )
        assert code == 0
        assert "sliding window" in out
        assert "err avg" in out

    def test_custom_window(self, capsys):
        code, out = run_cli(
            capsys, "window", "--dataset", "usa", "--scale", "0.15",
            "--window", "40", "--batch-size", "10",
        )
        assert code == 0
        assert "window=40" in out


class TestService:
    def test_serving_session_with_telemetry(self, capsys):
        code, out = run_cli(
            capsys, "service", "--dataset", "ctr", "--scale", "0.15",
            "--batch-size", "10",
        )
        assert code == 0
        assert "T_p" in out                  # per-batch simulated time column
        assert "snapshot #1" in out          # mid-stream consistent snapshot
        assert "busiest vertex" in out

    def test_any_registry_algorithm_serves(self, capsys):
        code, out = run_cli(
            capsys, "service", "--dataset", "ctr", "--scale", "0.15",
            "--algorithm", "zhang", "--max-batches", "2",
        )
        assert code == 0
        assert "algorithm=zhang" in out


@pytest.mark.soak
class TestSoak:
    def test_small_soak_writes_artifact(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "soak", "--tenants", "2", "--horizon", "120",
            "--seed", "3", "--label", "t", "--output-dir", str(tmp_path),
        )
        assert code == 0
        assert "soak SLO check: OK" in out
        import json

        report = json.loads((tmp_path / "SOAK_t.json").read_text())
        assert report["ok"] and not report["interrupted"]
        assert set(report["tenants"]) == {"tenant0", "tenant1"}

    def test_same_seed_reruns_bit_identically(self, capsys, tmp_path):
        argv = ["soak", "--tenants", "2", "--horizon", "100", "--seed", "7",
                "--fault-rate", "0.1", "--label", "x",
                "--output-dir", str(tmp_path)]
        assert main(argv) == 0
        first = (tmp_path / "SOAK_x.json").read_bytes()
        assert main(argv) == 0
        assert (tmp_path / "SOAK_x.json").read_bytes() == first
        capsys.readouterr()

    def test_interrupt_flushes_partial_artifact(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.traffic import SoakRunner

        def interrupted_run(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(SoakRunner, "run", interrupted_run)
        code = main([
            "soak", "--tenants", "2", "--horizon", "60",
            "--label", "part", "--output-dir", str(tmp_path),
        ])
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted" in err and "flushed partial" in err
        import json

        report = json.loads((tmp_path / "SOAK_part.json").read_text())
        assert report["interrupted"] and not report["ok"]

    def test_mismatched_stall_flags_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["soak", "--stall-from", "10"])


@pytest.mark.soak
class TestJournalCommand:
    def _dump(self, tmp_path):
        from repro.graphs.streams import Batch, UpdateJournal

        journal = UpdateJournal()
        journal.commit(journal.begin(Batch(insertions=[(0, 1), (1, 2)])))
        journal.commit(journal.begin(Batch(insertions=[(2, 3)])))
        path = tmp_path / "journal.json"
        journal.dump(str(path))
        return path

    def test_inspects_intact_journal(self, capsys, tmp_path):
        path = self._dump(tmp_path)
        code, out = run_cli(capsys, "journal", str(path))
        assert code == 0
        assert "2 records (2 committed" in out
        assert "replayable history: 2 batches" in out

    def test_corrupt_journal_exits_2_without_traceback(
        self, capsys, tmp_path
    ):
        path = self._dump(tmp_path)
        path.write_text(path.read_text()[:150])
        code = main(["journal", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "corrupt at line" in captured.err
        assert "streams.py:" in captured.err     # file:line of the raise site
        assert "Traceback" not in captured.err

    def test_recover_salvages_prefix(self, capsys, tmp_path):
        path = self._dump(tmp_path)
        path.write_text(path.read_text()[:150])
        code, out = run_cli(capsys, "journal", str(path), "--recover")
        assert code == 0
        assert "RECOVERED" in out
