"""Unit tests for the Brent-bound scheduler simulation."""

from __future__ import annotations

import pytest

from repro.parallel.engine import Cost
from repro.parallel.scheduler import BrentScheduler, speedup_curve


class TestBrentScheduler:
    def test_one_processor_time_is_work_plus_depth(self):
        s = BrentScheduler()
        assert s.time(Cost(100, 10), 1) == 110.0

    def test_time_decreases_with_processors(self):
        s = BrentScheduler()
        c = Cost(10_000, 10)
        times = [s.time(c, p) for p in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_speedup_at_one_is_unity(self):
        s = BrentScheduler()
        assert s.speedup(Cost(1000, 5), 1) == 1.0

    def test_speedup_bounded_by_processors(self):
        s = BrentScheduler()
        c = Cost(10_000, 1)
        for p in (2, 4, 16):
            assert s.speedup(c, p) <= p + 1e-9

    def test_depth_bounds_speedup(self):
        # With depth == work, no parallelism is available.
        s = BrentScheduler()
        c = Cost(1000, 1000)
        assert s.speedup(c, 64) < 2.0

    def test_low_depth_scales_nearly_linearly(self):
        s = BrentScheduler()
        c = Cost(1_000_000, 10)
        assert s.speedup(c, 8) > 7.5

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            BrentScheduler().time(Cost(1, 1), 0)

    def test_hyperthreading_diminishes_returns(self):
        s = BrentScheduler(hyperthread_cores=4, hyperthread_yield=0.25)
        assert s.effective_processors(4) == 4
        assert s.effective_processors(8) == 5.0

    def test_overhead_penalizes_high_p(self):
        cheap = BrentScheduler()
        costly = BrentScheduler(overhead_per_processor=50)
        c = Cost(1000, 1)
        assert costly.time(c, 16) > cheap.time(c, 16)

    def test_speedup_curve_shape(self):
        curve = speedup_curve(Cost(100_000, 100), [1, 2, 4, 8])
        ps = [p for p, _ in curve]
        sp = [s for _, s in curve]
        assert ps == [1, 2, 4, 8]
        assert sp[0] == 1.0
        assert all(sp[i] <= sp[i + 1] for i in range(len(sp) - 1))
